"""Deadline-budgeted retry: backoff policy and per-request deadlines.

The SWS-proxy's recovery loop (§4.2) used to sleep fixed ``0.25``/``0.1``
amounts between attempts and give up after a flat attempt count — which
couples total client-visible latency to the *number* of failures rather
than the time budget the caller actually has.  This module replaces that
with the standard shape: exponential backoff with multiplicative jitter
(seeded, so simulation runs stay reproducible) under a per-request
:class:`Deadline` that is also propagated into every discovery/bind/invoke
timeout so no single phase can eat the whole budget.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "Deadline"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded multiplicative jitter."""

    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 2.0
    #: Fraction of the raw delay to randomize over: the delay is scaled by
    #: a factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    jitter: float = 0.5

    def delay(self, attempt: int, rng) -> float:
        """Backoff before retry number ``attempt`` (first retry is 0).

        ``rng`` is a seeded ``random.Random``; passing the simulation's
        registry stream keeps runs bit-for-bit reproducible.
        """
        raw = min(self.base_delay * (self.multiplier ** attempt), self.max_delay)
        if self.jitter <= 0.0:
            return raw
        factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw * factor


@dataclass(frozen=True)
class Deadline:
    """An absolute point in simulation time a request must finish by."""

    at: float

    def remaining(self, now: float) -> float:
        return max(0.0, self.at - now)

    def expired(self, now: float) -> bool:
        return now >= self.at

    def clamp(self, now: float, timeout: float) -> float:
        """Cap a phase timeout so it cannot outlive the request budget."""
        return min(timeout, self.remaining(now))
