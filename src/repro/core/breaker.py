"""Client-side circuit breaker for the SWS-proxy.

The paper's proxy recovers from individual faults by re-binding inside
one invocation; what it cannot do is stop *sending* when a b-peer group
is persistently unhealthy — every call still burns a full timeout/retry
budget before failing.  The breaker closes that gap on the client side:

* **closed** — calls flow; outcomes feed a sliding window of the last
  ``window`` calls.  Once at least ``min_calls`` samples exist and the
  failure rate reaches ``failure_threshold``, the breaker trips open.
* **open** — calls are rejected locally (no network traffic) until
  ``open_duration`` simulated seconds have elapsed, then the breaker
  moves to half-open.
* **half-open** — up to ``half_open_probes`` trial calls are admitted.
  A probe success closes the breaker (window reset); a probe failure
  re-opens it for another ``open_duration``.

Scope is per chosen advertisement (service + shard), so one melted
shard cannot blackhole its siblings.  Every transition and rejection is
journalled so the checker can audit the "never reject a provably
healthy service" invariant offline: an open interval must be justified
by ``min_calls``/``failure_threshold`` evidence, and every rejection
must fall inside a justified open interval.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

__all__ = ["BreakerSpec", "BreakerTransition", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerSpec:
    """Tuning knobs, carried by ``ScenarioConfig(circuit_breaker=...)``."""

    window: int = 16
    min_calls: int = 4
    failure_threshold: float = 0.5
    open_duration: float = 4.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 1 <= self.min_calls <= self.window:
            raise ValueError("min_calls must be in [1, window]")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.open_duration <= 0.0:
            raise ValueError("open_duration must be positive")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


@dataclass(frozen=True)
class BreakerTransition:
    """One audit-log entry: why the breaker changed state."""

    at: float
    source: str
    target: str
    failures: int
    calls: int


class CircuitBreaker:
    """One breaker instance, scoped to a single (service, shard) binding."""

    def __init__(self, spec: BreakerSpec, scope: str = "", metrics=None):
        self.spec = spec
        self.scope = scope
        self.metrics = metrics
        self.state = CLOSED
        self._window: Deque[bool] = deque(maxlen=spec.window)
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self.transitions: List[BreakerTransition] = []
        self.rejections: List[float] = []

    # -- call admission ----------------------------------------------------------------

    def allow(self, now: float) -> bool:
        """May a call proceed right now?  (Moves open→half-open when ripe.)"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._opened_at is not None and now - self._opened_at >= self.spec.open_duration:
                self._transition(now, HALF_OPEN)
                self._probes_in_flight = 1
                return True
            return False
        # half-open: admit at most half_open_probes concurrent trial calls
        if self._probes_in_flight < self.spec.half_open_probes:
            self._probes_in_flight += 1
            return True
        return False

    def reject(self, now: float) -> None:
        """Record that a call was turned away at the breaker."""
        self.rejections.append(now)
        if self.metrics is not None:
            self.metrics.inc("breaker.rejected")

    # -- outcome feedback --------------------------------------------------------------

    def record_success(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._window.clear()
            self._transition(now, CLOSED)
            return
        if self.state == CLOSED:
            self._window.append(True)

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._trip(now)
            return
        if self.state == CLOSED:
            self._window.append(False)
            if len(self._window) >= self.spec.min_calls and self.failure_rate >= self.spec.failure_threshold:
                self._trip(now)

    # -- introspection -----------------------------------------------------------------

    @property
    def failure_rate(self) -> float:
        if not self._window:
            return 0.0
        return self._window.count(False) / len(self._window)

    @property
    def calls_in_window(self) -> int:
        return len(self._window)

    def open_intervals(self, horizon: float) -> List[tuple]:
        """(start, end) spans during which the breaker was not closed.

        ``horizon`` caps a still-open trailing interval.  Used by the
        checker to validate that every rejection is covered.
        """
        spans = []
        started: Optional[float] = None
        for tr in self.transitions:
            if tr.source == CLOSED and started is None:
                started = tr.at
            elif tr.target == CLOSED and started is not None:
                spans.append((started, tr.at))
                started = None
        if started is not None:
            spans.append((started, horizon))
        return spans

    # -- internals ---------------------------------------------------------------------

    def _trip(self, now: float) -> None:
        self._opened_at = now
        self._transition(now, OPEN)

    def _transition(self, now: float, target: str) -> None:
        source = self.state
        self.state = target
        self.transitions.append(
            BreakerTransition(
                at=now,
                source=source,
                target=target,
                failures=self._window.count(False),
                calls=len(self._window),
            )
        )
        if self.metrics is not None:
            if target == OPEN:
                self.metrics.inc("breaker.open")
            elif target == HALF_OPEN:
                self.metrics.inc("breaker.half_open")
