"""B-peers: the replicated service executors (§4.1–4.2).

A b-peer is a JXTA peer that (a) belongs to exactly one semantic b-peer
group, (b) hosts one :class:`~repro.backend.services.ServiceImplementation`
realising the group's functionality, and (c) runs the Bully algorithm so
the group always has a coordinator.

Request flow (§4.2): the SWS-proxy sends the request to the peer it
believes coordinates the group.  If that peer is *not* (or no longer) the
coordinator, it answers ``not-coordinator`` with a forward pointer.  The
coordinator executes the request — and when its own backend is down it
*delegates* to a semantically equivalent member (§4.1's operational-DB →
data-warehouse scenario), transparently to the proxy.

With ``load_sharing=True`` the coordinator additionally spreads incoming
requests over the members (§4.1: "the redundancy mechanism of Whisper
makes possible to also address scalability requirements through
load-sharing"), with members answering the proxy directly.  *Which*
member gets each request is a pluggable
:class:`~repro.core.dispatch.DispatchPolicy` (blind round-robin,
least-outstanding, or QoS-weighted); with a ``queue_bound`` set, the
coordinator additionally runs admission control — when every eligible
member is at its bound the request is *shed* with a ``busy`` reply
carrying a retry-after hint, instead of queueing without limit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..backend.services import ServiceImplementation
from ..backend.store import BackendUnavailable, RecordNotFound
from ..qos.metrics import QosProfile
from ..p2p.endpoint import EndpointMessage, UnresolvablePeerError
from ..p2p.ids import PeerGroupId, PeerId
from ..p2p.peer import Peer
from ..simnet.events import AnyOf, Interrupt
from ..simnet.message import Address
from ..simnet.node import Node
from ..simnet.queues import Store
from ..election.coordinator import GroupCoordinator
from ..election.epoch import Epoch
from .dispatch import DispatchSpec, MemberLoad, dispatch_policy

__all__ = ["BPeer", "ExecRequest", "ExecReply"]

PROTO_EXEC = "whisper:exec"
PROTO_EXEC_REPLY = "whisper:exec-reply"
PROTO_DELEGATE = "whisper:delegate"
COORD_HANDLER = "whisper:coordinator"

#: How long a coordinator waits for a delegated member to answer.
DELEGATION_TIMEOUT = 1.0

#: Period of semantic-advertisement republication (JXTA republishes
#: advertisements periodically; this is what repopulates the rendezvous'
#: SRDI index after a rendezvous restart).
REPUBLISH_PERIOD = 10.0

#: Histogram bounds for the coordinator's queue-depth metric (requests
#: outstanding across the group at admission time — counts, not seconds).
QUEUE_DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass
class ExecRequest:
    """A service request travelling from proxy to b-peer group."""

    request_id: int
    group_id: PeerGroupId
    operation: str
    arguments: Dict[str, Any]
    reply_to: PeerId
    reply_addr: Address
    #: Fencing token: the coordinator epoch the proxy's binding was made
    #: under.  ``None`` (legacy callers) disables the staleness check.
    epoch: Optional[Epoch] = None
    #: The highest epoch the proxy has ever witnessed (bindings + delivered
    #: results).  Gossiped into the group so epoch knowledge survives even
    #: when every peer that minted/accepted it has crashed.
    observed_epoch: Optional[Epoch] = None


@dataclass
class ExecReply:
    """The b-peer group's answer to one :class:`ExecRequest`.

    ``kind`` is one of ``result``, ``fault``, ``not-coordinator`` (with a
    forward pointer in ``coordinator``), ``cannot-serve``, or ``busy``
    (admission control shed the request; ``retry_after`` hints when a
    slot should free up).
    """

    request_id: int
    kind: str
    value: Any = None
    fault_code: Optional[str] = None
    coordinator: Optional[Tuple] = None
    served_by: Optional[str] = None
    #: Epoch under which this reply was produced (results) or the epoch of
    #: the forward pointer (redirects); lets the proxy discard answers from
    #: deposed coordinators.
    epoch: Optional[Epoch] = None
    #: For ``busy`` replies: estimated seconds until a queue slot frees.
    retry_after: Optional[float] = None


@dataclass
class _Delegation:
    request: ExecRequest
    done: Any  # simulation event
    reply: Optional[ExecReply] = None


class BPeer(Peer):
    """One replica in a semantic b-peer group."""

    def __init__(
        self,
        node: Node,
        group_id: PeerGroupId,
        group_name: str,
        implementation: ServiceImplementation,
        heartbeat_interval: float = 1.0,
        miss_threshold: int = 3,
        load_sharing: bool = False,
        dispatch: DispatchSpec = None,
        queue_bound: Optional[int] = None,
        name: Optional[str] = None,
    ):
        super().__init__(node, name=name)
        self.group_id = group_id
        self.group_name = group_name
        self.implementation = implementation
        self.load_sharing = load_sharing
        #: How a coordinating replica spreads load-shared work.
        self.dispatch = dispatch_policy(dispatch)
        #: Admission control: max dispatched-but-unfinished requests per
        #: member.  ``None`` = the seed's unbounded behaviour.
        if queue_bound is not None and queue_bound < 1:
            raise ValueError("queue_bound must be >= 1 (or None for unbounded)")
        self.queue_bound = queue_bound
        self.coordinator_mgr = GroupCoordinator(
            self.groups,
            group_id,
            heartbeat_interval=heartbeat_interval,
            miss_threshold=miss_threshold,
        )
        self.requests_executed = 0
        self.requests_delegated = 0
        self.requests_redirected = 0
        #: Requests shed by admission control (queue bound hit).
        self.requests_shed = 0
        #: Requests bounced because they carried an epoch below ours — the
        #: sender was bound to a deposed coordinator (split-brain fencing).
        self.stale_epoch_rejections = 0
        #: Online QoS profile of this replica's executions (§2.4): feeds
        #: operator reporting and can seed the group's QoS advertisement.
        self.qos_profile = QosProfile(initial_time=implementation.service_time)
        self._queue: Store = Store(self.env)
        self._delegations: Dict[int, _Delegation] = {}
        self._delegation_ids = itertools.count(1)
        #: Coordinator-side load ledger: per-member outstanding counts +
        #: last reported QoS snapshot, feeding the dispatch policy and
        #: admission control.  Reset whenever our coordinator term moves
        #: (counts from a previous term would be stale).
        self._member_load: Dict[PeerId, MemberLoad] = {}
        self._ledger_epoch: Optional[Epoch] = None
        self._worker = None
        self._republisher = None
        #: Advertisements this peer keeps alive on the network.
        self.published_advertisements = []

        self.endpoint.register_listener(PROTO_EXEC, self._on_exec)
        self.groups.register_group_listener(PROTO_DELEGATE, self._on_delegate)
        self.resolver.register_handler(COORD_HANDLER, self._on_coordinator_query)
        node.on_crash(lambda _node: self._on_crash())
        node.on_restart(lambda _node: self._on_restart())
        self._rendezvous: Optional[Peer] = None

    # -- lifecycle --------------------------------------------------------------------

    def start(self, rendezvous: Peer) -> None:
        """Attach to the network, join the group, start serving."""
        self._rendezvous = rendezvous
        self.attach_to(rendezvous)
        self.publish_self(remote=True)
        self.groups.join(self.group_id, self.group_name)
        self._worker = self.node.spawn(self._work_loop(), name=f"bpeer:{self.name}")
        if self._republisher is None or not self._republisher.is_alive:
            self._republisher = self.node.spawn(
                self._republish_loop(), name=f"bpeer-republish:{self.name}"
            )

    def keep_published(self, advertisement, remote: bool = True) -> None:
        """Publish now and republish periodically (survives SRDI loss)."""
        self.published_advertisements.append((advertisement, remote))
        self.discovery.publish(advertisement, remote=remote)

    def _republish_loop(self):
        from ..simnet.events import Interrupt

        try:
            while True:
                yield self.env.timeout(REPUBLISH_PERIOD)
                for advertisement, remote in self.published_advertisements:
                    self.discovery.publish(advertisement, remote=remote)
        except Interrupt:
            return

    def _on_restart(self) -> None:
        """Recover after a crash+restart: re-attach, re-join, re-serve."""
        if self._rendezvous is not None:
            self.start(self._rendezvous)
            for advertisement, remote in self.published_advertisements:
                self.discovery.publish(advertisement, remote=remote)

    def shutdown(self) -> None:
        """Gracefully leave the group (planned maintenance).

        Unlike a crash, a graceful departure *announces* itself: the leave
        propagates, surviving members clear the coordinator immediately and
        elect a successor without waiting out the failure detector — so
        planned maintenance costs an election (sub-second), not a
        detection period (seconds).
        """
        self.coordinator_mgr.monitor.stop()
        self.coordinator_mgr.elector.coordinator = None
        self.groups.leave(self.group_id)
        if self._worker is not None and self._worker.is_alive:
            worker, self._worker = self._worker, None
            if worker is not self.env.active_process:
                worker.interrupt("shutdown")
        if self._republisher is not None and self._republisher.is_alive:
            republisher, self._republisher = self._republisher, None
            if republisher is not self.env.active_process:
                republisher.interrupt("shutdown")
        self._queue.items.clear()

    def bootstrap_election(self) -> None:
        """Trigger the group's first election (call on one member)."""
        self.coordinator_mgr.bootstrap()

    @property
    def is_coordinator(self) -> bool:
        return self.coordinator_mgr.is_coordinator

    @property
    def coordinator(self) -> Optional[PeerId]:
        return self.coordinator_mgr.coordinator

    # -- inbound requests --------------------------------------------------------------

    def _on_exec(self, message: EndpointMessage) -> None:
        request: ExecRequest = message.payload
        if request.group_id != self.group_id or not self.node.up:
            return
        self.endpoint.add_route(request.reply_to, request.reply_addr)
        if request.observed_epoch is not None:
            # Client-carried fencing token: a coordinator whose term is
            # below it re-elects (minting above it) instead of serving
            # results the proxy would have to discard as stale.
            self.coordinator_mgr.elector.observe_external_epoch(
                request.observed_epoch
            )
        if not self.is_coordinator:
            # §4.2: "the b-peer found may not be the coordinator. Therefore,
            # additional processing may need to be done to find the current
            # coordinator" — we hand the proxy a forward pointer.
            self.requests_redirected += 1
            self._reply(
                request,
                ExecReply(
                    request_id=request.request_id,
                    kind="not-coordinator",
                    coordinator=self._coordinator_pointer(),
                ),
            )
            return
        current = self.coordinator_mgr.epoch
        if request.epoch is not None and request.epoch < current:
            # Fencing: the proxy is bound to a term this group has moved
            # past (e.g. we crashed/partitioned and were re-elected under a
            # fresh epoch).  Even though we ARE the coordinator, serving a
            # stale-term request could mask an interleaved takeover — bounce
            # it so the proxy re-binds under the current epoch.
            self.stale_epoch_rejections += 1
            self.requests_redirected += 1
            self.node.network.obs.metrics.inc("bpeer.stale_epoch_rejections")
            self._reply(
                request,
                ExecReply(
                    request_id=request.request_id,
                    kind="not-coordinator",
                    value="stale-epoch",
                    coordinator=self._coordinator_pointer(),
                ),
            )
            return
        self._admit(request)

    # -- admission control & dispatch (coordinator-side) -------------------------------

    def _admit(self, request: ExecRequest) -> None:
        """Admission control: enqueue with a dispatch target, or shed.

        The dispatch decision is made here, at arrival, so the bound is
        checked against the member that would actually serve the request
        (least-outstanding sheds only when the *whole group* is full;
        blind round-robin sheds whenever its rotation lands on a full
        member — that difference is the policies' throughput gap under
        heterogeneous backends).
        """
        if self._ledger_epoch != self.coordinator_mgr.epoch:
            self._member_load.clear()
            self._ledger_epoch = self.coordinator_mgr.epoch
        target = self._dispatch_target()
        state = self._load_for(target)
        obs = self.node.network.obs
        if self.queue_bound is not None and state.outstanding >= self.queue_bound:
            self._shed(request)
            return
        state.outstanding += 1
        obs.metrics.observe(
            "bpeer.queue_depth", self._total_outstanding(), bounds=QUEUE_DEPTH_BUCKETS
        )
        self._queue.put(("exec", (request, target)))

    def _dispatch_members(self) -> List[PeerId]:
        """Members eligible for dispatch (ourselves when not load-sharing).

        Members the failure detector has removed from the group view (a
        crashed coordinator, silent election candidates) are skipped by
        every policy; their ledger entries are dropped here so leaked
        counts cannot poison admission.  Crashed followers are *not*
        detected — the proxy's timeout-and-retry masks them instead.
        """
        if not self.load_sharing:
            return [self.peer_id]
        view = self.groups.groups.get(self.group_id)
        members = view.sorted_members() if view is not None else []
        if not members:
            return [self.peer_id]
        current = set(members)
        for member in list(self._member_load):
            if member not in current:
                del self._member_load[member]
        return members

    def _dispatch_target(self) -> PeerId:
        members = self._dispatch_members()
        if len(members) == 1:
            return members[0]
        choice = self.dispatch.choose(members, self._member_load)
        return choice if choice is not None else self.peer_id

    def _load_for(self, member: PeerId) -> MemberLoad:
        state = self._member_load.get(member)
        if state is None:
            state = self._member_load[member] = MemberLoad()
        return state

    def _release_load(self, member: PeerId) -> None:
        state = self._member_load.get(member)
        if state is not None and state.outstanding > 0:
            state.outstanding -= 1

    def _total_outstanding(self) -> int:
        return sum(state.outstanding for state in self._member_load.values())

    def _shed(self, request: ExecRequest) -> None:
        """Refuse the request with a ``busy`` reply + retry-after hint."""
        self.requests_shed += 1
        self.node.network.obs.metrics.inc("bpeer.shed")
        self._reply(
            request,
            ExecReply(
                request_id=request.request_id,
                kind="busy",
                retry_after=self._retry_after_hint(),
                epoch=self.coordinator_mgr.epoch,
            ),
        )

    def _retry_after_hint(self) -> float:
        """ETA (seconds) until the least-loaded member frees a slot."""
        best: Optional[float] = None
        for member in self._dispatch_members():
            state = self._member_load.get(member)
            outstanding = state.outstanding if state is not None else 0
            per_request = (
                state.qos.time
                if state is not None and state.qos is not None
                else self.implementation.service_time
            )
            eta = per_request * max(1, outstanding)
            if best is None or eta < best:
                best = eta
        return best if best is not None else self.implementation.service_time

    def _coordinator_pointer(self) -> Optional[Tuple]:
        """Forward pointer ``(peer, address, epoch)`` for redirects."""
        coordinator = self.coordinator
        if coordinator is None:
            return None
        if coordinator == self.peer_id:
            address: Optional[Address] = self.endpoint.address
        else:
            address = self.endpoint.route_for(coordinator)
        return (coordinator, address, self.coordinator_mgr.epoch)

    # -- the worker (one request at a time, like a single-threaded JVM peer) -------------

    def _work_loop(self):
        try:
            while True:
                kind, item = yield self._queue.get()
                if kind == "exec":
                    yield from self._serve(*item)
                elif kind == "delegated":
                    yield from self._serve_delegated(*item)
        except Interrupt:
            return

    def _serve(self, request: ExecRequest, target: Optional[PeerId] = None):
        if target is None:
            target = self.peer_id
        if target != self.peer_id:
            # Spread load: the member executes and answers the proxy; its
            # completion report releases the ledger slot.
            self.requests_delegated += 1
            try:
                self.groups.send_to_member(
                    self.group_id,
                    target,
                    PROTO_DELEGATE,
                    ("direct", request),
                    category="bpeer-delegate",
                    size_bytes=512,
                )
                return
            except UnresolvablePeerError:
                # Fall through to local execution; move the accounting.
                self._release_load(target)
                self._load_for(self.peer_id).outstanding += 1
        reply = yield from self._execute_or_delegate(request)
        self._reply(request, reply)
        self._release_load(self.peer_id)
        self._load_for(self.peer_id).qos = self.qos_profile.snapshot()

    def _execute_or_delegate(self, request: ExecRequest):
        """Try locally; on backend unavailability, try each other member."""
        reply = yield from self._execute_local(request)
        if reply.kind != "cannot-serve":
            return reply
        # §4.1: a semantically equivalent peer transparently takes over.
        for member in self.groups.groups[self.group_id].sorted_members():
            if member == self.peer_id:
                continue
            delegated = yield from self._delegate_to(member, request)
            if delegated is not None and delegated.kind != "cannot-serve":
                return delegated
        return reply  # everyone's backend is down

    def _execute_local(self, request: ExecRequest):
        obs = self.node.network.obs
        started = self.env.now
        yield self.env.timeout(self.implementation.service_time)
        try:
            value = self.implementation.invoke(request.arguments)
        except BackendUnavailable:
            self.qos_profile.record_failure()
            obs.metrics.inc("bpeer.backend_unavailable")
            return ExecReply(request_id=request.request_id, kind="cannot-serve")
        except (RecordNotFound, ValueError) as error:
            obs.metrics.inc("bpeer.faults")
            return ExecReply(
                request_id=request.request_id,
                kind="fault",
                fault_code="Client",
                value=str(error),
            )
        except Exception as error:  # implementation bug
            obs.metrics.inc("bpeer.faults")
            return ExecReply(
                request_id=request.request_id,
                kind="fault",
                fault_code="Server",
                value=f"{type(error).__name__}: {error}",
            )
        self.requests_executed += 1
        self.qos_profile.record_success(self.env.now - started)
        obs.metrics.inc("bpeer.executed")
        obs.observe_phase("execute", self.env.now - started)
        return ExecReply(
            request_id=request.request_id,
            kind="result",
            value=value,
            served_by=self.implementation.name,
        )

    # -- delegation (coordinator -> member) -----------------------------------------------

    def _delegate_to(self, member: PeerId, request: ExecRequest):
        delegation_id = next(self._delegation_ids)
        delegation = _Delegation(request=request, done=self.env.event())
        self._delegations[delegation_id] = delegation
        try:
            self.groups.send_to_member(
                self.group_id,
                member,
                PROTO_DELEGATE,
                ("relay", delegation_id, self.peer_id, request),
                category="bpeer-delegate",
                size_bytes=512,
            )
        except UnresolvablePeerError:
            del self._delegations[delegation_id]
            return None
        self.requests_delegated += 1
        timer = self.env.timeout(DELEGATION_TIMEOUT)
        yield AnyOf(self.env, [delegation.done, timer])
        self._delegations.pop(delegation_id, None)
        return delegation.reply

    def _on_delegate(self, payload, src_peer: PeerId, group_id: PeerGroupId) -> None:
        if group_id != self.group_id or not self.node.up:
            return
        mode = payload[0]
        if mode == "direct":
            # Load-sharing: execute and answer the proxy ourselves; the
            # sending coordinator gets a completion report afterwards so
            # its load ledger stays truthful.
            _mode, request = payload
            self.endpoint.add_route(request.reply_to, request.reply_addr)
            self._queue.put(("delegated", ("direct", None, src_peer, request)))
        elif mode == "report":
            # A member finished a direct-dispatched request: release its
            # ledger slot and refresh its QoS snapshot (feeds the
            # least-outstanding and QoS-weighted policies).
            _mode, member, qos = payload
            self._release_load(member)
            self._load_for(member).qos = qos
        elif mode == "relay":
            _mode, delegation_id, coordinator, request = payload
            self._queue.put(
                ("delegated", ("relay", delegation_id, coordinator, request))
            )
        elif mode == "relay-reply":
            _mode, delegation_id, reply = payload
            delegation = self._delegations.get(delegation_id)
            if delegation is not None:
                delegation.reply = reply
                if not delegation.done.triggered:
                    delegation.done.succeed()

    def _serve_delegated(self, mode, delegation_id, coordinator, request: ExecRequest):
        if mode == "direct":
            # Load-sharing: we answer the proxy ourselves — but if our own
            # backend is down, chain through the group like a coordinator
            # would (§4.1's transparent takeover applies here too).
            reply = yield from self._execute_or_delegate(request)
            self._reply(request, reply)
            if coordinator is not None and coordinator != self.peer_id:
                try:
                    self.groups.send_to_member(
                        self.group_id,
                        coordinator,
                        PROTO_DELEGATE,
                        ("report", self.peer_id, self.qos_profile.snapshot()),
                        category="bpeer-load-report",
                        size_bytes=96,
                    )
                except UnresolvablePeerError:
                    pass
            return
        # Relay mode: execute locally only (the *coordinator* owns the
        # delegation chain; a delegate that also delegated could loop).
        reply = yield from self._execute_local(request)
        try:
            self.groups.send_to_member(
                self.group_id,
                coordinator,
                PROTO_DELEGATE,
                ("relay-reply", delegation_id, reply),
                category="bpeer-delegate",
                size_bytes=512,
            )
        except UnresolvablePeerError:
            pass

    # -- coordinator discovery (proxy-side resolver queries) ---------------------------------

    def _on_coordinator_query(self, query) -> Optional[Any]:
        group_id = query.payload
        if group_id != self.group_id or not self.node.up:
            return None
        if self.coordinator is None:
            return None
        # ``(peer, address, epoch)`` — the epoch lets a proxy facing
        # conflicting answers (split-brain) prefer the freshest claim.
        return self._coordinator_pointer()

    # -- plumbing ----------------------------------------------------------------------------

    def _reply(self, request: ExecRequest, reply: ExecReply) -> None:
        if reply.epoch is None and reply.kind in ("result", "fault"):
            # Stamp the term the work was done under so the proxy can
            # discard results that raced with a takeover.
            reply.epoch = self.coordinator_mgr.epoch
        try:
            self.endpoint.send(
                request.reply_to,
                PROTO_EXEC_REPLY,
                reply,
                category="bpeer-reply",
                size_bytes=768,
            )
        except UnresolvablePeerError:
            pass

    def _on_crash(self) -> None:
        self._queue.items.clear()
        self._delegations.clear()
        self._member_load.clear()
        self._ledger_epoch = None
        self._worker = None
        self._republisher = None

    def __repr__(self) -> str:
        role = "coordinator" if self.is_coordinator else "member"
        return f"<BPeer {self.name} {role} of {self.group_name}>"
