"""B-peers: the replicated service executors (§4.1–4.2).

A b-peer is a JXTA peer that (a) belongs to exactly one semantic b-peer
group, (b) hosts one :class:`~repro.backend.services.ServiceImplementation`
realising the group's functionality, and (c) runs the Bully algorithm so
the group always has a coordinator.

Request flow (§4.2): the SWS-proxy sends the request to the peer it
believes coordinates the group.  If that peer is *not* (or no longer) the
coordinator, it answers ``not-coordinator`` with a forward pointer.  The
coordinator executes the request — and when its own backend is down it
*delegates* to a semantically equivalent member (§4.1's operational-DB →
data-warehouse scenario), transparently to the proxy.

With ``load_sharing=True`` the coordinator additionally spreads incoming
requests over the members (§4.1: "the redundancy mechanism of Whisper
makes possible to also address scalability requirements through
load-sharing"), with members answering the proxy directly.  *Which*
member gets each request is a pluggable
:class:`~repro.core.dispatch.DispatchPolicy` (blind round-robin,
least-outstanding, or QoS-weighted); with a ``queue_bound`` set, the
coordinator additionally runs admission control — when every eligible
member is at its bound the request is *shed* with a ``busy`` reply
carrying a retry-after hint, instead of queueing without limit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ..backend.services import ServiceImplementation
from ..backend.store import BackendUnavailable, RecordNotFound
from ..qos.metrics import QosProfile
from ..p2p.endpoint import EndpointMessage, UnresolvablePeerError
from ..p2p.ids import PeerGroupId, PeerId
from ..p2p.peer import Peer
from ..simnet.events import AnyOf, Interrupt
from ..simnet.message import Address
from ..simnet.node import Node
from ..simnet.queues import Store
from ..election.coordinator import GroupCoordinator
from ..election.epoch import Epoch
from .dispatch import DispatchSpec, MemberLoad, dispatch_policy
from .journal import DedupJournal, JournalEntry

__all__ = ["BPeer", "ExecRequest", "ExecReply"]

PROTO_EXEC = "whisper:exec"
PROTO_EXEC_REPLY = "whisper:exec-reply"
PROTO_DELEGATE = "whisper:delegate"
COORD_HANDLER = "whisper:coordinator"

#: How long a coordinator waits for a delegated member to answer.
DELEGATION_TIMEOUT = 1.0

#: Backstop for requests parked behind an in-flight duplicate: if the
#: original execution has not completed by then (e.g. its completion
#: report was lost), the parked retry is answered ``busy`` so the proxy
#: backs off and retries — never re-executed concurrently.
PARK_TIMEOUT = 2 * DELEGATION_TIMEOUT

#: How often a takeover coordinator re-pulls journal state from group
#: members that have not answered for its term yet (lost pulls and
#: members that re-appear after a partition heal are retried here).
JOURNAL_SYNC_PERIOD = 0.5

#: How long a coordinator waits for its write-intent quorum before
#: bouncing the mutation ``busy``.  Must sit well below the proxy's
#: per-attempt timeout so a blocked commit converts into an orderly
#: retry, not a client-visible stall.
INTENT_TIMEOUT = 0.4

#: How long an intent-status probe to an in-doubt intent's origin stays
#: outstanding before another retry may re-probe.
INTENT_RESOLVE_TIMEOUT = 1.0

#: Period of semantic-advertisement republication (JXTA republishes
#: advertisements periodically; this is what repopulates the rendezvous'
#: SRDI index after a rendezvous restart).
REPUBLISH_PERIOD = 10.0

#: Histogram bounds for the coordinator's queue-depth metric (requests
#: outstanding across the group at admission time — counts, not seconds).
QUEUE_DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass
class ExecRequest:
    """A service request travelling from proxy to b-peer group."""

    request_id: int
    group_id: PeerGroupId
    operation: str
    arguments: Dict[str, Any]
    reply_to: PeerId
    reply_addr: Address
    #: Fencing token: the coordinator epoch the proxy's binding was made
    #: under.  ``None`` (legacy callers) disables the staleness check.
    epoch: Optional[Epoch] = None
    #: The highest epoch the proxy has ever witnessed (bindings + delivered
    #: results).  Gossiped into the group so epoch knowledge survives even
    #: when every peer that minted/accepted it has crashed.
    observed_epoch: Optional[Epoch] = None
    #: Idempotency key: one id per *logical* call, reused across every
    #: retry/rebind (``request_id`` stays per-attempt).  ``None`` (legacy
    #: callers) disables dedup for this request.
    invocation_id: Optional[str] = None
    #: Which attempt of the logical call this is (1 = first send).  A
    #: takeover coordinator uses it to tell retries — which may have been
    #: applied elsewhere under an earlier term — from fresh invocations.
    attempt: int = 1


@dataclass
class ExecReply:
    """The b-peer group's answer to one :class:`ExecRequest`.

    ``kind`` is one of ``result``, ``fault``, ``not-coordinator`` (with a
    forward pointer in ``coordinator``), ``cannot-serve``, or ``busy``
    (admission control shed the request; ``retry_after`` hints when a
    slot should free up).
    """

    request_id: int
    kind: str
    value: Any = None
    fault_code: Optional[str] = None
    coordinator: Optional[Tuple] = None
    served_by: Optional[str] = None
    #: Epoch under which this reply was produced (results) or the epoch of
    #: the forward pointer (redirects); lets the proxy discard answers from
    #: deposed coordinators.
    epoch: Optional[Epoch] = None
    #: For ``busy`` replies: estimated seconds until a queue slot frees.
    retry_after: Optional[float] = None
    #: Idempotency key this reply settles (mirrors the request's).
    invocation_id: Optional[str] = None
    #: True when the value was replayed from the dedup journal instead of
    #: executed — the retried call observed the original result.
    deduped: bool = False


@dataclass
class _Delegation:
    request: ExecRequest
    done: Any  # simulation event
    reply: Optional[ExecReply] = None


@dataclass
class _IntentWait:
    """One commit barrier's collection state (keyed by intent token)."""

    needed: int  # remote acks required for a majority incl. ourselves
    done: Any  # simulation event: decided early (quorum / short-circuit)
    sent: int = 0
    acks: int = 0
    responses: int = 0
    #: A member already holds the invocation's DONE entry: replay it.
    done_entry: Optional[JournalEntry] = None
    #: Origins of rival in-flight intents members reported (in-doubt).
    held: Optional[set] = None
    #: Highest epoch a refusing member knew (fencing: we are deposed).
    max_seen: Optional[Epoch] = None

    def decided(self) -> bool:
        return (
            self.done_entry is not None
            or self.acks >= self.needed
            or self.responses >= self.sent
        )


class BPeer(Peer):
    """One replica in a semantic b-peer group."""

    def __init__(
        self,
        node: Node,
        group_id: PeerGroupId,
        group_name: str,
        implementation: ServiceImplementation,
        heartbeat_interval: float = 1.0,
        miss_threshold: int = 3,
        load_sharing: bool = False,
        dispatch: DispatchSpec = None,
        queue_bound: Optional[int] = None,
        dedup_journal: bool = True,
        journal_capacity: int = 4096,
        epoch_fencing: bool = True,
        name: Optional[str] = None,
    ):
        super().__init__(node, name=name)
        self.group_id = group_id
        self.group_name = group_name
        self.implementation = implementation
        self.load_sharing = load_sharing
        #: Split-brain fencing (PR 2).  ``False`` restores the pre-epoch
        #: behaviour — stale-term requests are served and stale
        #: announcements accepted — which the schedule-exploration
        #: checker's self-test uses to prove its invariants have teeth.
        self.epoch_fencing = epoch_fencing
        #: Decision-point hook fired right before an admitted request's
        #: side effect is applied (``hook(bpeer, request)``).  A fault
        #: injector may crash the node here; execution is then abandoned,
        #: modelling a crash between admission and commit.
        self.pre_commit_hook = None
        #: How a coordinating replica spreads load-shared work.
        self.dispatch = dispatch_policy(dispatch)
        #: Admission control: max dispatched-but-unfinished requests per
        #: member.  ``None`` = the seed's unbounded behaviour.
        if queue_bound is not None and queue_bound < 1:
            raise ValueError("queue_bound must be >= 1 (or None for unbounded)")
        self.queue_bound = queue_bound
        self.coordinator_mgr = GroupCoordinator(
            self.groups,
            group_id,
            heartbeat_interval=heartbeat_interval,
            miss_threshold=miss_threshold,
            epoch_fencing=epoch_fencing,
        )
        #: Exactly-once machinery: the dedup/result journal plus requests
        #: parked behind an in-flight duplicate (per invocation id).
        self.journal_enabled = dedup_journal
        self.journal = DedupJournal(capacity=journal_capacity)
        self._parked: Dict[str, List[ExecRequest]] = {}
        #: Retries parked behind an in-flight execution (total).
        self.requests_parked = 0
        #: ``(coordinator, epoch)`` the journal was last pushed to, so a
        #: re-announced term does not re-send the transfer.
        self._journal_pushed: Optional[Tuple[PeerId, Epoch]] = None
        #: Takeover journal sync (coordinator side): the term being
        #: synced, the members that answered our pull for it, the retried
        #: mutations gated until the sync covers the current view, and
        #: the pull loop driving it.  A member-push alone cannot cover a
        #: coordinator whose election announcement was lost (a healed
        #: minority partition winning on epoch height), so the takeover
        #: *pulls* until every view member has answered.
        self._sync_epoch: Optional[Epoch] = None
        self._sync_answered: set = set()
        self._sync_parked: List[ExecRequest] = []
        self._sync_proc = None
        #: Every member ever observed in the group (graceful leavers are
        #: pruned, failure-detector evictions are NOT): the sync must hear
        #: from peers *believed dead* too, because a partitioned or
        #: crashed ex-coordinator may be the only holder of an applied
        #: effect — executing its retries before it answers (post-heal /
        #: post-restart) is exactly the duplicate we gate against.
        self._sync_roster: set = set()
        self.groups.on_membership_change(self._on_roster_change)
        #: Commit barrier (split-brain write fencing): outstanding
        #: write-intent rounds keyed by token, and invocations whose
        #: in-doubt foreign intent we are currently asking the origin
        #: about (one probe outstanding per invocation).
        self._intent_waits: Dict[int, _IntentWait] = {}
        self._intent_tokens = itertools.count(1)
        self._intent_resolving: set = set()
        self.requests_executed = 0
        self.requests_delegated = 0
        self.requests_redirected = 0
        #: Requests shed by admission control (queue bound hit).
        self.requests_shed = 0
        #: Requests bounced because they carried an epoch below ours — the
        #: sender was bound to a deposed coordinator (split-brain fencing).
        self.stale_epoch_rejections = 0
        #: Online QoS profile of this replica's executions (§2.4): feeds
        #: operator reporting and can seed the group's QoS advertisement.
        self.qos_profile = QosProfile(initial_time=implementation.service_time)
        self._queue: Store = Store(self.env)
        #: True while the worker is mid-request (autoscaler drain marker).
        self._busy = False
        self._delegations: Dict[int, _Delegation] = {}
        self._delegation_ids = itertools.count(1)
        #: Coordinator-side load ledger: per-member outstanding counts +
        #: last reported QoS snapshot, feeding the dispatch policy and
        #: admission control.  Reset whenever our coordinator term moves
        #: (counts from a previous term would be stale).
        self._member_load: Dict[PeerId, MemberLoad] = {}
        self._ledger_epoch: Optional[Epoch] = None
        self._worker = None
        self._republisher = None
        #: Advertisements this peer keeps alive on the network.
        self.published_advertisements = []

        self.endpoint.register_listener(PROTO_EXEC, self._on_exec)
        self.groups.register_group_listener(PROTO_DELEGATE, self._on_delegate)
        self.resolver.register_handler(COORD_HANDLER, self._on_coordinator_query)
        # Journal-transfer handshake: whenever a new coordinator is
        # announced, members ship it their replicated DONE entries so the
        # takeover answers retried calls from the journal.
        self.coordinator_mgr.elector.on_coordinator_elected(
            self._on_coordinator_announced
        )
        node.on_crash(lambda _node: self._on_crash())
        node.on_restart(lambda _node: self._on_restart())
        self._rendezvous: Optional[Peer] = None

    # -- lifecycle --------------------------------------------------------------------

    def start(self, rendezvous: Peer) -> None:
        """Attach to the network, join the group, start serving."""
        self._rendezvous = rendezvous
        self.attach_to(rendezvous)
        self.publish_self(remote=True)
        self.groups.join(self.group_id, self.group_name)
        self._worker = self.node.spawn(self._work_loop(), name=f"bpeer:{self.name}")
        if self._republisher is None or not self._republisher.is_alive:
            self._republisher = self.node.spawn(
                self._republish_loop(), name=f"bpeer-republish:{self.name}"
            )

    def keep_published(self, advertisement, remote: bool = True) -> None:
        """Publish now and republish periodically (survives SRDI loss)."""
        self.published_advertisements.append((advertisement, remote))
        self.discovery.publish(advertisement, remote=remote)

    def _republish_loop(self):
        from ..simnet.events import Interrupt

        try:
            while True:
                yield self.env.timeout(REPUBLISH_PERIOD)
                for advertisement, remote in self.published_advertisements:
                    self.discovery.publish(advertisement, remote=remote)
        except Interrupt:
            return

    def _on_restart(self) -> None:
        """Recover after a crash+restart: re-attach, re-join, re-serve."""
        if self._rendezvous is not None:
            self.start(self._rendezvous)
            for advertisement, remote in self.published_advertisements:
                self.discovery.publish(advertisement, remote=remote)

    def shutdown(self) -> None:
        """Gracefully leave the group (planned maintenance).

        Unlike a crash, a graceful departure *announces* itself: the leave
        propagates, surviving members clear the coordinator immediately and
        elect a successor without waiting out the failure detector — so
        planned maintenance costs an election (sub-second), not a
        detection period (seconds).
        """
        self.coordinator_mgr.monitor.stop()
        self.coordinator_mgr.elector.coordinator = None
        self.groups.leave(self.group_id)
        if self._worker is not None and self._worker.is_alive:
            worker, self._worker = self._worker, None
            if worker is not self.env.active_process:
                worker.interrupt("shutdown")
        if self._republisher is not None and self._republisher.is_alive:
            republisher, self._republisher = self._republisher, None
            if republisher is not self.env.active_process:
                republisher.interrupt("shutdown")
        self._queue.items.clear()
        self._parked.clear()
        self._journal_pushed = None
        if self._sync_proc is not None and self._sync_proc.is_alive:
            sync_proc, self._sync_proc = self._sync_proc, None
            if sync_proc is not self.env.active_process:
                sync_proc.interrupt("shutdown")
        self._sync_epoch = None
        self._sync_answered = set()
        self._bounce_sync_parked()

    def bootstrap_election(self) -> None:
        """Trigger the group's first election (call on one member)."""
        self.coordinator_mgr.bootstrap()

    @property
    def is_coordinator(self) -> bool:
        return self.coordinator_mgr.is_coordinator

    @property
    def coordinator(self) -> Optional[PeerId]:
        return self.coordinator_mgr.coordinator

    # -- inbound requests --------------------------------------------------------------

    def _on_exec(self, message: EndpointMessage) -> None:
        request: ExecRequest = message.payload
        if request.group_id != self.group_id or not self.node.up:
            return
        self.endpoint.add_route(request.reply_to, request.reply_addr)
        if request.observed_epoch is not None and self.epoch_fencing:
            # Client-carried fencing token: a coordinator whose term is
            # below it re-elects (minting above it) instead of serving
            # results the proxy would have to discard as stale.
            self.coordinator_mgr.elector.observe_external_epoch(
                request.observed_epoch
            )
        if self._journal_answer(request):
            # A retried invocation this group already completed: replay
            # the canonical result — any member holding the replicated
            # entry can answer, coordinator or not, under any epoch (the
            # result is committed; re-deriving it is what we must avoid).
            return
        if not self.is_coordinator:
            # §4.2: "the b-peer found may not be the coordinator. Therefore,
            # additional processing may need to be done to find the current
            # coordinator" — we hand the proxy a forward pointer.
            self.requests_redirected += 1
            self._reply(
                request,
                ExecReply(
                    request_id=request.request_id,
                    kind="not-coordinator",
                    coordinator=self._coordinator_pointer(),
                ),
            )
            return
        current = self.coordinator_mgr.epoch
        if self.epoch_fencing and request.epoch is not None and request.epoch < current:
            # Fencing: the proxy is bound to a term this group has moved
            # past (e.g. we crashed/partitioned and were re-elected under a
            # fresh epoch).  Even though we ARE the coordinator, serving a
            # stale-term request could mask an interleaved takeover — bounce
            # it so the proxy re-binds under the current epoch.
            self.stale_epoch_rejections += 1
            self.requests_redirected += 1
            self.node.network.obs.metrics.inc("bpeer.stale_epoch_rejections")
            self._reply(
                request,
                ExecReply(
                    request_id=request.request_id,
                    kind="not-coordinator",
                    value="stale-epoch",
                    coordinator=self._coordinator_pointer(),
                ),
            )
            return
        if self._park_if_in_flight(request):
            return
        if self._park_for_sync(request):
            return
        self._admit(request)

    # -- exactly-once: journal replay, parking, replication -----------------------------

    def _journal_done(self, request: ExecRequest) -> Optional[ExecReply]:
        """The replayed canonical reply for a completed invocation, or None."""
        if not self.journal_enabled or request.invocation_id is None:
            return None
        entry = self.journal.lookup(request.invocation_id)
        if entry is None or not entry.done:
            return None
        self.journal.record_hit()
        self.node.network.obs.metrics.inc("bpeer.journal_hits")
        return self._replay_reply(entry, request)

    def _journal_answer(self, request: ExecRequest) -> bool:
        """Reply a completed invocation's canonical result; True if done."""
        replayed = self._journal_done(request)
        if replayed is None:
            return False
        self._reply(request, replayed)
        return True

    @staticmethod
    def _replay_reply(entry: JournalEntry, request: ExecRequest) -> ExecReply:
        """The stored reply, re-stamped for this attempt's request id."""
        return replace(
            entry.reply,
            request_id=request.request_id,
            invocation_id=request.invocation_id,
            deduped=True,
        )

    def _park_if_in_flight(self, request: ExecRequest) -> bool:
        """Park a retry whose invocation is executing here; True if parked.

        The in-flight execution's completion answers every parked copy
        from the journal.  A backstop timer converts a stuck park (lost
        completion report) into a ``busy`` reply — the proxy backs off
        and retries, still never executing the duplicate concurrently.
        """
        if not self.journal_enabled or request.invocation_id is None:
            return False
        if not self.implementation.mutating:
            # Re-executing a read-only operation is harmless, and parking
            # it would trade availability for a guarantee it does not
            # need — only side-effecting services park (CAP-style: safety
            # over liveness, but only where a duplicate would corrupt).
            return False
        entry = self.journal.lookup(request.invocation_id)
        if entry is None or entry.done:
            return False
        invocation_id = request.invocation_id
        self._parked.setdefault(invocation_id, []).append(request)
        self.requests_parked += 1
        self.node.network.obs.metrics.inc("bpeer.parked")
        if entry.origin is not None and entry.origin != self.peer_id:
            # The in-flight marker is another peer's write intent
            # (commit barrier).  Ask the origin what became of it — a
            # DONE answer replays to this parked retry, an "abandoned"
            # answer clears the intent so the next retry may execute.
            self._resolve_intent(invocation_id, entry.origin)
        timer = self.env.timeout(PARK_TIMEOUT)
        timer.add_callback(lambda _event: self._expire_parked(invocation_id, request))
        return True

    def _expire_parked(self, invocation_id: str, request: ExecRequest) -> None:
        waiting = self._parked.get(invocation_id)
        if not waiting or request not in waiting or not self.node.up:
            return
        waiting.remove(request)
        if not waiting:
            del self._parked[invocation_id]
        self._reply(
            request,
            ExecReply(
                request_id=request.request_id,
                kind="busy",
                retry_after=self._retry_after_hint(),
                epoch=self.coordinator_mgr.epoch,
                invocation_id=invocation_id,
            ),
        )

    def _serve_parked(self, invocation_id: str) -> None:
        """Answer every retry parked behind a now-completed invocation."""
        entry = self.journal.lookup(invocation_id)
        if entry is None or not entry.done:
            return
        for parked in self._parked.pop(invocation_id, []):
            self.journal.record_hit()
            self.node.network.obs.metrics.inc("bpeer.journal_hits")
            self._reply(parked, self._replay_reply(entry, parked))

    def _flush_parked(self, invocation_id: str, reply: ExecReply) -> None:
        """Answer parked retries with a non-result (the attempt failed)."""
        for parked in self._parked.pop(invocation_id, []):
            self._reply(parked, replace(reply, request_id=parked.request_id))

    def _journal_complete(self, request: ExecRequest, reply: ExecReply) -> ExecReply:
        """Record an execution's outcome in the journal.

        Results become the invocation's canonical ``DONE`` entry (first
        result wins — completing an already-done entry suppresses the
        duplicate and replays the stored value instead).  Non-results
        abandon the in-flight marker so a retry may execute afresh.
        """
        if not self.journal_enabled or request.invocation_id is None:
            return reply
        if reply.deduped:
            # Already a journal replay — the canonical entry exists.
            return reply
        invocation_id = request.invocation_id
        if reply.kind != "result":
            self.journal.abandon(invocation_id)
            if self.implementation.mutating:
                # Members recorded our write intent at the barrier;
                # withdraw it so a retry is not blocked behind a marker
                # for an attempt that applied nothing.
                self._clear_intent(invocation_id, self.peer_id)
            self._flush_parked(invocation_id, reply)
            return reply
        epoch = reply.epoch if reply.epoch is not None else self.coordinator_mgr.epoch
        canonical = replace(reply, invocation_id=invocation_id, epoch=epoch)
        entry, first = self.journal.complete(
            invocation_id, canonical, epoch=epoch, now=self.env.now
        )
        if not first:
            # A duplicate execution raced the canonical one (delegation
            # fallback); its value is suppressed in favour of the stored
            # result.
            self.node.network.obs.metrics.inc("bpeer.duplicate_suppressed")
            return self._replay_reply(entry, request)
        self._replicate_entry(entry)
        self._serve_parked(invocation_id)
        return canonical

    def _replicate_entry(self, entry: JournalEntry) -> None:
        """Eagerly replicate a mutating invocation's DONE entry group-wide.

        Read-only results stay local (re-executing them is harmless), so
        the steady-state message overhead of the journal is zero for
        lookup workloads; mutating results are broadcast at completion —
        atomically with the backend effect in simulation time — so a
        takeover coordinator can answer the retry instead of re-applying.
        """
        if not self.implementation.mutating:
            return
        view = self.groups.groups.get(self.group_id)
        members = view.sorted_members() if view is not None else []
        shipped = entry.replicable()
        for member in members:
            if member == self.peer_id:
                continue
            try:
                self.groups.send_to_member(
                    self.group_id,
                    member,
                    PROTO_DELEGATE,
                    ("journal", shipped),
                    category="bpeer-journal",
                    size_bytes=288,
                )
                self.node.network.obs.metrics.inc("bpeer.journal_replicated")
            except UnresolvablePeerError:
                continue

    def _on_coordinator_announced(self, coordinator: PeerId) -> None:
        """Journal-transfer handshake: ship DONE entries to a new winner."""
        if not self.journal_enabled:
            return
        if coordinator == self.peer_id:
            # We are the winner: pull the group's journal state into our
            # fresh term (the push below cannot help us — members that
            # never heard our announcement never push).
            if self.implementation.mutating:
                self._start_journal_sync()
            return
        # Only mutating results are replicated knowledge worth shipping —
        # a read-only entry replays locally at best, and pushing it would
        # tax every election on the Figure-4 read path.
        if not self.implementation.mutating:
            return
        if not self.node.up:
            return
        term = (coordinator, self.coordinator_mgr.epoch)
        if self._journal_pushed == term:
            return
        entries = self.journal.export()
        if not entries:
            return
        try:
            self.groups.send_to_member(
                self.group_id,
                coordinator,
                PROTO_DELEGATE,
                ("journal-push", entries),
                category="bpeer-journal",
                size_bytes=96 + 288 * len(entries),
            )
        except UnresolvablePeerError:
            return
        self._journal_pushed = term
        self.node.network.obs.metrics.inc("bpeer.journal_pushes")

    # -- exactly-once: takeover journal sync (pull side) --------------------------------
    #
    # The eager replication and the member push above are both
    # announcement-driven, so they share a blind spot: a coordinator whose
    # COORDINATOR message never reached the group (elected alone inside a
    # partition, winning after the heal because its epoch is highest)
    # takes over without ever being offered the entries the other side
    # completed meanwhile.  The takeover sync closes it from the other
    # direction — the new coordinator *pulls* from every member of its
    # current view, keeps re-pulling members that have not answered
    # (including ones that re-appear after a heal), and gates retried
    # mutations it does not recognise until the view is covered.

    def _start_journal_sync(self) -> None:
        """Begin (or continue) pulling journal state for our new term."""
        epoch = self.coordinator_mgr.epoch
        if self._sync_epoch == epoch:
            return
        self._sync_epoch = epoch
        self._sync_answered = set()
        if self._sync_proc is not None and self._sync_proc.is_alive:
            if self._sync_proc is not self.env.active_process:
                self._sync_proc.interrupt("superseded")
        self._sync_proc = self.node.spawn(
            self._journal_sync_loop(epoch), name=f"bpeer-journal-sync:{self.name}"
        )

    def _journal_sync_loop(self, epoch: Epoch):
        """Pull DONE entries from unanswered view members until covered."""
        try:
            while (
                self.node.up
                and self.coordinator_mgr.is_coordinator
                and self.coordinator_mgr.epoch == epoch
            ):
                pending = self._sync_pending()
                if not pending:
                    # View covered *now*; parked retries are answerable.
                    # Keep watching: a member re-joining the view (heal,
                    # restart) re-opens the pull until it answers too.
                    self._drain_sync_parked()
                else:
                    for member in pending:
                        try:
                            self.groups.send_to_member(
                                self.group_id,
                                member,
                                PROTO_DELEGATE,
                                ("journal-pull", epoch),
                                category="bpeer-journal",
                                size_bytes=64,
                            )
                        except UnresolvablePeerError:
                            continue
                    self.node.network.obs.metrics.inc("bpeer.journal_pulls")
                yield self.env.timeout(JOURNAL_SYNC_PERIOD)
        except Interrupt:
            return
        # Term over (deposed or higher epoch seen): bounce what we gated
        # so the proxy re-binds and retries under the current coordinator.
        self._bounce_sync_parked()

    def _on_roster_change(self, group_id: PeerGroupId, peer_id: PeerId, change: str) -> None:
        if group_id != self.group_id:
            return
        if change == "joined":
            self._sync_roster.add(peer_id)
        elif change == "left":
            # Graceful departure: the leaver flushed its state and owes no
            # answer.  ("removed" — believed dead — stays in the roster.)
            self._sync_roster.discard(peer_id)
            self._sync_answered.discard(peer_id)

    def _sync_pending(self) -> List[PeerId]:
        """Roster members that have not answered our pull for this term.

        The pending set is the all-time roster, not the live view: a
        member the failure detector evicted may hold the only copy of an
        effect applied just before it vanished, so the sync is complete
        only when that member answers too (after its restart or heal).
        """
        view = self.groups.groups.get(self.group_id)
        if view is not None:
            self._sync_roster.update(view.members)
        return sorted(
            (
                member
                for member in self._sync_roster
                if member != self.peer_id and member not in self._sync_answered
            ),
            key=lambda member: member.uuid_hex,
        )

    def _park_for_sync(self, request: ExecRequest) -> bool:
        """Gate a retried mutation behind the takeover sync; True if parked.

        Only *retries* (attempt > 1) of mutating invocations we have no
        journal knowledge of are gated — a first attempt cannot have been
        applied anywhere yet, so fresh traffic never waits.  The gate is
        bounded: the sync covers the view within a round-trip when its
        members are reachable, unreachable members are evicted by the
        failure detector, and the park backstop converts anything stuck
        into a ``busy`` bounce.
        """
        if not self.journal_enabled or request.invocation_id is None:
            return False
        if not self.implementation.mutating or request.attempt <= 1:
            return False
        if self._sync_epoch != self.coordinator_mgr.epoch or not self._sync_pending():
            return False
        if self.journal.lookup(request.invocation_id) is not None:
            return False
        self._sync_parked.append(request)
        self.requests_parked += 1
        self.node.network.obs.metrics.inc("bpeer.sync_parked")
        timer = self.env.timeout(PARK_TIMEOUT)
        timer.add_callback(lambda _event: self._expire_sync_parked(request))
        return True

    def _expire_sync_parked(self, request: ExecRequest) -> None:
        if request not in self._sync_parked or not self.node.up:
            return
        self._sync_parked.remove(request)
        self._reply(
            request,
            ExecReply(
                request_id=request.request_id,
                kind="busy",
                retry_after=self._retry_after_hint(),
                epoch=self.coordinator_mgr.epoch,
                invocation_id=request.invocation_id,
            ),
        )

    def _drain_sync_parked(self) -> None:
        """Answer the gated retries now that the roster's journals merged.

        Replay or bounce — NEVER execute.  A parked copy may have been
        abandoned by the proxy long ago (it retries sequentially and
        moves on after its per-attempt timeout), and two rival
        coordinators can each hold such a copy of the same invocation:
        executing from the drain lets both apply it.  Bouncing ``busy``
        instead means execution only ever happens on the direct-arrival
        path, for the proxy's single *live* attempt — giving per-invocation
        mutual exclusion for free from the proxy's sequential retries.
        """
        if not self._sync_parked:
            return
        parked, self._sync_parked = self._sync_parked, []
        for request in parked:
            if self._journal_answer(request):
                continue
            self._reply(
                request,
                ExecReply(
                    request_id=request.request_id,
                    kind="busy",
                    retry_after=0.0,
                    epoch=self.coordinator_mgr.epoch,
                    invocation_id=request.invocation_id,
                ),
            )

    def _bounce_sync_parked(self) -> None:
        parked, self._sync_parked = self._sync_parked, []
        for request in parked:
            self._reply(
                request,
                ExecReply(
                    request_id=request.request_id,
                    kind="busy",
                    retry_after=self._retry_after_hint(),
                    epoch=self.coordinator_mgr.epoch,
                    invocation_id=request.invocation_id,
                ),
            )

    def _merge_journal_entries(self, entries: List[JournalEntry]) -> None:
        for entry in entries:
            if self.journal.merge(entry, now=self.env.now):
                self.node.network.obs.metrics.inc("bpeer.journal_merges")
            # Retries parked behind this invocation (it raced the
            # replication) are answerable now.
            self._serve_parked(entry.invocation_id)

    # -- exactly-once: commit barrier (quorum write intent) ------------------------------
    #
    # The journal replication above is completion-driven, which leaves a
    # split-brain window: a coordinator isolated *after* applying an
    # effect cannot ship the DONE entry, and a rival coordinator (live
    # majority, or a deposed term the proxy fell back to) executes the
    # retry afresh — a double application no amount of after-the-fact
    # syncing can undo.  The commit barrier closes the window *before*
    # the effect: a mutating invocation executes only after a majority of
    # the group has durably recorded the coordinator's write intent.
    # Majorities intersect, so whichever coordinator reaches quorum
    # first is visible to any rival's barrier — the rival sees the
    # intent ("held"), bounces the retry, and the in-doubt question
    # "did the origin apply it?" is answered by the origin itself (its
    # apply + journal ``complete`` are atomic in simulation time), never
    # by a timeout.

    def _commit_cohort(self) -> List[PeerId]:
        """Peers whose acks count toward the commit quorum (not us).

        The all-time roster, not the live view: sizing the quorum to the
        failure detector's view lets an isolated minority shrink its
        denominator until it can "reach quorum" alone — the exact
        split-brain the barrier exists to prevent.
        """
        view = self.groups.groups.get(self.group_id)
        if view is not None:
            self._sync_roster.update(view.members)
        return sorted(
            (member for member in self._sync_roster if member != self.peer_id),
            key=lambda member: member.uuid_hex,
        )

    def _commit_barrier(self, request: ExecRequest):
        """Quorum write intent before a mutating effect.

        Returns ``None`` when execution may proceed, or the
        :class:`ExecReply` to answer instead (a journal replay when a
        member already holds the result, else a ``busy`` bounce).
        """
        if not self.journal_enabled or request.invocation_id is None:
            return None
        if not self.implementation.mutating:
            return None
        cohort = self._commit_cohort()
        needed = (len(cohort) + 1) // 2 + 1 - 1
        if needed <= 0:
            # Single-replica group: we are our own majority — no
            # messages, identical timing to the pre-barrier path.
            return None
        invocation_id = request.invocation_id
        epoch = self.coordinator_mgr.epoch
        token = next(self._intent_tokens)
        wait = _IntentWait(needed=needed, done=self.env.event(), held=set())
        self._intent_waits[token] = wait
        for member in cohort:
            try:
                self.groups.send_to_member(
                    self.group_id,
                    member,
                    PROTO_DELEGATE,
                    ("intent", token, invocation_id, epoch, self.peer_id),
                    category="bpeer-journal",
                    size_bytes=96,
                )
                wait.sent += 1
            except UnresolvablePeerError:
                continue
        self.node.network.obs.metrics.inc("bpeer.commit_intents")
        if wait.sent >= needed:
            timer = self.env.timeout(INTENT_TIMEOUT)
            yield AnyOf(self.env, [wait.done, timer])
        self._intent_waits.pop(token, None)
        if wait.done_entry is not None:
            # Someone already holds the canonical result: replay, never
            # re-execute.
            self.journal.merge(wait.done_entry, now=self.env.now)
            self._serve_parked(invocation_id)
            replayed = self._journal_done(request)
            if replayed is not None:
                return replayed
        if wait.acks >= needed:
            return None
        # Blocked: no quorum (partitioned/deposed/rival intent).  Bounce
        # the proxy; it backs off, re-binds, and retries elsewhere.
        self.node.network.obs.metrics.inc("bpeer.commit_blocked")
        if self.epoch_fencing and wait.max_seen is not None:
            # A refusing member knew a fresher term — stand for
            # re-election above it instead of limping on deposed.
            self.coordinator_mgr.elector.observe_external_epoch(wait.max_seen)
        for origin in wait.held:
            self._resolve_intent(invocation_id, origin)
        entry = self.journal.lookup(invocation_id)
        if entry is not None and not entry.done and (
            entry.origin is None or entry.origin == self.peer_id
        ):
            # Our own intent: we know we did not apply — withdraw it so
            # a later attempt (here or at a rival) may execute afresh.
            self.journal.abandon(invocation_id)
            self._clear_intent(invocation_id, self.peer_id)
        busy = ExecReply(
            request_id=request.request_id,
            kind="busy",
            retry_after=self._retry_after_hint(),
            epoch=self.coordinator_mgr.epoch,
            invocation_id=invocation_id,
        )
        self._flush_parked(invocation_id, busy)
        return busy

    def _resolve_intent(self, invocation_id: str, origin: Optional[PeerId]) -> None:
        """Ask an in-doubt intent's origin whether the effect was applied.

        The origin's answer is authoritative: a DONE entry means applied
        (we merge and replay), no entry means abandoned (we clear the
        intent group-wide so a retry may execute).  No answer — origin
        crashed or partitioned — keeps the invocation blocked until the
        origin is reachable again; guessing here is the double-apply.
        """
        if origin is None or origin == self.peer_id:
            return
        if invocation_id in self._intent_resolving:
            return
        self._intent_resolving.add(invocation_id)
        try:
            self.groups.send_to_member(
                self.group_id,
                origin,
                PROTO_DELEGATE,
                ("intent-status", invocation_id, self.peer_id),
                category="bpeer-journal",
                size_bytes=64,
            )
        except UnresolvablePeerError:
            self._intent_resolving.discard(invocation_id)
            return
        timer = self.env.timeout(INTENT_RESOLVE_TIMEOUT)
        timer.add_callback(
            lambda _event: self._intent_resolving.discard(invocation_id)
        )

    def _clear_intent(self, invocation_id: str, origin: PeerId) -> None:
        """Best-effort broadcast: drop the origin's abandoned intent."""
        for member in self._commit_cohort():
            try:
                self.groups.send_to_member(
                    self.group_id,
                    member,
                    PROTO_DELEGATE,
                    ("intent-clear", invocation_id, origin),
                    category="bpeer-journal",
                    size_bytes=64,
                )
            except UnresolvablePeerError:
                continue

    # -- admission control & dispatch (coordinator-side) -------------------------------

    def _admit(self, request: ExecRequest) -> None:
        """Admission control: enqueue with a dispatch target, or shed.

        The dispatch decision is made here, at arrival, so the bound is
        checked against the member that would actually serve the request
        (least-outstanding sheds only when the *whole group* is full;
        blind round-robin sheds whenever its rotation lands on a full
        member — that difference is the policies' throughput gap under
        heterogeneous backends).
        """
        if self._ledger_epoch != self.coordinator_mgr.epoch:
            self._member_load.clear()
            self._ledger_epoch = self.coordinator_mgr.epoch
        target = self._dispatch_target()
        state = self._load_for(target)
        obs = self.node.network.obs
        if self.queue_bound is not None and state.outstanding >= self.queue_bound:
            self._shed(request)
            return
        if self.journal_enabled and request.invocation_id is not None:
            # In-flight marker: a retry arriving while this runs is parked
            # (never concurrently executed); the delegation-timeout
            # fallback reconciles late results against it (first wins).
            self.journal.begin(
                request.invocation_id,
                request=request,
                epoch=self.coordinator_mgr.epoch,
                now=self.env.now,
                origin=self.peer_id,
            )
        state.outstanding += 1
        obs.metrics.observe(
            "bpeer.queue_depth", self._total_outstanding(), bounds=QUEUE_DEPTH_BUCKETS
        )
        self._queue.put(("exec", (request, target)))

    def _dispatch_members(self) -> List[PeerId]:
        """Members eligible for dispatch (ourselves when not load-sharing).

        Members the failure detector has removed from the group view (a
        crashed coordinator, silent election candidates) are skipped by
        every policy; their ledger entries are dropped here so leaked
        counts cannot poison admission.  Crashed followers are *not*
        detected — the proxy's timeout-and-retry masks them instead.
        """
        if not self.load_sharing:
            return [self.peer_id]
        view = self.groups.groups.get(self.group_id)
        members = view.sorted_members() if view is not None else []
        if not members:
            return [self.peer_id]
        current = set(members)
        for member in list(self._member_load):
            if member not in current:
                del self._member_load[member]
        return members

    def _dispatch_target(self) -> PeerId:
        members = self._dispatch_members()
        if len(members) == 1:
            return members[0]
        choice = self.dispatch.choose(members, self._member_load)
        return choice if choice is not None else self.peer_id

    def _load_for(self, member: PeerId) -> MemberLoad:
        state = self._member_load.get(member)
        if state is None:
            state = self._member_load[member] = MemberLoad()
        return state

    def _release_load(self, member: PeerId) -> None:
        state = self._member_load.get(member)
        if state is not None and state.outstanding > 0:
            state.outstanding -= 1

    def _total_outstanding(self) -> int:
        return sum(state.outstanding for state in self._member_load.values())

    def _shed(self, request: ExecRequest) -> None:
        """Refuse the request with a ``busy`` reply + retry-after hint."""
        self.requests_shed += 1
        self.node.network.obs.metrics.inc("bpeer.shed")
        self._reply(
            request,
            ExecReply(
                request_id=request.request_id,
                kind="busy",
                retry_after=self._retry_after_hint(),
                epoch=self.coordinator_mgr.epoch,
            ),
        )

    def _retry_after_hint(self) -> float:
        """ETA (seconds) until the least-loaded member frees a slot."""
        best: Optional[float] = None
        for member in self._dispatch_members():
            state = self._member_load.get(member)
            outstanding = state.outstanding if state is not None else 0
            per_request = (
                state.qos.time
                if state is not None and state.qos is not None
                else self.implementation.service_time
            )
            eta = per_request * max(1, outstanding)
            if best is None or eta < best:
                best = eta
        return best if best is not None else self.implementation.service_time

    def _coordinator_pointer(self) -> Optional[Tuple]:
        """Forward pointer ``(peer, address, epoch)`` for redirects."""
        coordinator = self.coordinator
        if coordinator is None:
            return None
        if coordinator == self.peer_id:
            address: Optional[Address] = self.endpoint.address
        else:
            address = self.endpoint.route_for(coordinator)
        return (coordinator, address, self.coordinator_mgr.epoch)

    # -- the worker (one request at a time, like a single-threaded JVM peer) -------------

    def _work_loop(self):
        try:
            while True:
                kind, item = yield self._queue.get()
                # Mid-execution marker: the autoscaler's drain must not
                # retire this peer between dequeue and completion.
                self._busy = True
                try:
                    if kind == "exec":
                        yield from self._serve(*item)
                    elif kind == "delegated":
                        yield from self._serve_delegated(*item)
                finally:
                    self._busy = False
        except Interrupt:
            return

    def _serve(self, request: ExecRequest, target: Optional[PeerId] = None):
        if target is None:
            target = self.peer_id
        blocked = yield from self._commit_barrier(request)
        if blocked is not None:
            self._reply(request, blocked)
            self._release_load(target)
            return
        if target != self.peer_id:
            # Spread load: the member executes and answers the proxy; its
            # completion report releases the ledger slot.
            self.requests_delegated += 1
            try:
                self.groups.send_to_member(
                    self.group_id,
                    target,
                    PROTO_DELEGATE,
                    ("direct", request),
                    category="bpeer-delegate",
                    size_bytes=512,
                )
                return
            except UnresolvablePeerError:
                # Fall through to local execution; move the accounting.
                self._release_load(target)
                self._load_for(self.peer_id).outstanding += 1
        if not self._fire_pre_commit(request):
            return
        reply = yield from self._execute_or_delegate(request)
        reply = self._journal_complete(request, reply)
        self._reply(request, reply)
        self._release_load(self.peer_id)
        self._load_for(self.peer_id).qos = self.qos_profile.snapshot()

    def _fire_pre_commit(self, request: ExecRequest) -> bool:
        """Fire the pre-commit decision point; True when execution may
        proceed.  A hook that crashes this node aborts the request before
        its side effect — the canonical crash-between-admission-and-commit
        window the exactly-once machinery must tolerate."""
        if self.pre_commit_hook is not None:
            self.pre_commit_hook(self, request)
        return self.node.up

    def _execute_or_delegate(self, request: ExecRequest):
        """Try locally; on backend unavailability, try each other member."""
        reply = yield from self._execute_local(request)
        if reply.kind != "cannot-serve":
            return reply
        # §4.1: a semantically equivalent peer transparently takes over.
        for member in self.groups.groups[self.group_id].sorted_members():
            if member == self.peer_id:
                continue
            replayed = self._journal_done(request)
            if replayed is not None:
                # The result landed via replication or a late relay-reply
                # while we waited out a delegation — stop fanning out.
                return replayed
            delegated = yield from self._delegate_to(member, request)
            if delegated is not None and delegated.kind != "cannot-serve":
                return delegated
        return reply  # everyone's backend is down

    def _execute_local(self, request: ExecRequest):
        obs = self.node.network.obs
        started = self.env.now
        yield self.env.timeout(self.implementation.service_time)
        backend = self.implementation.backend
        writes_before = backend.writes
        try:
            value = self.implementation.invoke(request.arguments)
        except BackendUnavailable:
            self.qos_profile.record_failure()
            obs.metrics.inc("bpeer.backend_unavailable")
            return ExecReply(request_id=request.request_id, kind="cannot-serve")
        except (RecordNotFound, ValueError) as error:
            self._ledger_effect(request, backend, writes_before)
            obs.metrics.inc("bpeer.faults")
            return ExecReply(
                request_id=request.request_id,
                kind="fault",
                fault_code="Client",
                value=str(error),
            )
        except Exception as error:  # implementation bug
            self._ledger_effect(request, backend, writes_before)
            obs.metrics.inc("bpeer.faults")
            return ExecReply(
                request_id=request.request_id,
                kind="fault",
                fault_code="Server",
                value=f"{type(error).__name__}: {error}",
            )
        self._ledger_effect(request, backend, writes_before)
        self.requests_executed += 1
        self.qos_profile.record_success(self.env.now - started)
        obs.metrics.inc("bpeer.executed")
        obs.observe_phase("execute", self.env.now - started)
        return ExecReply(
            request_id=request.request_id,
            kind="result",
            value=value,
            served_by=self.implementation.name,
        )

    def _ledger_effect(self, request: ExecRequest, backend, writes_before: int) -> None:
        """Audit trail: ledger the write batch this execution applied.

        Recorded even with the journal disabled — the at-least-once
        baseline must expose its duplicate applications to the campaign's
        duplicate-execution audit, not hide them.
        """
        if request.invocation_id is not None and backend.writes > writes_before:
            backend.record_effect(request.invocation_id, self.name)

    # -- delegation (coordinator -> member) -----------------------------------------------

    def _delegate_to(self, member: PeerId, request: ExecRequest):
        delegation_id = next(self._delegation_ids)
        delegation = _Delegation(request=request, done=self.env.event())
        self._delegations[delegation_id] = delegation
        try:
            self.groups.send_to_member(
                self.group_id,
                member,
                PROTO_DELEGATE,
                ("relay", delegation_id, self.peer_id, request),
                category="bpeer-delegate",
                size_bytes=512,
            )
        except UnresolvablePeerError:
            del self._delegations[delegation_id]
            return None
        self.requests_delegated += 1
        timer = self.env.timeout(DELEGATION_TIMEOUT)
        yield AnyOf(self.env, [delegation.done, timer])
        self._delegations.pop(delegation_id, None)
        return delegation.reply

    def _on_delegate(self, payload, src_peer: PeerId, group_id: PeerGroupId) -> None:
        if group_id != self.group_id or not self.node.up:
            return
        mode = payload[0]
        if mode == "direct":
            # Load-sharing: execute and answer the proxy ourselves; the
            # sending coordinator gets a completion report afterwards so
            # its load ledger stays truthful.
            _mode, request = payload
            self.endpoint.add_route(request.reply_to, request.reply_addr)
            self._queue.put(("delegated", ("direct", None, src_peer, request)))
        elif mode == "report":
            # A member finished a direct-dispatched request: release its
            # ledger slot and refresh its QoS snapshot (feeds the
            # least-outstanding and QoS-weighted policies).  Since PR 4 the
            # report piggybacks the member's DONE journal entry — free
            # replication back to the dispatching coordinator.
            member, qos = payload[1], payload[2]
            self._release_load(member)
            self._load_for(member).qos = qos
            entry = payload[3] if len(payload) > 3 else None
            if entry is not None and self.journal_enabled:
                self._merge_journal_entries([entry])
        elif mode == "journal":
            # Eager replication of a mutating invocation's result.
            if self.journal_enabled:
                self._merge_journal_entries([payload[1]])
        elif mode == "journal-push":
            # Bulk journal transfer to a freshly elected coordinator.
            if self.journal_enabled:
                self._merge_journal_entries(payload[1])
        elif mode == "journal-pull":
            # A takeover coordinator asks for our DONE entries.  Always
            # answer — an empty reply is still the "view member covered"
            # signal the puller's gate is waiting on.
            if self.journal_enabled:
                entries = self.journal.export()
                try:
                    self.groups.send_to_member(
                        self.group_id,
                        src_peer,
                        PROTO_DELEGATE,
                        ("journal-sync-reply", payload[1], entries),
                        category="bpeer-journal",
                        size_bytes=96 + 288 * len(entries),
                    )
                except UnresolvablePeerError:
                    pass
        elif mode == "journal-sync-reply":
            # A member answered our takeover pull: merge its entries and,
            # once the whole view has answered for this term, open the
            # gate for the retries parked behind the sync.
            if self.journal_enabled:
                _mode, epoch, entries = payload
                self._merge_journal_entries(entries)
                if (
                    self._sync_epoch == epoch
                    and epoch == self.coordinator_mgr.epoch
                ):
                    self._sync_answered.add(src_peer)
                    if not self._sync_pending():
                        self._drain_sync_parked()
        elif mode == "intent":
            # A coordinator asks us to record its write intent before it
            # applies a mutating effect (commit barrier).
            _mode, token, invocation_id, epoch, origin = payload
            status: str = "ok"
            extra: Any = None
            seen: Optional[Epoch] = None
            if self.journal_enabled:
                max_seen = self.coordinator_mgr.elector.max_epoch_seen
                if (
                    self.epoch_fencing
                    and epoch is not None
                    and max_seen > epoch
                ):
                    # Fencing: the asker's term is already superseded —
                    # deny it quorum and tell it what we know.
                    status, seen = "stale", max_seen
                else:
                    entry = self.journal.lookup(invocation_id)
                    if entry is not None and entry.done:
                        status, extra = "done", entry.replicable()
                    elif entry is not None:
                        # A rival's intent (or the asker's own earlier
                        # one) is already on file: report who holds it.
                        status, extra = "held", entry.origin
                    else:
                        self.journal.begin(
                            invocation_id,
                            epoch=epoch,
                            now=self.env.now,
                            origin=origin,
                        )
                        self.node.network.obs.metrics.inc(
                            "bpeer.intents_recorded"
                        )
            try:
                self.groups.send_to_member(
                    self.group_id,
                    src_peer,
                    PROTO_DELEGATE,
                    ("intent-reply", token, status, extra, seen),
                    category="bpeer-journal",
                    size_bytes=96 if status != "done" else 96 + 288,
                )
            except UnresolvablePeerError:
                pass
        elif mode == "intent-reply":
            _mode, token, status, extra, seen = payload
            wait = self._intent_waits.get(token)
            if wait is not None:
                wait.responses += 1
                if status == "ok":
                    wait.acks += 1
                elif status == "done":
                    wait.done_entry = extra
                elif status == "held":
                    if extra == self.peer_id:
                        # The member still holds OUR earlier intent — we
                        # are its origin and know it was withdrawn, so it
                        # counts as an ack.
                        wait.acks += 1
                    else:
                        wait.held.add(extra)
                elif status == "stale":
                    if seen is not None and (
                        wait.max_seen is None or seen > wait.max_seen
                    ):
                        wait.max_seen = seen
                if wait.decided() and not wait.done.triggered:
                    wait.done.succeed()
        elif mode == "intent-clear":
            # An intent's origin (or a resolver acting on its authority)
            # withdrew it: the invocation was never applied there.
            _mode, invocation_id, origin = payload
            if self.journal_enabled:
                entry = self.journal.lookup(invocation_id)
                if entry is not None and not entry.done and entry.origin == origin:
                    self.journal.abandon(invocation_id)
        elif mode == "intent-status":
            # In-doubt resolution: only we can say whether our intent's
            # effect was applied (apply + complete are atomic here).
            _mode, invocation_id, asker = payload
            if self.journal_enabled:
                entry = self.journal.lookup(invocation_id)
                if entry is not None and entry.done:
                    outcome: Any = entry.replicable()
                elif entry is not None and entry.origin == self.peer_id:
                    outcome = "pending"  # still executing — keep waiting
                else:
                    outcome = None  # abandoned (or never ours): not applied
                try:
                    self.groups.send_to_member(
                        self.group_id,
                        src_peer,
                        PROTO_DELEGATE,
                        ("intent-status-reply", invocation_id, outcome),
                        category="bpeer-journal",
                        size_bytes=96,
                    )
                except UnresolvablePeerError:
                    pass
        elif mode == "intent-status-reply":
            _mode, invocation_id, outcome = payload
            self._intent_resolving.discard(invocation_id)
            if self.journal_enabled and outcome != "pending":
                if outcome is None:
                    # The origin abandoned the intent: clear it here and
                    # group-wide so a retry may execute afresh.
                    entry = self.journal.lookup(invocation_id)
                    if (
                        entry is not None
                        and not entry.done
                        and entry.origin == src_peer
                    ):
                        self.journal.abandon(invocation_id)
                    self._clear_intent(invocation_id, src_peer)
                else:
                    if self.journal.merge(outcome, now=self.env.now):
                        self.node.network.obs.metrics.inc("bpeer.journal_merges")
                    self._serve_parked(invocation_id)
        elif mode == "relay":
            _mode, delegation_id, coordinator, request = payload
            self._queue.put(
                ("delegated", ("relay", delegation_id, coordinator, request))
            )
        elif mode == "relay-reply":
            _mode, delegation_id, reply = payload
            delegation = self._delegations.get(delegation_id)
            if delegation is not None:
                delegation.reply = reply
                if not delegation.done.triggered:
                    delegation.done.succeed()
            else:
                self._reconcile_late_reply(reply)

    def _reconcile_late_reply(self, reply: ExecReply) -> None:
        """Reconcile a member's answer that arrived after its delegation
        timed out.  The fallback may have moved on to another member; the
        in-flight journal entry (tombstone) already guards against a
        concurrent retry, and committing the first result here means any
        slower duplicate is suppressed at completion time (first result
        wins) instead of double-delivered."""
        if not self.journal_enabled or reply.invocation_id is None:
            return
        if reply.kind != "result" or reply.deduped:
            return
        invocation_id = reply.invocation_id
        entry, first = self.journal.complete(
            invocation_id, reply, epoch=reply.epoch, now=self.env.now
        )
        if not first:
            self.node.network.obs.metrics.inc("bpeer.duplicate_suppressed")
            return
        self.node.network.obs.metrics.inc("bpeer.late_replies_reconciled")
        self._replicate_entry(entry)
        self._serve_parked(invocation_id)

    def _serve_delegated(self, mode, delegation_id, coordinator, request: ExecRequest):
        if mode == "direct":
            # Load-sharing: we answer the proxy ourselves — but if our own
            # backend is down, chain through the group like a coordinator
            # would (§4.1's transparent takeover applies here too).
            reply = self._journal_done(request)
            if reply is None:
                if not self._fire_pre_commit(request):
                    return
                reply = yield from self._execute_or_delegate(request)
                reply = self._journal_complete(request, reply)
            self._reply(request, reply)
            self._report_to(coordinator, entry=self._piggyback_entry(request, reply))
            return
        # Relay mode: execute locally only (the *coordinator* owns the
        # delegation chain; a delegate that also delegated could loop).
        reply = self._journal_done(request)
        if reply is None:
            if not self._fire_pre_commit(request):
                return
            reply = yield from self._execute_local(request)
            reply = self._journal_complete(request, reply)
        try:
            self.groups.send_to_member(
                self.group_id,
                coordinator,
                PROTO_DELEGATE,
                ("relay-reply", delegation_id, reply),
                category="bpeer-delegate",
                size_bytes=512,
            )
        except UnresolvablePeerError:
            pass

    def _report_to(
        self, coordinator: Optional[PeerId], entry: Optional[JournalEntry] = None
    ) -> None:
        """Completion report to the dispatching coordinator (+ journal entry)."""
        if coordinator is None or coordinator == self.peer_id:
            return
        try:
            self.groups.send_to_member(
                self.group_id,
                coordinator,
                PROTO_DELEGATE,
                ("report", self.peer_id, self.qos_profile.snapshot(), entry),
                category="bpeer-load-report",
                size_bytes=96 if entry is None else 96 + 288,
            )
        except UnresolvablePeerError:
            pass

    def _piggyback_entry(
        self, request: ExecRequest, reply: ExecReply
    ) -> Optional[JournalEntry]:
        """The DONE entry a completion report should carry, if any."""
        if not self.journal_enabled or request.invocation_id is None:
            return None
        if reply.kind != "result":
            return None
        entry = self.journal.lookup(request.invocation_id)
        if entry is None or not entry.done:
            return None
        return entry.replicable()

    # -- coordinator discovery (proxy-side resolver queries) ---------------------------------

    def _on_coordinator_query(self, query) -> Optional[Any]:
        group_id = query.payload
        if group_id != self.group_id or not self.node.up:
            return None
        if self.coordinator is None:
            return None
        # ``(peer, address, epoch)`` — the epoch lets a proxy facing
        # conflicting answers (split-brain) prefer the freshest claim.
        return self._coordinator_pointer()

    # -- plumbing ----------------------------------------------------------------------------

    def _reply(self, request: ExecRequest, reply: ExecReply) -> None:
        if reply.epoch is None and reply.kind in ("result", "fault"):
            # Stamp the term the work was done under so the proxy can
            # discard results that raced with a takeover.
            reply.epoch = self.coordinator_mgr.epoch
        try:
            self.endpoint.send(
                request.reply_to,
                PROTO_EXEC_REPLY,
                reply,
                category="bpeer-reply",
                size_bytes=768,
            )
        except UnresolvablePeerError:
            pass

    def _on_crash(self) -> None:
        self._queue.items.clear()
        self._delegations.clear()
        self._member_load.clear()
        self._ledger_epoch = None
        self._worker = None
        self._republisher = None
        # Exactly-once state: DONE entries model durable storage (like the
        # persisted election epoch) and survive the crash; in-flight
        # markers and parked retries are memory and do not — a restarted
        # peer may execute those invocations afresh.
        self._parked.clear()
        self._journal_pushed = None
        self._sync_epoch = None
        self._sync_answered = set()
        self._sync_parked.clear()
        self._sync_proc = None
        self._intent_waits.clear()
        self._intent_resolving.clear()
        self.journal.drop_executing()

    def __repr__(self) -> str:
        role = "coordinator" if self.is_coordinator else "member"
        return f"<BPeer {self.name} {role} of {self.group_name}>"
