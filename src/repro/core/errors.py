"""Whisper's error taxonomy."""

from __future__ import annotations

__all__ = [
    "WhisperError",
    "NoMatchingGroupError",
    "NoCoordinatorError",
    "InvocationFailedError",
    "AnnotationError",
    "CircuitOpenError",
]


class WhisperError(Exception):
    """Base class for Whisper-level failures."""


class AnnotationError(WhisperError):
    """A service's semantic annotations are missing or unresolvable."""


class NoMatchingGroupError(WhisperError):
    """Semantic discovery found no b-peer group for the service's semantics."""


class NoCoordinatorError(WhisperError):
    """A matching group exists but no coordinator could be reached."""


class InvocationFailedError(WhisperError):
    """The request could not be completed after retries and re-binding."""


class CircuitOpenError(WhisperError):
    """The proxy's circuit breaker rejected the call locally (no fallback)."""
