"""Unit tests for WSDL-S XML reading/writing."""

import pytest

from repro.ontology import SM
from repro.wsdl import (
    WsdlError,
    bank_loans_wsdl,
    definitions_from_xml,
    definitions_to_xml,
    healthcare_wsdl,
    insurance_claims_wsdl,
    student_management_wsdl,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [student_management_wsdl, insurance_claims_wsdl, bank_loans_wsdl, healthcare_wsdl],
    )
    def test_annotation_survives_roundtrip(self, factory):
        original = factory()
        parsed = definitions_from_xml(definitions_to_xml(original))
        original_op = original.operations()[0]
        parsed_op = parsed.operations()[0]
        assert parsed_op.annotation() == original_op.annotation()

    def test_schema_survives_roundtrip(self):
        original = student_management_wsdl()
        parsed = definitions_from_xml(definitions_to_xml(original))
        assert "StudentInfoType" in parsed.schema.complex_types
        complex_type = parsed.schema.complex_types["StudentInfoType"]
        courses = complex_type.element("enrolledCourses")
        assert courses is not None
        assert courses.repeated
        assert not courses.required
        assert set(parsed.schema.elements) == {"StudentID", "StudentInfo"}

    def test_names_survive_roundtrip(self):
        parsed = definitions_from_xml(definitions_to_xml(student_management_wsdl()))
        assert parsed.name == "StudentManagement"
        assert parsed.single_interface().name == "StudentManagementUMA"

    def test_namespace_bindings_recovered(self):
        parsed = definitions_from_xml(definitions_to_xml(student_management_wsdl()))
        assert parsed.namespaces["sm"] == SM.uri


class TestPaperShorthand:
    """§3.1's listing uses element="sm:StudentID" as the concept itself."""

    PAPER_STYLE = """<?xml version="1.0" encoding="UTF-8"?>
<definitions name="StudentManagement"
             targetNamespace="http://uma.pt/services/StudentManagement"
             xmlns:sm="http://uma.pt/ontologies/student#">
  <interface name="StudentManagementUMA">
    <operation name="StudentInformation">
      <action element="sm:StudentInformation"/>
      <input messageLabel="ID" element="sm:StudentID"/>
      <output messageLabel="student" element="sm:StudentInfo"/>
    </operation>
  </interface>
</definitions>"""

    def test_shorthand_parses_to_concepts(self):
        parsed = definitions_from_xml(self.PAPER_STYLE)
        annotation = parsed.single_interface().operation("StudentInformation").annotation()
        assert annotation.action == SM["StudentInformation"]
        assert annotation.inputs == (SM["StudentID"],)
        assert annotation.outputs == (SM["StudentInfo"],)

    def test_message_labels_preserved(self):
        parsed = definitions_from_xml(self.PAPER_STYLE)
        operation = parsed.single_interface().operation("StudentInformation")
        assert operation.inputs[0].message_label == "ID"
        assert operation.outputs[0].message_label == "student"


class TestErrors:
    def test_malformed_xml_rejected(self):
        with pytest.raises(WsdlError):
            definitions_from_xml("<oops")

    def test_wrong_root_rejected(self):
        with pytest.raises(WsdlError):
            definitions_from_xml("<html/>")

    def test_nameless_definitions_rejected(self):
        with pytest.raises(WsdlError):
            definitions_from_xml("<definitions/>")
