"""Tests for WSDL service/port endpoints."""

import pytest

from repro.wsdl import (
    ServicePort,
    WsdlError,
    definitions_from_xml,
    definitions_to_xml,
    student_management_wsdl,
)


class TestServicePort:
    def test_address_parses_sim_location(self):
        port = ServicePort("P", "I", "sim://web0:80/StudentManagement")
        address, path = port.address()
        assert address == ("web0", 80)
        assert path == "/StudentManagement"

    def test_non_sim_location_rejected(self):
        with pytest.raises(WsdlError):
            ServicePort("P", "I", "http://example.org/x").address()

    def test_missing_port_rejected(self):
        with pytest.raises(WsdlError):
            ServicePort("P", "I", "sim://web0/x").address()

    def test_add_port_validates_interface(self):
        definitions = student_management_wsdl()
        with pytest.raises(WsdlError, match="unknown interface"):
            definitions.add_port(ServicePort("P", "Ghost", "sim://h:80/x"))

    def test_endpoint_requires_ports(self):
        definitions = student_management_wsdl()
        with pytest.raises(WsdlError, match="no service ports"):
            definitions.endpoint()

    def test_ports_roundtrip_xml(self):
        definitions = student_management_wsdl()
        definitions.add_port(
            ServicePort(
                "StudentPort", "StudentManagementUMA",
                "sim://web0:80/StudentManagement",
            )
        )
        parsed = definitions_from_xml(definitions_to_xml(definitions))
        assert len(parsed.ports) == 1
        assert parsed.endpoint() == (("web0", 80), "/StudentManagement")


class TestBootstrapFromWsdl:
    def test_client_invokes_from_served_description(self):
        """The full SOA bootstrap: fetch ?wsdl, read the endpoint from the
        service/port element, invoke the advertised operation."""
        from repro.core import ScenarioConfig, WhisperSystem
        from repro.soap import HttpRequest, SoapClient, http_request

        system = WhisperSystem(ScenarioConfig(seed=121))
        service = system.deploy_student_service(system.config.replace(replicas=2))
        system.settle(6.0)
        node = system.network.add_host("bootstrap-client")
        outcome = {}

        def bootstrap():
            response = yield from http_request(
                node, service.address,
                HttpRequest("GET", f"{service.path}?wsdl"), timeout=2.0,
            )
            definitions = definitions_from_xml(response.body)
            address, path = definitions.endpoint()
            operation = definitions.operations()[0].name
            client = SoapClient(node)
            outcome["value"] = yield from client.call(
                address, path, operation, {"ID": "S00001"}, timeout=30.0
            )

        system.env.run(until=node.spawn(bootstrap()))
        assert outcome["value"]["studentId"] == "S00001"
