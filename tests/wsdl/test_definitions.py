"""Unit tests for the WSDL document model and WSDL-S annotations."""

import pytest

from repro.ontology import SM, university_ontology
from repro.wsdl import (
    Definitions,
    Interface,
    MessagePart,
    Operation,
    SemanticAnnotation,
    WsdlError,
    student_management_wsdl,
)


@pytest.fixture
def definitions():
    return student_management_wsdl()


class TestModel:
    def test_single_interface(self, definitions):
        interface = definitions.single_interface()
        assert interface.name == "StudentManagementUMA"

    def test_operation_lookup(self, definitions):
        operation = definitions.single_interface().operation("StudentInformation")
        assert operation.name == "StudentInformation"

    def test_missing_operation_raises(self, definitions):
        with pytest.raises(WsdlError):
            definitions.single_interface().operation("Ghost")

    def test_missing_interface_raises(self, definitions):
        with pytest.raises(WsdlError):
            definitions.interface("Ghost")

    def test_duplicate_interface_rejected(self, definitions):
        with pytest.raises(WsdlError):
            definitions.add_interface(Interface(name="StudentManagementUMA"))

    def test_duplicate_operation_rejected(self, definitions):
        interface = definitions.single_interface()
        with pytest.raises(WsdlError):
            interface.add_operation(Operation(name="StudentInformation"))

    def test_single_interface_requires_exactly_one(self, definitions):
        definitions.add_interface(Interface(name="Second"))
        with pytest.raises(WsdlError):
            definitions.single_interface()

    def test_operations_lists_all(self, definitions):
        assert [op.name for op in definitions.operations()] == ["StudentInformation"]


class TestAnnotations:
    def test_annotation_extracts_triple(self, definitions):
        annotation = definitions.single_interface().operation(
            "StudentInformation"
        ).annotation()
        assert annotation.action == SM["StudentInformation"]
        assert annotation.inputs == (SM["StudentID"],)
        assert annotation.outputs == (SM["StudentInfo"],)

    def test_unannotated_action_raises(self):
        operation = Operation(name="Op", inputs=[], outputs=[])
        with pytest.raises(WsdlError, match="action"):
            operation.annotation()

    def test_unannotated_part_raises(self):
        operation = Operation(
            name="Op",
            action="http://x#A",
            inputs=[MessagePart("in", "tns:In")],  # no model reference
        )
        assert not operation.is_annotated
        with pytest.raises(WsdlError, match="unannotated"):
            operation.annotation()

    def test_is_annotated_true_for_sample(self, definitions):
        assert definitions.single_interface().operation("StudentInformation").is_annotated

    def test_unresolved_in_reports_missing(self):
        annotation = SemanticAnnotation(
            action="http://ghost#A", inputs=("http://ghost#B",), outputs=()
        )
        onto = university_ontology()
        assert set(annotation.unresolved_in(onto)) == {"http://ghost#A", "http://ghost#B"}

    def test_all_concepts(self):
        annotation = SemanticAnnotation(action="a", inputs=("b",), outputs=("c", "d"))
        assert annotation.all_concepts() == ["a", "b", "c", "d"]


class TestValidation:
    def test_sample_is_valid(self, definitions):
        assert definitions.validate() == []

    def test_empty_definitions_invalid(self):
        empty = Definitions(name="Empty", target_namespace="http://t")
        assert any("no interface" in p for p in empty.validate())

    def test_interface_without_operations_invalid(self):
        document = Definitions(name="D", target_namespace="http://t")
        document.add_interface(Interface(name="I"))
        assert any("no operations" in p for p in document.validate())

    def test_undeclared_element_reference_reported(self, definitions):
        operation = definitions.single_interface().operation("StudentInformation")
        operation.inputs.append(
            MessagePart("extra", "tns:Ghost", model_reference=SM["StudentID"])
        )
        assert any("Ghost" in p for p in definitions.validate())
