"""Unit tests for the XML-Schema subset."""

import pytest

from repro.wsdl import ComplexType, ElementDecl, Schema, SchemaError


@pytest.fixture
def schema():
    s = Schema(target_namespace="http://t.org/svc")
    s.add_complex_type(
        ComplexType(
            name="PersonType",
            elements=[
                ElementDecl("name", "xsd:string"),
                ElementDecl("age", "xsd:int", min_occurs=0),
                ElementDecl("tags", "xsd:string", min_occurs=0, max_occurs=-1),
            ],
        )
    )
    s.add_element(ElementDecl("Person", "tns:PersonType"))
    s.add_element(ElementDecl("Id", "xsd:string"))
    return s


class TestSimpleTypes:
    @pytest.mark.parametrize(
        "type_name,value",
        [
            ("xsd:string", "hello"),
            ("xsd:int", 42),
            ("xsd:float", 1.5),
            ("xsd:float", 2),
            ("xsd:boolean", True),
            ("xsd:date", "2026-07-07"),
        ],
    )
    def test_accepts_conforming(self, schema, type_name, value):
        schema.validate_value(type_name, value)

    @pytest.mark.parametrize(
        "type_name,value",
        [
            ("xsd:string", 1),
            ("xsd:int", "42"),
            ("xsd:int", True),  # bool is not an int here
            ("xsd:boolean", 1),
        ],
    )
    def test_rejects_nonconforming(self, schema, type_name, value):
        with pytest.raises(SchemaError):
            schema.validate_value(type_name, value)

    def test_unknown_builtin_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_value("xsd:quaternion", 1)


class TestComplexTypes:
    def test_valid_struct(self, schema):
        schema.validate_value("tns:PersonType", {"name": "Ana", "age": 30})

    def test_optional_element_may_be_absent(self, schema):
        schema.validate_value("tns:PersonType", {"name": "Ana"})

    def test_missing_required_rejected(self, schema):
        with pytest.raises(SchemaError, match="required"):
            schema.validate_value("tns:PersonType", {"age": 30})

    def test_extraneous_rejected(self, schema):
        with pytest.raises(SchemaError, match="unexpected"):
            schema.validate_value("tns:PersonType", {"name": "Ana", "ghost": 1})

    def test_repeated_element_takes_list(self, schema):
        schema.validate_value("tns:PersonType", {"name": "Ana", "tags": ["a", "b"]})

    def test_repeated_element_rejects_scalar(self, schema):
        with pytest.raises(SchemaError, match="repeats"):
            schema.validate_value("tns:PersonType", {"name": "Ana", "tags": "a"})

    def test_repeated_element_items_typed(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_value("tns:PersonType", {"name": "Ana", "tags": [1]})

    def test_non_dict_rejected(self, schema):
        with pytest.raises(SchemaError, match="dict"):
            schema.validate_value("tns:PersonType", "Ana")

    def test_unknown_type_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_value("tns:Ghost", {})


class TestGlobalElements:
    def test_validate_element(self, schema):
        schema.validate_element("Person", {"name": "Ana"})
        schema.validate_element("Id", "S1")

    def test_unknown_element_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_element("Ghost", {})

    def test_duplicate_declarations_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add_element(ElementDecl("Person", "xsd:string"))
        with pytest.raises(SchemaError):
            schema.add_complex_type(ComplexType("PersonType"))

    def test_is_simple(self, schema):
        assert schema.is_simple("xsd:string")
        assert schema.is_simple("xs:int")
        assert not schema.is_simple("tns:PersonType")
