"""Integration tests: SoapClient against SoapServer."""

import pytest

from repro.soap import RequestTimeout, SoapClient, SoapFault, SoapServer


@pytest.fixture
def deployment(env, network, two_hosts):
    server_node, client_node = two_hosts
    server = SoapServer(server_node, port=80)

    def dispatcher(operation, arguments, headers):
        if operation == "add":
            return arguments["a"] + arguments["b"]
        if operation == "echo-headers":
            return dict(headers)
        if operation == "slow":
            yield env.timeout(float(arguments["delay"]))
            return "done"
        if operation == "fail-client":
            raise SoapFault.client("bad arguments", detail={"why": "test"})
        raise RuntimeError("unexpected operation")

    server.mount("/svc", dispatcher)
    client = SoapClient(client_node, default_timeout=2.0)
    return server, client, server_node, client_node


def _call(env, node, client, *args, **kwargs):
    outcome = {}

    def caller():
        try:
            outcome["value"] = yield from client.call(*args, **kwargs)
        except (SoapFault, RequestTimeout) as error:
            outcome["error"] = error

    env.run(until=node.spawn(caller()))
    return outcome


class TestCalls:
    def test_successful_call(self, env, deployment):
        server, client, _s, client_node = deployment
        outcome = _call(env, client_node, client, ("a", 80), "/svc", "add", {"a": 2, "b": 3})
        assert outcome["value"] == 5
        assert client.calls_sent == 1
        assert server.calls_handled == 1

    def test_headers_reach_dispatcher(self, env, deployment):
        _server, client, _s, client_node = deployment
        outcome = _call(
            env, client_node, client, ("a", 80), "/svc", "echo-headers", {},
            headers={"tenant": "acme"},
        )
        assert outcome["value"]["tenant"] == "acme"

    def test_generator_dispatcher(self, env, deployment):
        _server, client, _s, client_node = deployment
        outcome = _call(
            env, client_node, client, ("a", 80), "/svc", "slow", {"delay": "0.1"}
        )
        assert outcome["value"] == "done"
        assert env.now >= 0.1

    def test_rtt_recorded_on_trace(self, env, network, deployment):
        _server, client, _s, client_node = deployment
        _call(env, client_node, client, ("a", 80), "/svc", "add", {"a": 1, "b": 1})
        rtts = network.trace.rtts()
        assert len(rtts) == 1
        assert 0 < rtts[0] < 0.01


class TestFaults:
    def test_explicit_fault_propagates(self, env, deployment):
        server, client, _s, client_node = deployment
        outcome = _call(env, client_node, client, ("a", 80), "/svc", "fail-client", {})
        fault = outcome["error"]
        assert isinstance(fault, SoapFault)
        assert fault.faultcode == "Client"
        assert fault.detail == {"why": "test"}
        assert client.faults_received == 1
        assert server.faults_returned == 1

    def test_dispatcher_bug_becomes_server_fault(self, env, deployment):
        _server, client, _s, client_node = deployment
        outcome = _call(env, client_node, client, ("a", 80), "/svc", "unknown-op", {})
        assert outcome["error"].faultcode == "Server"
        assert "RuntimeError" in outcome["error"].faultstring


class TestSystemFailures:
    def test_crashed_server_is_silent_not_faulting(self, env, deployment):
        """§1: system failures produce no <soap:fault> — only a timeout."""
        _server, client, server_node, client_node = deployment
        server_node.crash()
        outcome = _call(
            env, client_node, client, ("a", 80), "/svc", "add", {"a": 1, "b": 1},
            timeout=0.5,
        )
        assert isinstance(outcome["error"], RequestTimeout)
        assert client.timeouts == 1

    def test_crash_mid_request_is_silent(self, env, deployment):
        _server, client, server_node, client_node = deployment

        def crasher():
            yield env.timeout(0.05)
            server_node.crash()

        client_node.spawn(crasher())
        outcome = _call(
            env, client_node, client, ("a", 80), "/svc", "slow", {"delay": "0.2"},
            timeout=0.5,
        )
        assert isinstance(outcome["error"], RequestTimeout)
