"""Unit tests for SOAP envelopes and faults."""

import pytest

from repro.soap import Envelope, EnvelopeError, FaultCode, SoapFault


class TestCallEnvelope:
    def test_roundtrip(self):
        envelope = Envelope.call(
            "StudentInformation", {"ID": "S00001"}, headers={"trace": "t1"}
        )
        parsed = Envelope.from_xml(envelope.to_xml())
        assert parsed.kind == "call"
        assert parsed.operation == "StudentInformation"
        assert parsed.arguments == {"ID": "S00001"}
        assert parsed.headers == {"trace": "t1"}

    def test_empty_arguments(self):
        parsed = Envelope.from_xml(Envelope.call("Ping").to_xml())
        assert parsed.arguments == {}

    def test_complex_arguments(self):
        arguments = {"filter": {"ids": ["a", "b"], "limit": 5}, "flag": True}
        parsed = Envelope.from_xml(Envelope.call("Query", arguments).to_xml())
        assert parsed.arguments == arguments


class TestResultEnvelope:
    def test_roundtrip(self):
        value = {"studentId": "S1", "courses": ["M101"]}
        parsed = Envelope.from_xml(Envelope.result("Op", value).to_xml())
        assert parsed.kind == "result"
        assert parsed.value == value
        assert not parsed.is_fault
        parsed.raise_if_fault()  # no-op

    def test_none_result(self):
        parsed = Envelope.from_xml(Envelope.result("Op", None).to_xml())
        assert parsed.value is None


class TestFaultEnvelope:
    def test_roundtrip(self):
        fault = SoapFault(FaultCode.CLIENT, "bad input", detail={"field": "ID"},
                          faultactor="urn:svc")
        parsed = Envelope.from_xml(Envelope.from_fault(fault).to_xml())
        assert parsed.is_fault
        assert parsed.fault.faultcode == "Client"
        assert parsed.fault.faultstring == "bad input"
        assert parsed.fault.detail == {"field": "ID"}
        assert parsed.fault.faultactor == "urn:svc"

    def test_raise_if_fault(self):
        parsed = Envelope.from_xml(
            Envelope.from_fault(SoapFault.server("down")).to_xml()
        )
        with pytest.raises(SoapFault, match="down"):
            parsed.raise_if_fault()

    def test_fault_constructors(self):
        assert SoapFault.client("x").faultcode == FaultCode.CLIENT
        assert SoapFault.server("x").faultcode == FaultCode.SERVER


class TestErrors:
    def test_malformed_xml(self):
        with pytest.raises(EnvelopeError):
            Envelope.from_xml("<oops")

    def test_wrong_root(self):
        with pytest.raises(EnvelopeError):
            Envelope.from_xml("<html/>")

    def test_empty_body(self):
        xml = (
            '<soapenv:Envelope xmlns:soapenv='
            '"http://schemas.xmlsoap.org/soap/envelope/">'
            "<soapenv:Body/></soapenv:Envelope>"
        )
        with pytest.raises(EnvelopeError):
            Envelope.from_xml(xml)

    def test_size_bytes_positive_and_grows(self):
        small = Envelope.call("Op", {"a": 1})
        big = Envelope.call("Op", {"a": "x" * 10000})
        assert 0 < small.size_bytes() < big.size_bytes()
