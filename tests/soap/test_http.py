"""Unit tests for the simulated HTTP layer."""

import pytest

from repro.soap import HttpRequest, HttpResponse, HttpServer, RequestTimeout, http_request


def _run_call(env, node, address, request, timeout=1.0):
    result = {}

    def caller():
        try:
            result["response"] = yield from http_request(node, address, request, timeout=timeout)
        except RequestTimeout as error:
            result["timeout"] = error

    process = node.spawn(caller())
    env.run(until=process)
    return result


class TestRequestResponse:
    def test_simple_handler(self, env, network, two_hosts):
        server_node, client_node = two_hosts
        server = HttpServer(server_node, port=80)
        server.route("/echo", lambda req: HttpResponse(200, body=req.body.upper()))
        result = _run_call(
            env, client_node, ("a", 80), HttpRequest("POST", "/echo", body="hello")
        )
        assert result["response"].status == 200
        assert result["response"].body == "HELLO"
        assert result["response"].ok

    def test_generator_handler(self, env, network, two_hosts):
        server_node, client_node = two_hosts
        server = HttpServer(server_node, port=80)

        def slow(request):
            yield env.timeout(0.2)
            return HttpResponse(200, body="slow-done")

        server.route("/slow", slow)
        result = _run_call(
            env, client_node, ("a", 80), HttpRequest("GET", "/slow")
        )
        assert result["response"].body == "slow-done"
        assert env.now >= 0.2

    def test_unknown_path_404(self, env, network, two_hosts):
        server_node, client_node = two_hosts
        HttpServer(server_node, port=80)
        result = _run_call(env, client_node, ("a", 80), HttpRequest("GET", "/nope"))
        assert result["response"].status == 404
        assert not result["response"].ok

    def test_handler_exception_500(self, env, network, two_hosts):
        server_node, client_node = two_hosts
        server = HttpServer(server_node, port=80)

        def broken(request):
            raise RuntimeError("kaboom")

        server.route("/broken", broken)
        result = _run_call(env, client_node, ("a", 80), HttpRequest("GET", "/broken"))
        assert result["response"].status == 500
        assert "kaboom" in result["response"].body

    def test_non_response_return_500(self, env, network, two_hosts):
        server_node, client_node = two_hosts
        server = HttpServer(server_node, port=80)
        server.route("/bad", lambda req: "not a response")
        result = _run_call(env, client_node, ("a", 80), HttpRequest("GET", "/bad"))
        assert result["response"].status == 500

    def test_concurrent_requests_do_not_mix(self, env, network):
        server_node = network.add_host("srv")
        client_node = network.add_host("cli")
        server = HttpServer(server_node, port=80)

        def echo_delay(request):
            delay = float(request.body)
            yield env.timeout(delay)
            return HttpResponse(200, body=request.body)

        server.route("/d", echo_delay)
        results = []

        def caller(delay):
            response = yield from http_request(
                client_node, ("srv", 80), HttpRequest("POST", "/d", body=str(delay)),
                timeout=5.0,
            )
            results.append((delay, response.body))

        processes = [client_node.spawn(caller(d)) for d in (0.3, 0.1, 0.2)]
        for process in processes:
            env.run(until=process)
        assert sorted(results) == [(0.1, "0.1"), (0.2, "0.2"), (0.3, "0.3")]
        assert all(str(d) == body for d, body in results)


class TestTimeouts:
    def test_crashed_server_times_out(self, env, network, two_hosts):
        server_node, client_node = two_hosts
        server = HttpServer(server_node, port=80)
        server.route("/x", lambda req: HttpResponse(200))
        server_node.crash()
        result = _run_call(
            env, client_node, ("a", 80), HttpRequest("GET", "/x"), timeout=0.5
        )
        assert "timeout" in result
        assert result["timeout"].timeout == 0.5

    def test_slow_handler_times_out(self, env, network, two_hosts):
        server_node, client_node = two_hosts
        server = HttpServer(server_node, port=80)

        def too_slow(request):
            yield env.timeout(10.0)
            return HttpResponse(200)

        server.route("/slow", too_slow)
        result = _run_call(
            env, client_node, ("a", 80), HttpRequest("GET", "/slow"), timeout=0.5
        )
        assert "timeout" in result

    def test_restarted_server_answers_again(self, env, network, two_hosts):
        server_node, client_node = two_hosts
        server = HttpServer(server_node, port=80)
        server.route("/x", lambda req: HttpResponse(200, body="ok"))
        server_node.crash()
        server_node.restart()
        result = _run_call(env, client_node, ("a", 80), HttpRequest("GET", "/x"))
        assert result["response"].body == "ok"


class TestSizes:
    def test_request_size_includes_body_and_headers(self):
        bare = HttpRequest("GET", "/x")
        with_body = HttpRequest("GET", "/x", body="y" * 100)
        with_headers = HttpRequest("GET", "/x", headers={"k": "v" * 50})
        assert with_body.size_bytes() > bare.size_bytes()
        assert with_headers.size_bytes() > bare.size_bytes()
