"""Tests for SOAP client-side retries (datagram-loss recovery)."""

import pytest

from repro.soap import RequestTimeout, SoapClient, SoapServer


@pytest.fixture
def deployment(env, network, two_hosts):
    server_node, client_node = two_hosts
    server = SoapServer(server_node, port=80)
    calls = {"count": 0}

    def dispatcher(operation, arguments, headers):
        calls["count"] += 1
        return calls["count"]

    server.mount("/svc", dispatcher)
    client = SoapClient(client_node, default_timeout=0.5)
    return server, client, client_node, calls


def _call(env, node, client, retries, timeout=0.5):
    outcome = {}

    def caller():
        try:
            outcome["value"] = yield from client.call(
                ("a", 80), "/svc", "op", {}, timeout=timeout, retries=retries
            )
        except RequestTimeout as error:
            outcome["error"] = error

    env.run(until=node.spawn(caller()))
    return outcome


class TestRetries:
    def test_retry_recovers_from_lost_request(self, env, network, deployment):
        _server, client, client_node, calls = deployment
        network.loss_rate = 1.0  # first attempt is lost

        def heal():
            # Heal just before the first 0.5s attempt times out, so the
            # retry goes out over a healthy network.
            yield env.timeout(0.45)
            network.loss_rate = 0.0

        client_node.spawn(heal())
        outcome = _call(env, client_node, client, retries=2)
        assert "value" in outcome
        assert client.timeouts == 1  # one lost attempt, then success

    def test_no_retries_by_default(self, env, network, deployment):
        _server, client, client_node, _calls = deployment
        network.loss_rate = 1.0
        outcome = _call(env, client_node, client, retries=0)
        assert isinstance(outcome["error"], RequestTimeout)
        assert client.timeouts == 1

    def test_retries_exhausted_raises(self, env, network, deployment):
        _server, client, client_node, _calls = deployment
        network.loss_rate = 1.0
        outcome = _call(env, client_node, client, retries=3)
        assert isinstance(outcome["error"], RequestTimeout)
        assert client.timeouts == 4  # initial attempt + 3 retries

    def test_retry_can_double_execute(self, env, network, deployment):
        """Retries are at-least-once: if only the *response* is lost, the
        server executes twice.  (Whisper's operations are reads, but the
        semantics are worth pinning down.)"""
        server, client, client_node, calls = deployment
        outcome = _call(env, client_node, client, retries=1)
        first_count = calls["count"]
        assert first_count == 1
        assert outcome["value"] == 1
