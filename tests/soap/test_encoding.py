"""Unit tests for the SOAP value encoding."""

import xml.etree.ElementTree as ET

import pytest

from repro.soap import EncodingError, element_to_value, value_to_element


class TestRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            3.5,
            "",
            "héllo <world> & friends",
            [],
            [1, 2, 3],
            {"a": 1, "b": "two"},
            {"nested": {"list": [1, [2, {"deep": None}]]}},
        ],
    )
    def test_value_roundtrips(self, value):
        element = value_to_element("v", value)
        assert element_to_value(element) == value

    def test_roundtrip_through_serialised_xml(self):
        value = {"id": "S1", "courses": ["M101", "E204"], "year": 3}
        xml = ET.tostring(value_to_element("v", value), encoding="unicode")
        assert element_to_value(ET.fromstring(xml)) == value

    def test_types_distinguished(self):
        assert element_to_value(value_to_element("v", 1)) == 1
        assert element_to_value(value_to_element("v", "1")) == "1"
        assert element_to_value(value_to_element("v", 1.0)) == 1.0
        assert element_to_value(value_to_element("v", True)) is True

    def test_tuple_decodes_as_list(self):
        assert element_to_value(value_to_element("v", (1, 2))) == [1, 2]


class TestErrors:
    def test_unencodable_type_rejected(self):
        with pytest.raises(EncodingError):
            value_to_element("v", object())

    def test_non_string_struct_keys_rejected(self):
        with pytest.raises(EncodingError):
            value_to_element("v", {1: "x"})

    def test_unknown_encoded_type_rejected(self):
        element = ET.Element("v", {"type": "quaternion"})
        with pytest.raises(EncodingError):
            element_to_value(element)

    def test_struct_member_without_name_rejected(self):
        element = ET.Element("v", {"type": "struct"})
        ET.SubElement(element, "member", {"type": "int"}).text = "1"
        with pytest.raises(EncodingError):
            element_to_value(element)

    def test_bad_int_payload_rejected(self):
        element = ET.Element("v", {"type": "int"})
        element.text = "notanint"
        with pytest.raises(EncodingError):
            element_to_value(element)
