"""Unit tests for QoS metrics, aggregation, and selection."""

import pytest

from repro.qos import (
    QosMetrics,
    QosProfile,
    QosSelector,
    QosWeights,
    RandomSelector,
    RoundRobinSelector,
    conditional,
    loop,
    parallel,
    sequence,
)


class TestMetrics:
    def test_valid_construction(self):
        metrics = QosMetrics(time=0.1, cost=2.0, reliability=0.95)
        assert metrics.reliability == 0.95

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"time": -1, "cost": 1, "reliability": 0.5},
            {"time": 1, "cost": -1, "reliability": 0.5},
            {"time": 1, "cost": 1, "reliability": 1.5},
            {"time": 1, "cost": 1, "reliability": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QosMetrics(**kwargs)


class TestProfile:
    def test_initial_snapshot_uses_defaults(self):
        profile = QosProfile(cost=3.0, initial_time=0.02)
        snapshot = profile.snapshot()
        assert snapshot.time == 0.02
        assert snapshot.cost == 3.0
        assert snapshot.reliability == 1.0

    def test_success_moves_time_estimate(self):
        profile = QosProfile(initial_time=0.01, alpha=0.5)
        profile.record_success(0.10)
        profile.record_success(0.10)
        assert profile.snapshot().time == pytest.approx(0.10, rel=0.01)

    def test_failures_lower_reliability(self):
        profile = QosProfile(alpha=0.5)
        for _ in range(4):
            profile.record_failure()
        assert profile.snapshot().reliability < 0.2

    def test_empirical_reliability(self):
        profile = QosProfile()
        profile.record_success(0.01)
        profile.record_failure()
        assert profile.empirical_reliability == 0.5
        assert profile.observations == 2

    def test_no_observations_empirical_is_one(self):
        assert QosProfile().empirical_reliability == 1.0


class TestAggregation:
    M1 = QosMetrics(time=1.0, cost=2.0, reliability=0.9)
    M2 = QosMetrics(time=3.0, cost=1.0, reliability=0.8)

    def test_sequence(self):
        combined = sequence([self.M1, self.M2])
        assert combined.time == 4.0
        assert combined.cost == 3.0
        assert combined.reliability == pytest.approx(0.72)

    def test_parallel(self):
        combined = parallel([self.M1, self.M2])
        assert combined.time == 3.0
        assert combined.cost == 3.0
        assert combined.reliability == pytest.approx(0.72)

    def test_conditional(self):
        combined = conditional([(0.25, self.M1), (0.75, self.M2)])
        assert combined.time == pytest.approx(0.25 * 1 + 0.75 * 3)
        assert combined.reliability == pytest.approx(0.25 * 0.9 + 0.75 * 0.8)

    def test_conditional_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            conditional([(0.5, self.M1), (0.4, self.M2)])

    def test_loop(self):
        combined = loop(self.M1, repeat_probability=0.5)
        assert combined.time == pytest.approx(2.0)
        assert combined.cost == pytest.approx(4.0)
        assert combined.reliability == pytest.approx(0.9**2)

    def test_loop_zero_repeat_is_identity(self):
        combined = loop(self.M1, repeat_probability=0.0)
        assert combined.time == self.M1.time
        assert combined.reliability == pytest.approx(self.M1.reliability)

    def test_loop_invalid_probability(self):
        with pytest.raises(ValueError):
            loop(self.M1, repeat_probability=1.0)

    def test_empty_structures_rejected(self):
        with pytest.raises(ValueError):
            sequence([])
        with pytest.raises(ValueError):
            parallel([])
        with pytest.raises(ValueError):
            conditional([])

    def test_composition_nests(self):
        inner = parallel([self.M1, self.M2])
        outer = sequence([self.M1, inner])
        assert outer.time == 1.0 + 3.0
        assert outer.reliability == pytest.approx(0.9 * 0.72)


class TestSelection:
    FAST = QosMetrics(time=0.01, cost=5.0, reliability=0.99)
    CHEAP = QosMetrics(time=0.50, cost=0.5, reliability=0.90)
    FLAKY = QosMetrics(time=0.02, cost=1.0, reliability=0.50)

    def test_time_weight_picks_fast(self):
        selector = QosSelector(QosWeights(time=1, cost=0, reliability=0))
        assert selector.select({"fast": self.FAST, "cheap": self.CHEAP}) == "fast"

    def test_cost_weight_picks_cheap(self):
        selector = QosSelector(QosWeights(time=0, cost=1, reliability=0))
        assert selector.select({"fast": self.FAST, "cheap": self.CHEAP}) == "cheap"

    def test_reliability_weight_avoids_flaky(self):
        selector = QosSelector(QosWeights(time=0, cost=0, reliability=1))
        assert selector.select({"flaky": self.FLAKY, "fast": self.FAST}) == "fast"

    def test_scores_in_unit_interval(self):
        selector = QosSelector()
        scored = selector.score_all(
            {"a": self.FAST, "b": self.CHEAP, "c": self.FLAKY}
        )
        assert all(0.0 <= score <= 1.0 for _key, score in scored)
        assert scored == sorted(scored, key=lambda p: (-p[1], str(p[0])))

    def test_single_candidate_selected(self):
        assert QosSelector().select({"only": self.FAST}) == "only"

    def test_empty_candidates(self):
        assert QosSelector().select({}) is None
        assert RandomSelector().select({}) is None
        assert RoundRobinSelector().select({}) is None

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            QosWeights(time=-1)
        with pytest.raises(ValueError):
            QosWeights(time=0, cost=0, reliability=0)

    def test_round_robin_cycles(self):
        selector = RoundRobinSelector()
        candidates = {"a": self.FAST, "b": self.CHEAP, "c": self.FLAKY}
        picks = [selector.select(candidates) for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_random_selector_deterministic_with_seed(self):
        import random

        candidates = {"a": self.FAST, "b": self.CHEAP}
        first = [RandomSelector(random.Random(7)).select(candidates) for _ in range(5)]
        second = [RandomSelector(random.Random(7)).select(candidates) for _ in range(5)]
        assert first == second

    def test_identical_metrics_tie_breaks_deterministically(self):
        selector = QosSelector()
        candidates = {"b": self.FAST, "a": self.FAST}
        assert selector.select(candidates) == "a"
