"""Election behaviour across network partitions.

During a partition each side may elect its own coordinator (the classic
split-brain of leader election without quorum — Bully has no quorum).  The
important guarantee Whisper needs is *convergence after healing*: the
COORDINATOR-claim-from-lower rule plus the abdication-aware heartbeats
collapse the two leaders back to one.
"""

import pytest

from repro.election import GroupCoordinator
from repro.p2p import Peer, PeerGroupId
from repro.simnet import Environment, MessageTrace, Network, RngRegistry

GROUP_ID = PeerGroupId.from_name("partition-group")


@pytest.fixture
def cluster():
    env = Environment()
    network = Network(env, trace=MessageTrace(), rng=RngRegistry(7))
    rendezvous = Peer(network.add_host("rdv"), is_rendezvous=True)
    rendezvous.publish_self(remote=False)
    peers = []
    coordinators = []
    for index in range(5):
        peer = Peer(network.add_host(f"p{index}"))
        peer.attach_to(rendezvous)
        peer.publish_self(remote=True)
        peer.groups.join(GROUP_ID, "partition-group")
        peers.append(peer)
    env.run(until=1.0)
    for peer in peers:
        coordinators.append(
            GroupCoordinator(
                peer.groups, GROUP_ID, heartbeat_interval=0.5, miss_threshold=2
            )
        )
    coordinators[0].bootstrap()
    env.run(until=6.0)
    return env, network, rendezvous, peers, coordinators


def _sides(network, peers):
    """Partition: the two highest peers (+rdv) vs. the rest."""
    ordered = sorted(peers, key=lambda p: p.peer_id.uuid_hex)
    majority = [p.node.name for p in ordered[-2:]] + ["rdv"]
    minority = [p.node.name for p in ordered[:-2]]
    return majority, minority, ordered


class TestSplitBrain:
    def test_isolated_side_elects_its_own_leader(self, cluster):
        env, network, _rdv, peers, coordinators = cluster
        majority, minority, ordered = _sides(network, peers)
        network.partition(majority, minority)
        env.run(until=env.now + 20.0)
        minority_peers = [
            (peer, coordinator)
            for peer, coordinator in zip(peers, coordinators)
            if peer.node.name in minority
        ]
        beliefs = {coordinator.coordinator for _p, coordinator in minority_peers}
        # The minority elected the highest peer *it can reach*.
        highest_minority = max(
            (peer for peer, _c in minority_peers),
            key=lambda p: p.peer_id.uuid_hex,
        )
        assert beliefs == {highest_minority.peer_id}

    def test_heal_converges_to_single_leader(self, cluster):
        env, network, _rdv, peers, coordinators = cluster
        majority, minority, ordered = _sides(network, peers)
        network.partition(majority, minority)
        env.run(until=env.now + 20.0)
        network.heal_partitions()
        env.run(until=env.now + 30.0)
        beliefs = {coordinator.coordinator for coordinator in coordinators}
        assert len(beliefs) == 1, f"split-brain persisted: {beliefs}"
        leader = beliefs.pop()
        assert leader == ordered[-1].peer_id  # the global highest
        self_believers = [c for c in coordinators if c.is_coordinator]
        assert len(self_believers) == 1

    def test_requests_resume_after_heal(self, cluster):
        """End-to-end: a group split and healed keeps answering exec
        requests (exercised through the coordinator-query handler)."""
        env, network, rendezvous, peers, coordinators = cluster
        majority, minority, _ordered = _sides(network, peers)
        network.partition(majority, minority)
        env.run(until=env.now + 20.0)
        network.heal_partitions()
        env.run(until=env.now + 30.0)
        # Everyone, including the rendezvous path, agrees on one live leader.
        alive_beliefs = {c.coordinator for c in coordinators}
        assert len(alive_beliefs) == 1
        assert next(iter(alive_beliefs)) in {p.peer_id for p in peers}
