"""Fixtures for election tests: a joined group of peers."""

import pytest

from repro.p2p import Peer, PeerGroupId

GROUP_ID = PeerGroupId.from_name("election-group")


@pytest.fixture
def group(env, network):
    """Rendezvous + 5 edges all joined into one group, settled."""
    rendezvous = Peer(network.add_host("rdv"), is_rendezvous=True)
    rendezvous.publish_self(remote=False)
    peers = []
    for index in range(5):
        peer = Peer(network.add_host(f"peer{index}"))
        peer.attach_to(rendezvous)
        peer.publish_self(remote=True)
        peer.groups.join(GROUP_ID, "election-group")
        peers.append(peer)
    env.run(until=1.0)
    return rendezvous, peers
