"""Unit tests for the Bully election algorithm."""

import pytest

from repro.election import BullyElector

from .conftest import GROUP_ID


def _electors(peers, **kwargs):
    return [BullyElector(peer.groups, GROUP_ID, **kwargs) for peer in peers]


def _highest(peers):
    return max(peers, key=lambda peer: peer.peer_id.uuid_hex)


class TestElection:
    def test_highest_member_wins(self, env, group):
        _rendezvous, peers = group
        electors = _electors(peers)
        electors[0].start_election()
        env.run(until=env.now + 3.0)
        winner = _highest(peers).peer_id
        assert all(e.coordinator == winner for e in electors)

    def test_exactly_one_coordinator(self, env, group):
        _rendezvous, peers = group
        electors = _electors(peers)
        electors[0].start_election()
        env.run(until=env.now + 3.0)
        self_believers = [e for e in electors if e.is_coordinator]
        assert len(self_believers) == 1

    def test_highest_initiator_wins_immediately(self, env, group):
        _rendezvous, peers = group
        electors = _electors(peers)
        highest_index = peers.index(_highest(peers))
        electors[highest_index].start_election()
        env.run(until=env.now + 3.0)
        assert electors[highest_index].is_coordinator

    def test_concurrent_elections_converge(self, env, group):
        _rendezvous, peers = group
        electors = _electors(peers)
        for elector in electors:
            elector.start_election()
        env.run(until=env.now + 5.0)
        winner = _highest(peers).peer_id
        assert all(e.coordinator == winner for e in electors)

    def test_election_after_coordinator_removed(self, env, group):
        _rendezvous, peers = group
        electors = _electors(peers)
        electors[0].start_election()
        env.run(until=env.now + 3.0)
        # Remove the winner from everyone's view (simulates detection).
        winner_peer = _highest(peers)
        winner_peer.node.crash()
        survivors = [
            (peer, elector)
            for peer, elector in zip(peers, electors)
            if peer is not winner_peer
        ]
        for peer, _elector in survivors:
            peer.groups.remove_member(GROUP_ID, winner_peer.peer_id)
        survivors[0][1].start_election()
        env.run(until=env.now + 5.0)
        second_highest = _highest([peer for peer, _ in survivors]).peer_id
        assert all(e.coordinator == second_highest for _p, e in survivors)

    def test_message_complexity_lowest_initiator(self, env, group):
        """Lowest-id initiator contacts everyone above it: O(n) for it,
        cascading elections above — the classic worst case."""
        _rendezvous, peers = group
        electors = _electors(peers)
        ordered = sorted(range(5), key=lambda i: peers[i].peer_id.uuid_hex)
        lowest = ordered[0]
        electors[lowest].start_election()
        env.run(until=env.now + 3.0)
        total = sum(e.stats.election_messages_sent for e in electors)
        # ELECTION messages: 4 from lowest + cascade; plus ANSWERs + final
        # COORDINATOR broadcast of 4.
        assert total >= 4 + 4
        assert electors[ordered[-1]].is_coordinator

    def test_lower_coordinator_claim_triggers_reelection(self, env, group):
        _rendezvous, peers = group
        electors = _electors(peers)
        ordered = sorted(range(5), key=lambda i: peers[i].peer_id.uuid_hex)
        lowest, highest = ordered[0], ordered[-1]
        # Forge a COORDINATOR announcement from the lowest peer.
        electors[lowest].coordinator = peers[lowest].peer_id
        peers[lowest].groups.send_to_member(
            GROUP_ID,
            peers[highest].peer_id,
            "whisper:election",
            ("coordinator", peers[lowest].peer_id),
        )
        env.run(until=env.now + 5.0)
        assert electors[highest].is_coordinator

    def test_coordinator_announces_to_late_joiner(self, env, network, group):
        from repro.p2p import Peer

        rendezvous, peers = group
        electors = _electors(peers)
        electors[0].start_election()
        env.run(until=env.now + 3.0)
        latecomer = Peer(network.add_host("late"))
        latecomer.attach_to(rendezvous)
        late_elector = BullyElector(latecomer.groups, GROUP_ID)
        latecomer.groups.join(GROUP_ID, "election-group")
        env.run(until=env.now + 8.0)
        # The group converges on one coordinator that the late joiner knows
        # too (either learned from the incumbent or won by being highest).
        beliefs = {e.coordinator for e in electors} | {late_elector.coordinator}
        assert len(beliefs) == 1
        assert late_elector.coordinator is not None


class TestPruneSparesAnswerers:
    """Regression: a stalled election must not prune peers that ANSWERed.

    A peer that sent ANSWER this round is provably alive — its
    COORDINATOR broadcast is merely late.  The old code pruned *every*
    higher member after a stall, demoting live higher peers and letting
    a lower peer elect itself (a Bully invariant violation).
    """

    def test_prune_removes_only_silent_candidates(self, env, group):
        _rendezvous, peers = group
        low = min(peers, key=lambda peer: peer.peer_id.uuid_hex)
        elector = BullyElector(low.groups, GROUP_ID)
        higher = elector._higher_members()
        assert len(higher) == 4
        answerer = higher[0]
        elector._answered.add(answerer)
        elector._prune_dead_candidates(higher)
        members = low.groups.members(GROUP_ID)
        assert answerer in members  # alive: spared
        for peer in higher[1:]:
            assert peer not in members  # silent: pruned

    def test_live_answerer_survives_stalled_election(self, env, group):
        """End to end: every higher peer answers but their COORDINATOR
        broadcasts are swallowed (e.g. still stuck in their own rounds).
        The lowest initiator's election stalls repeatedly — it must keep
        the live higher peers in its view and never usurp coordination."""
        _rendezvous, peers = group
        electors = _electors(peers)
        ordered = sorted(range(5), key=lambda i: peers[i].peer_id.uuid_hex)
        lowest = ordered[0]
        low_elector = electors[lowest]
        low_peer = peers[lowest]
        # Swallow COORDINATOR announcements from every higher elector so
        # answers arrive but no winner is ever heard.
        for index in ordered[1:]:
            elector = electors[index]

            def muted(peer, kind, _orig=elector._send):
                if kind == "coordinator":
                    return
                _orig(peer, kind)

            elector._send = muted
        higher_ids = {peers[i].peer_id for i in ordered[1:]}
        low_elector.start_election()
        # Long enough for several stall/retry rounds (answer 0.5s +
        # coordinator wait 1.5s per round).
        env.run(until=env.now + 7.0)
        members = low_peer.groups.members(GROUP_ID)
        assert higher_ids <= members  # no live peer was demoted
        assert not low_elector.is_coordinator  # invariant held
