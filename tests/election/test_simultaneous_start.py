"""Regression: every member starts a Bully election at the same instant.

The worst-case contention the ANSWER mechanism exists for: all five
members fire ELECTION simultaneously, so every lower peer gets bullied
while every prefix of the id order briefly believes it might win.  Under
several network seeds (different latency draws reorder the bursts) the
group must still collapse to exactly one coordinator, and nobody may end
up holding a stale COORDINATOR claim — an accepted epoch below the term
the winner actually announced.
"""

import pytest

from repro.check import announced_epoch_violations
from repro.election import BullyElector

from .conftest import GROUP_ID


@pytest.mark.parametrize("seed", [7, 11, 42], indirect=True)
def test_simultaneous_starters_converge_to_one_fresh_term(env, seed, group):
    _rendezvous, peers = group
    electors = [BullyElector(peer.groups, GROUP_ID) for peer in peers]
    for elector in electors:
        elector.start_election()
    env.run(until=env.now + 5.0)

    # Exactly one self-believed coordinator, and everyone agrees on it.
    self_believers = [e for e in electors if e.is_coordinator]
    assert len(self_believers) == 1
    winner = self_believers[0]
    winner_id = winner.groups.endpoint.peer_id
    assert all(e.coordinator == winner_id for e in electors)

    # No stale COORDINATOR accepted: every member holds the winner's
    # freshest announced term, never an earlier claim from the burst.
    assert winner.announced, "winner never announced a term"
    final_term = winner.announced[-1][1]
    for elector in electors:
        assert elector.epoch == final_term, (
            f"member accepted stale term {elector.epoch} "
            f"(winner announced {final_term})"
        )

    # Election safety holds over the whole burst: announced terms are
    # owned, strictly increasing per peer, and globally unique.
    class _Mgr:  # adapt bare electors to the peers-with-coordinator_mgr shape
        def __init__(self, elector):
            self.elector = elector

    class _Shim:
        def __init__(self, peer, elector):
            self.name = peer.node.name
            self.peer_id = peer.peer_id
            self.coordinator_mgr = _Mgr(elector)

    shims = [_Shim(peer, e) for peer, e in zip(peers, electors)]
    assert announced_epoch_violations(shims) == []
