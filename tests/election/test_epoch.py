"""Unit tests for election epochs: ordering, minting, and staleness."""

import pytest

from repro.election import BullyElector, Epoch, GENESIS
from repro.election.bully import COORDINATOR, PROTOCOL

from .conftest import GROUP_ID


def _electors(peers, **kwargs):
    return [BullyElector(peer.groups, GROUP_ID, **kwargs) for peer in peers]


def _highest(peers):
    return max(peers, key=lambda peer: peer.peer_id.uuid_hex)


class TestEpochOrdering:
    def test_genesis_is_below_every_minted_epoch(self):
        assert GENESIS < GENESIS.next_for("aa")
        assert GENESIS < Epoch(1, "")

    def test_counter_dominates(self):
        assert Epoch(1, "ff") < Epoch(2, "00")

    def test_owner_breaks_counter_ties(self):
        low, high = Epoch(3, "aa"), Epoch(3, "bb")
        assert low < high and high > low
        assert low != high

    def test_next_for_is_strictly_above(self):
        epoch = Epoch(4, "aa")
        minted = epoch.next_for("bb")
        assert minted > epoch
        assert minted.owner_hex == "bb"

    def test_str_is_compact(self):
        assert str(GENESIS) == "e0@-"
        assert str(Epoch(3, "abcdef0123456789")) == "e3@abcdef01"


class TestEpochMinting:
    def test_winner_mints_and_everyone_accepts(self, env, group):
        _rendezvous, peers = group
        electors = _electors(peers)
        electors[0].start_election()
        env.run(until=env.now + 3.0)
        winner = next(e for e in electors if e.is_coordinator)
        assert winner.epoch.counter == 1
        assert winner.epoch.owner_hex == winner.my_id.uuid_hex
        assert all(e.epoch == winner.epoch for e in electors)

    def test_successive_elections_mint_increasing_epochs(self, env, group):
        _rendezvous, peers = group
        electors = _electors(peers)
        electors[0].start_election()
        env.run(until=env.now + 3.0)
        first = next(e for e in electors if e.is_coordinator).epoch
        # Depose the winner and re-elect.
        winner_peer = _highest(peers)
        winner_peer.node.crash()
        survivors = [e for e, p in zip(electors, peers) if p.node.up]
        for elector in survivors:
            elector.groups.remove_member(GROUP_ID, winner_peer.peer_id)
            elector.coordinator = None
        survivors[0].start_election()
        env.run(until=env.now + 3.0)
        second = next(e for e in survivors if e.is_coordinator).epoch
        assert second > first
        assert all(e.epoch == second for e in survivors)

    def test_announced_log_is_strictly_increasing_per_elector(self, env, group):
        _rendezvous, peers = group
        electors = _electors(peers)
        for _round in range(3):
            electors[0].start_election()
            env.run(until=env.now + 3.0)
            leader = next(e for e in electors if e.is_coordinator)
            # Force re-elections without killing anyone: clear the belief.
            for elector in electors:
                elector.coordinator = None
        announced = [epoch for _t, epoch in leader.announced]
        assert len(announced) >= 2
        assert all(a < b for a, b in zip(announced, announced[1:]))
        assert all(e.owner_hex == leader.my_id.uuid_hex for e in announced)


class TestStaleAnnouncements:
    def test_stale_coordinator_announcement_rejected(self, env, group):
        """An announcement carrying a term below the accepted one must
        not displace the accepted coordinator."""
        _rendezvous, peers = group
        electors = _electors(peers)
        electors[0].start_election()
        env.run(until=env.now + 3.0)
        accepted = electors[0].epoch
        coordinator = electors[0].coordinator
        stale = Epoch(accepted.counter - 1, "00" * 16)
        # Forge a stale announcement from the highest peer (so the
        # lower-sender rule cannot be what rejects it).
        sender = _highest(peers)
        sender.groups.send_to_member(
            GROUP_ID, peers[0].peer_id, PROTOCOL,
            (COORDINATOR, sender.peer_id, stale),
        )
        env.run(until=env.now + 1.0)
        assert electors[0].epoch == accepted
        assert electors[0].coordinator == coordinator

    def test_legacy_payload_without_epoch_still_accepted(self, env, group):
        """2-tuple payloads (pre-epoch wire format) keep working."""
        _rendezvous, peers = group
        electors = _electors(peers)
        sender = _highest(peers)
        receiver = next(
            (e, p) for e, p in zip(electors, peers) if p is not sender
        )
        elector, peer = receiver
        sender.groups.send_to_member(
            GROUP_ID, peer.peer_id, PROTOCOL, ("coordinator", sender.peer_id),
        )
        env.run(until=env.now + 1.0)
        assert elector.coordinator == sender.peer_id

    def test_coordinator_with_stale_term_re_mints(self, env, group):
        """A sitting coordinator that learns of a higher term must not
        keep serving under its own — it re-elects and mints above."""
        _rendezvous, peers = group
        electors = _electors(peers)
        electors[0].start_election()
        env.run(until=env.now + 3.0)
        leader = next(e for e in electors if e.is_coordinator)
        foreign = Epoch(leader.epoch.counter + 5, "00" * 16)
        leader.observe_external_epoch(foreign)
        env.run(until=env.now + 3.0)
        assert leader.is_coordinator
        assert leader.epoch > foreign
        assert leader.epoch.owner_hex == leader.my_id.uuid_hex
