"""Unit tests for the heartbeat detector and the coordination glue."""

import pytest

from repro.election import GroupCoordinator, HeartbeatMonitor

from .conftest import GROUP_ID


def _monitors(peers, **kwargs):
    """One monitor per member — as in production, where every b-peer's
    GroupCoordinator registers one (a member without a monitor would not
    answer pings)."""
    return [HeartbeatMonitor(peer.groups, GROUP_ID, **kwargs) for peer in peers]


class TestHeartbeatMonitor:
    def test_healthy_target_not_suspected(self, env, group):
        _rendezvous, peers = group
        monitors = _monitors(peers, interval=0.5)
        failures = []
        monitors[0].watch(peers[1].peer_id, lambda failed: failures.append(failed))
        env.run(until=env.now + 10.0)
        assert failures == []
        assert monitors[0].pings_sent > 5
        assert monitors[0].pongs_received > 5

    def test_dead_target_suspected(self, env, group):
        _rendezvous, peers = group
        monitors = _monitors(peers, interval=0.5, miss_threshold=3)
        failures = []
        monitors[0].watch(peers[1].peer_id, lambda failed: failures.append(failed))
        env.run(until=env.now + 2.0)
        peers[1].node.crash()
        env.run(until=env.now + 10.0)
        assert failures == [peers[1].peer_id]
        assert monitors[0].failures_reported == 1

    def test_detection_time_scales_with_interval(self, env, group):
        _rendezvous, peers = group
        monitors = _monitors(peers, interval=0.5, miss_threshold=3)
        detected_at = []
        monitors[0].watch(peers[1].peer_id, lambda failed: detected_at.append(env.now))
        env.run(until=env.now + 2.0)
        crash_time = env.now
        peers[1].node.crash()
        env.run(until=env.now + 20.0)
        detection_delay = detected_at[0] - crash_time
        # ~ miss_threshold * interval, plus slack.
        assert 1.0 < detection_delay < 6.0

    def test_detection_period_matches_documented_cycle(self, env, group):
        """Regression: each missed heartbeat must cost one ``interval``,
        so detection lands near ``interval * miss_threshold``.  The old
        loop slept ``interval`` and then waited another ``0.9 * interval``
        for the pong, making the real cycle ``1.9x`` the documented one
        (2.85s instead of 1.5s here)."""
        _rendezvous, peers = group
        interval, threshold = 0.5, 3
        monitors = _monitors(peers, interval=interval, miss_threshold=threshold)
        detected_at = []
        monitors[0].watch(peers[1].peer_id, lambda failed: detected_at.append(env.now))
        env.run(until=env.now + 2.0)
        crash_time = env.now
        peers[1].node.crash()
        env.run(until=env.now + 20.0)
        detection_delay = detected_at[0] - crash_time
        nominal = interval * threshold
        # At most one extra interval of phase offset (the crash can land
        # just after a ping was answered), never the 1.9x cycle.
        assert nominal * 0.9 <= detection_delay <= nominal + interval + 0.1

    def test_outstanding_cleared_after_failure_fires(self, env, group):
        """Regression: sequences still in flight when the failure fires
        must be dropped, so a late pong from the dead coordinator cannot
        be credited to the next monitoring run."""
        _rendezvous, peers = group
        monitors = _monitors(peers, interval=0.5, miss_threshold=2)
        failures = []
        monitors[0].watch(peers[1].peer_id, lambda failed: failures.append(failed))
        env.run(until=env.now + 2.0)
        peers[1].node.crash()
        env.run(until=env.now + 10.0)
        assert failures == [peers[1].peer_id]
        assert monitors[0]._outstanding == {}

    def test_watching_self_is_noop(self, env, group):
        _rendezvous, peers = group
        monitor = HeartbeatMonitor(peers[0].groups, GROUP_ID)
        monitor.watch(peers[0].peer_id, lambda failed: None)
        assert not monitor.active

    def test_stop_halts_monitoring(self, env, group):
        _rendezvous, peers = group
        monitors = _monitors(peers, interval=0.5)
        failures = []
        monitors[0].watch(peers[1].peer_id, lambda failed: failures.append(failed))
        env.run(until=env.now + 2.0)
        monitors[0].stop()
        peers[1].node.crash()
        env.run(until=env.now + 10.0)
        assert failures == []

    def test_abdicated_coordinator_detected(self, env, group):
        """A live peer that answers pings but denies coordinating is
        eventually reported (split-brain repair)."""
        _rendezvous, peers = group
        monitors = _monitors(peers, interval=0.5, miss_threshold=2)
        # peers[1] answers pings with coordinating=False.
        monitors[1].is_coordinator_check = lambda: False
        failures = []
        monitors[0].watch(peers[1].peer_id, lambda failed: failures.append(failed))
        env.run(until=env.now + 10.0)
        assert failures == [peers[1].peer_id]


class TestGroupCoordinator:
    def _coordinators(self, peers, **kwargs):
        return [
            GroupCoordinator(peer.groups, GROUP_ID, **kwargs) for peer in peers
        ]

    def test_bootstrap_elects_and_monitors(self, env, group):
        _rendezvous, peers = group
        coordinators = self._coordinators(peers, heartbeat_interval=0.5)
        coordinators[0].bootstrap()
        env.run(until=env.now + 5.0)
        leaders = [c for c in coordinators if c.is_coordinator]
        assert len(leaders) == 1
        followers = [c for c in coordinators if not c.is_coordinator]
        assert all(c.monitor.active for c in followers)

    def test_failover_elects_new_coordinator(self, env, group):
        _rendezvous, peers = group
        coordinators = self._coordinators(
            peers, heartbeat_interval=0.5, miss_threshold=2
        )
        coordinators[0].bootstrap()
        env.run(until=env.now + 5.0)
        old = next(c.coordinator for c in coordinators)
        victim = next(p for p in peers if p.peer_id == old)
        victim.node.crash()
        env.run(until=env.now + 15.0)
        survivors = [
            c for c, p in zip(coordinators, peers) if p.node.up
        ]
        beliefs = {c.coordinator for c in survivors}
        assert len(beliefs) == 1
        assert beliefs.pop() != old
        assert any(c.failovers > 0 for c in survivors)

    def test_watchdog_self_heals_without_bootstrap(self, env, group):
        """Even with no explicit bootstrap, the watchdog elects a leader."""
        _rendezvous, peers = group
        coordinators = self._coordinators(peers, heartbeat_interval=0.5)
        env.run(until=env.now + 10.0)
        assert len({c.coordinator for c in coordinators}) == 1
        assert any(c.is_coordinator for c in coordinators)

    def test_change_listener_fires(self, env, group):
        _rendezvous, peers = group
        coordinators = self._coordinators(peers, heartbeat_interval=0.5)
        changes = []
        coordinators[0].on_change(lambda new: changes.append(new))
        coordinators[0].bootstrap()
        env.run(until=env.now + 5.0)
        assert changes

    def test_double_failover(self, env, group):
        """Two successive coordinator crashes still converge."""
        _rendezvous, peers = group
        coordinators = self._coordinators(
            peers, heartbeat_interval=0.5, miss_threshold=2
        )
        coordinators[0].bootstrap()
        env.run(until=env.now + 5.0)
        for _round in range(2):
            leader_id = next(
                c.coordinator for c, p in zip(coordinators, peers) if p.node.up
            )
            victim = next(p for p in peers if p.peer_id == leader_id)
            victim.node.crash()
            env.run(until=env.now + 15.0)
        survivors = [c for c, p in zip(coordinators, peers) if p.node.up]
        assert len(survivors) == 3
        beliefs = {c.coordinator for c in survivors}
        assert len(beliefs) == 1
        leader = beliefs.pop()
        assert leader in {p.peer_id for p in peers if p.node.up}
