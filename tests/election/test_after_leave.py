"""Regression tests: election machinery after a peer leaves its group."""

import pytest

from repro.election import BullyElector

from .conftest import GROUP_ID


class TestAfterLeave:
    def test_stale_election_message_after_leave_is_harmless(self, env, group):
        """A lower peer's ELECTION arriving after we left must not crash or
        make us claim coordination of a group we are no longer in."""
        _rendezvous, peers = group
        electors = [BullyElector(peer.groups, GROUP_ID) for peer in peers]
        electors[0].start_election()
        env.run(until=env.now + 3.0)
        ordered = sorted(range(5), key=lambda i: peers[i].peer_id.uuid_hex)
        leaver_index = ordered[-1]  # the current coordinator leaves
        lower_index = ordered[0]
        peers[leaver_index].groups.leave(GROUP_ID)
        # Deliver a stale ELECTION straight to the departed peer.
        peers[lower_index].groups.send_to_member(
            GROUP_ID,
            peers[leaver_index].peer_id,
            "whisper:election",
            ("election", peers[lower_index].peer_id),
        )
        env.run(until=env.now + 5.0)
        assert not electors[leaver_index].is_coordinator
        # The rest of the group re-elected among themselves.
        stayers = [
            electors[i] for i in range(5) if i != leaver_index
        ]
        beliefs = {e.coordinator for e in stayers}
        assert len(beliefs) == 1
        assert beliefs.pop() == peers[ordered[-2]].peer_id

    def test_start_election_noop_for_nonmember(self, env, group):
        _rendezvous, peers = group
        elector = BullyElector(peers[0].groups, GROUP_ID)
        peers[0].groups.leave(GROUP_ID)
        elector.start_election()  # must not raise
        env.run(until=env.now + 2.0)
        assert not elector.is_coordinator
        assert elector.stats.elections_won == 0

    def test_coordinator_leave_triggers_immediate_election(self, env, group):
        _rendezvous, peers = group
        electors = [BullyElector(peer.groups, GROUP_ID) for peer in peers]
        electors[0].start_election()
        env.run(until=env.now + 3.0)
        ordered = sorted(range(5), key=lambda i: peers[i].peer_id.uuid_hex)
        before = env.now
        peers[ordered[-1]].groups.leave(GROUP_ID)
        env.run(until=env.now + 3.0)
        stayers = [electors[i] for i in ordered[:-1]]
        beliefs = {e.coordinator for e in stayers}
        assert beliefs == {peers[ordered[-2]].peer_id}
        # It happened on election timescales (no failure detection needed).
        assert env.now - before <= 3.0
