"""Property-based tests for the autoscaling controller.

Two layers:

* the pure :class:`~repro.core.autoscale.AutoscalePolicy` driven with
  Hypothesis-generated bursty pressure traces — replica bounds, cooldown
  hysteresis, and quiescence must hold for *any* trace; and
* the live :class:`~repro.core.autoscale.AutoscalingGroup` on the simnet
  under forced retirements racing a workload — no in-flight work may be
  stranded (every retirement drains clean) and exactly-once must hold
  over every backend effect ledger.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.workload import PoissonWorkload
from repro.check.invariants import (
    autoscale_violations,
    exactly_once_violations,
    retirement_violations,
)
from repro.core.autoscale import AutoscalePolicy, AutoscaleSpec
from repro.core.config import ScenarioConfig
from repro.core.system import WhisperSystem


# -- the pure policy under synthetic traces ------------------------------------------

specs = st.builds(
    AutoscaleSpec,
    min_replicas=st.integers(min_value=1, max_value=3),
    max_replicas=st.integers(min_value=3, max_value=10),
    high_watermark=st.floats(min_value=1.0, max_value=6.0),
    low_watermark=st.floats(min_value=0.05, max_value=0.9),
    cooldown=st.floats(min_value=0.0, max_value=5.0),
    interval=st.floats(min_value=0.25, max_value=1.0),
    smoothing=st.floats(min_value=0.1, max_value=1.0),
)

#: Bursty pressure traces: long quiet stretches, sharp spikes, zeros.
pressures = st.lists(
    st.one_of(
        st.just(0.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=2.0, max_value=50.0),
    ),
    min_size=1,
    max_size=200,
)


def drive(spec: AutoscaleSpec, trace):
    """Run the policy over a trace; return (active history, decisions)."""
    policy = AutoscalePolicy(spec)
    active = spec.min_replicas
    history, decisions = [], []
    for step, pressure in enumerate(trace):
        now = step * spec.interval
        decision = policy.decide(pressure, active, now)
        if decision == "up":
            active += 1
        elif decision == "down":
            active -= 1
        if decision is not None:
            decisions.append((now, decision))
        history.append(active)
    return history, decisions


@settings(max_examples=200, deadline=None)
@given(spec=specs, trace=pressures)
def test_policy_respects_bounds(spec, trace):
    history, _decisions = drive(spec, trace)
    assert all(spec.min_replicas <= active <= spec.max_replicas for active in history)


@settings(max_examples=200, deadline=None)
@given(spec=specs, trace=pressures)
def test_policy_cooldown_hysteresis(spec, trace):
    """At most one scale decision per cooldown window, whatever the trace."""
    _history, decisions = drive(spec, trace)
    for (earlier, _), (later, _) in zip(decisions, decisions[1:]):
        assert later - earlier >= spec.cooldown - 1e-9


@settings(max_examples=200, deadline=None)
@given(spec=specs, trace=pressures)
def test_policy_quiesces_to_floor(spec, trace):
    """A long dead-quiet tail always walks the group back to the floor."""
    # Enough zero-pressure samples to drain the EWMA *and* step down from
    # the ceiling one cooldown at a time.
    steps_per_cooldown = int(spec.cooldown / spec.interval) + 1
    tail = [0.0] * (
        (spec.max_replicas - spec.min_replicas + 1) * (steps_per_cooldown + 60)
    )
    history, _decisions = drive(spec, list(trace) + tail)
    assert history[-1] == spec.min_replicas


@settings(max_examples=200, deadline=None)
@given(spec=specs, trace=pressures)
def test_policy_never_scales_against_the_signal(spec, trace):
    """Ups need smoothed pressure at/above high, downs at/below low."""
    policy = AutoscalePolicy(spec)
    active = spec.min_replicas
    for step, pressure in enumerate(trace):
        decision = policy.decide(pressure, active, step * spec.interval)
        if decision == "up":
            assert policy.smoothed >= spec.high_watermark
            active += 1
        elif decision == "down":
            assert policy.smoothed <= spec.low_watermark
            active -= 1


# -- the live controller: retirement never strands work ------------------------------

@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=30))
def test_forced_retirements_never_strand_work(seed):
    """Forced scale-downs racing a live workload drain clean.

    Every retirement record must show an empty queue, no in-flight
    execution, and no parked duplicates at shutdown; exactly-once must
    hold over every backend ledger (retired replicas included); and the
    controller must respect its bounds throughout.
    """
    spec = AutoscaleSpec(
        min_replicas=2,
        max_replicas=5,
        cooldown=0.5,
        interval=0.25,
        drain_timeout=10.0,
    )
    system = WhisperSystem(
        ScenarioConfig(
            seed=seed,
            replicas=4,
            students=40,
            load_sharing=True,
            autoscale=spec,
        )
    )
    service = system.deploy_student_service()
    system.settle(6.0)
    controller = service.autoscalers[0]

    workload = PoissonWorkload(
        system,
        service.address,
        service.path,
        "StudentInformation",
        rate=120.0,
        duration=4.0,
        call_timeout=10.0,
        arguments=lambda index: {"ID": f"S{(index % 40) + 1:05d}"},
    )

    def retire_twice():
        yield system.env.timeout(0.8)
        controller.force_scale_down()
        yield system.env.timeout(1.2)
        controller.force_scale_down()

    controller.node.spawn(retire_twice(), name="forced-retirements")
    result = workload.run()
    system.settle(2.0)

    assert len(controller.retirements) >= 1, "no retirement completed"
    assert retirement_violations([controller]) == []
    assert autoscale_violations([controller]) == []
    assert exactly_once_violations(service.all_peers()) == []
    # The workload itself survived the retirements.
    assert result.requests > 0
    assert result.availability >= 0.95
