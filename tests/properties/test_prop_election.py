"""Property-based tests: Bully election safety under random crash schedules.

The invariant Whisper's availability rests on: after any sequence of
crashes (leaving at least one live member) and a quiet period, every live
member of the group agrees on one live coordinator, and that coordinator
knows it coordinates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.election import GroupCoordinator
from repro.p2p import Peer, PeerGroupId
from repro.simnet import Environment, MessageTrace, Network, RngRegistry

GROUP_ID = PeerGroupId.from_name("prop-election")


def _build(size, seed):
    env = Environment()
    network = Network(env, trace=MessageTrace(), rng=RngRegistry(seed))
    rendezvous = Peer(network.add_host("rdv"), is_rendezvous=True)
    rendezvous.publish_self(remote=False)
    peers = []
    coordinators = []
    for index in range(size):
        peer = Peer(network.add_host(f"p{index}"))
        peer.attach_to(rendezvous)
        peer.publish_self(remote=True)
        peer.groups.join(GROUP_ID, "prop-election")
        peers.append(peer)
    env.run(until=1.0)
    for peer in peers:
        coordinators.append(
            GroupCoordinator(
                peer.groups, GROUP_ID, heartbeat_interval=0.5, miss_threshold=2
            )
        )
    coordinators[0].bootstrap()
    env.run(until=6.0)
    return env, peers, coordinators


@given(
    size=st.integers(min_value=2, max_value=6),
    crash_plan=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),   # which peer (mod alive)
            st.floats(min_value=0.5, max_value=5.0), # gap before the crash
        ),
        max_size=3,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_live_members_converge_on_one_live_coordinator(size, crash_plan, seed):
    env, peers, coordinators = _build(size, seed)

    for victim_index, gap in crash_plan:
        alive = [peer for peer in peers if peer.node.up]
        if len(alive) <= 1:
            break
        victim = alive[victim_index % len(alive)]
        env.run(until=env.now + gap)
        victim.node.crash()

    # Quiet period: detection (2 x 0.95s) + election + watchdog slack.
    env.run(until=env.now + 25.0)

    survivors = [
        (peer, coordinator)
        for peer, coordinator in zip(peers, coordinators)
        if peer.node.up
    ]
    assert survivors, "the crash plan never kills everyone"
    beliefs = {coordinator.coordinator for _peer, coordinator in survivors}
    assert len(beliefs) == 1, f"diverged beliefs: {beliefs}"
    leader = beliefs.pop()
    assert leader is not None, "no coordinator elected"
    live_ids = {peer.peer_id for peer, _coordinator in survivors}
    assert leader in live_ids, "coordinator is a dead peer"
    # The believed leader itself claims the role.
    for peer, coordinator in survivors:
        if peer.peer_id == leader:
            assert coordinator.is_coordinator
