"""Property-based tests: stats, QoS aggregation, schema, cache, kernel."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.bench import linear_fit, percentile, summarize
from repro.qos import QosMetrics, QosSelector, parallel, sequence
from repro.simnet import Environment, Store

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(min_value=1e-6, max_value=1e6)


class TestStatsProperties:
    @given(values=st.lists(finite_floats, min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_percentiles_bounded_and_monotone(self, values):
        p25 = percentile(values, 25)
        p50 = percentile(values, 50)
        p75 = percentile(values, 75)
        assert min(values) <= p25 <= p50 <= p75 <= max(values)

    @given(values=st.lists(finite_floats, min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_summary_internally_consistent(self, values):
        summary = summarize(values)
        assert summary.minimum <= summary.mean <= summary.maximum
        assert summary.minimum <= summary.p50 <= summary.p95 <= summary.p99
        assert summary.stdev >= 0
        assert summary.count == len(values)

    @given(
        slope=st.floats(min_value=-100, max_value=100, allow_nan=False),
        intercept=st.floats(min_value=-100, max_value=100, allow_nan=False),
        xs=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=2, max_size=20, unique=True,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_fit_recovers_exact_line(self, slope, intercept, xs):
        # Near-coincident x values make the fit numerically meaningless
        # (the ys collapse to equal floats); require a real spread.
        assume(max(xs) - min(xs) > 1e-3)
        ys = [slope * x + intercept for x in xs]
        fit = linear_fit(xs, ys)
        assert math.isclose(fit.slope, slope, rel_tol=1e-6, abs_tol=1e-5)
        assert math.isclose(fit.intercept, intercept, rel_tol=1e-6, abs_tol=1e-3)
        assert fit.r_squared > 1 - 1e-9


qos_metrics = st.builds(
    QosMetrics,
    time=st.floats(min_value=0, max_value=100),
    cost=st.floats(min_value=0, max_value=100),
    reliability=st.floats(min_value=0, max_value=1),
)


class TestQosProperties:
    @given(parts=st.lists(qos_metrics, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_aggregation_invariants(self, parts):
        seq = sequence(parts)
        par = parallel(parts)
        assert seq.time >= par.time  # sequential is never faster
        assert math.isclose(seq.cost, par.cost, rel_tol=1e-9)
        assert math.isclose(seq.reliability, par.reliability, rel_tol=1e-9)
        assert 0 <= seq.reliability <= 1
        # Reliability never improves by adding stages.
        assert seq.reliability <= min(p.reliability for p in parts) + 1e-12

    @given(candidates=st.dictionaries(
        st.text(min_size=1, max_size=5), qos_metrics, min_size=1, max_size=8
    ))
    @settings(max_examples=100, deadline=None)
    def test_selector_total_and_bounded(self, candidates):
        selector = QosSelector()
        scored = selector.score_all(candidates)
        assert len(scored) == len(candidates)
        assert all(0 <= score <= 1 for _k, score in scored)
        assert selector.select(candidates) in candidates


class TestKernelProperties:
    @given(delays=st.lists(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        min_size=1, max_size=30,
    ))
    @settings(max_examples=60, deadline=None)
    def test_timeouts_fire_in_nondecreasing_order(self, delays):
        env = Environment()
        fired = []
        for delay in delays:
            timeout = env.timeout(delay, value=delay)
            timeout.add_callback(lambda e: fired.append(env.now))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(items=st.lists(st.integers(), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_store_preserves_fifo_content(self, items):
        env = Environment()
        store = Store(env)
        for item in items:
            store.put(item)
        got = []

        def consumer():
            for _ in range(len(items)):
                got.append((yield store.get()))

        process = env.process(consumer())
        if items:
            env.run(until=process)
        assert got == items


class TestCacheProperties:
    @given(
        entries=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d", "e"]),
                st.floats(min_value=0.1, max_value=100),
            ),
            max_size=20,
        ),
        probe_time=st.floats(min_value=0, max_value=120),
    )
    @settings(max_examples=100, deadline=None)
    def test_cache_never_returns_expired(self, entries, probe_time):
        from repro.p2p import AdvertisementCache, PeerAdvertisement, PeerId

        clock = {"now": 0.0}
        cache = AdvertisementCache(clock=lambda: clock["now"])
        expiries = {}
        for name, lifetime in entries:
            advertisement = PeerAdvertisement(
                peer_id=PeerId.from_name(name), name=name, host="h", port=1
            )
            cache.publish(advertisement, lifetime=lifetime)
            expiries[advertisement.key()] = lifetime  # last publish wins
        clock["now"] = probe_time
        for advertisement in cache.query():
            assert expiries[advertisement.key()] > probe_time
