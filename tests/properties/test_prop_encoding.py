"""Property-based tests: SOAP value encoding and envelopes."""

import xml.etree.ElementTree as ET

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soap import Envelope, element_to_value, value_to_element

# XML 1.0 cannot transport control characters, surrogates, or U+FFFE/FFFF;
# the encoder rejects them (see test_control_characters_rejected), so the
# round-trip strategies generate only transportable text.
xml_characters = st.characters(
    blacklist_categories=("Cs", "Cc"),
    blacklist_characters="￾￿",
)
xml_text = st.text(alphabet=xml_characters, max_size=40)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    xml_text,
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(alphabet=xml_characters, min_size=1, max_size=10),
            children,
            max_size=4,
        ),
    ),
    max_leaves=12,
)


@given(value=values)
@settings(max_examples=150, deadline=None)
def test_value_roundtrips_through_element(value):
    assert element_to_value(value_to_element("v", value)) == value


@given(value=values)
@settings(max_examples=100, deadline=None)
def test_value_roundtrips_through_serialised_xml(value):
    xml = ET.tostring(value_to_element("v", value), encoding="unicode")
    assert element_to_value(ET.fromstring(xml)) == value


@given(
    operation=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        min_size=1,
        max_size=20,
    ),
    arguments=st.dictionaries(
        st.text(alphabet=xml_characters, min_size=1, max_size=10),
        scalars,
        max_size=4,
    ),
)
@settings(max_examples=80, deadline=None)
def test_call_envelope_roundtrips(operation, arguments):
    envelope = Envelope.call(operation, arguments)
    parsed = Envelope.from_xml(envelope.to_xml())
    assert parsed.kind == "call"
    assert parsed.operation == operation
    assert parsed.arguments == arguments


@given(value=values)
@settings(max_examples=80, deadline=None)
def test_result_envelope_roundtrips(value):
    parsed = Envelope.from_xml(Envelope.result("op", value).to_xml())
    assert parsed.value == value


def test_control_characters_rejected():
    from repro.soap import EncodingError
    import pytest

    with pytest.raises(EncodingError):
        value_to_element("v", "bad\x08string")
    with pytest.raises(EncodingError):
        value_to_element("v", {"bad\x00key": 1})
