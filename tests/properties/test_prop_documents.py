"""Property-based tests: WSDL and advertisement XML round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p2p import (
    PeerAdvertisement,
    PeerGroupAdvertisement,
    PeerGroupId,
    PeerId,
    PipeAdvertisement,
    PipeId,
    SemanticAdvertisement,
    advertisement_from_xml,
)
from repro.wsdl import (
    Definitions,
    Interface,
    MessagePart,
    Operation,
    definitions_from_xml,
    definitions_to_xml,
)

# XML-safe identifier-ish text (names, labels).
names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=16,
)
uris = st.builds(lambda local: f"http://prop.test/onto#{local}", names)


@st.composite
def semantic_advertisements(draw):
    return SemanticAdvertisement(
        group_id=PeerGroupId.from_name(draw(names)),
        name=draw(names),
        action=draw(uris),
        inputs=tuple(draw(st.lists(uris, max_size=4))),
        outputs=tuple(draw(st.lists(uris, max_size=4))),
        ontology_uri=draw(uris),
        description=draw(names),
        qos_time=draw(st.one_of(st.none(), st.floats(min_value=0, max_value=10))),
        qos_cost=draw(st.one_of(st.none(), st.floats(min_value=0, max_value=100))),
        qos_reliability=draw(
            st.one_of(st.none(), st.floats(min_value=0, max_value=1))
        ),
        lifetime=draw(st.floats(min_value=1, max_value=10000)),
    )


@given(advertisement=semantic_advertisements())
@settings(max_examples=100, deadline=None)
def test_semantic_advertisement_roundtrips(advertisement):
    parsed = advertisement_from_xml(advertisement.to_xml())
    assert parsed.group_id == advertisement.group_id
    assert parsed.name == advertisement.name
    assert parsed.action == advertisement.action
    assert parsed.inputs == advertisement.inputs
    assert parsed.outputs == advertisement.outputs
    assert parsed.qos_time == advertisement.qos_time
    assert parsed.qos_cost == advertisement.qos_cost
    assert parsed.qos_reliability == advertisement.qos_reliability
    assert parsed.lifetime == advertisement.lifetime
    assert parsed.key() == advertisement.key()


@given(
    name=names, host=names,
    port=st.integers(min_value=1, max_value=65535),
)
@settings(max_examples=60, deadline=None)
def test_peer_advertisement_roundtrips(name, host, port):
    advertisement = PeerAdvertisement(
        peer_id=PeerId.from_name(name), name=name, host=host, port=port
    )
    parsed = advertisement_from_xml(advertisement.to_xml())
    assert parsed.address == (host, port)
    assert parsed.peer_id == advertisement.peer_id


@given(
    name=names,
    pipe_type=st.sampled_from(
        [PipeAdvertisement.UNICAST, PipeAdvertisement.PROPAGATE]
    ),
)
@settings(max_examples=40, deadline=None)
def test_pipe_advertisement_roundtrips(name, pipe_type):
    advertisement = PipeAdvertisement(
        pipe_id=PipeId.from_name(name), name=name, pipe_type=pipe_type
    )
    parsed = advertisement_from_xml(advertisement.to_xml())
    assert parsed.pipe_type == pipe_type
    assert parsed.pipe_id == advertisement.pipe_id


@st.composite
def wsdl_documents(draw):
    definitions = Definitions(
        name=draw(names),
        target_namespace=f"http://prop.test/{draw(names)}",
        namespaces={"p": "http://prop.test/onto#"},
    )
    interface = Interface(name=draw(names))
    operation_names = draw(
        st.lists(names, min_size=1, max_size=3, unique=True)
    )
    for operation_name in operation_names:
        operation = Operation(
            name=operation_name,
            action=draw(uris),
            inputs=[
                MessagePart(
                    message_label=draw(names),
                    element=f"tns:{draw(names)}",
                    model_reference=draw(uris),
                )
                for _ in range(draw(st.integers(min_value=0, max_value=3)))
            ],
            outputs=[
                MessagePart(
                    message_label=draw(names),
                    element=f"tns:{draw(names)}",
                    model_reference=draw(uris),
                )
                for _ in range(draw(st.integers(min_value=0, max_value=3)))
            ],
        )
        interface.add_operation(operation)
    definitions.add_interface(interface)
    return definitions


@given(definitions=wsdl_documents())
@settings(max_examples=60, deadline=None)
def test_wsdl_annotations_roundtrip(definitions):
    parsed = definitions_from_xml(definitions_to_xml(definitions))
    assert parsed.name == definitions.name
    original_ops = {op.name: op for op in definitions.operations()}
    parsed_ops = {op.name: op for op in parsed.operations()}
    assert set(parsed_ops) == set(original_ops)
    for name, original in original_ops.items():
        assert parsed_ops[name].annotation() == original.annotation()
        labels = [part.message_label for part in parsed_ops[name].inputs]
        assert labels == [part.message_label for part in original.inputs]
