"""Property-based tests: QoS prediction over random workflow trees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qos import QosMetrics
from repro.workflow import (
    ExclusiveChoice,
    LoopFlow,
    ParallelFlow,
    SequenceFlow,
    ServiceTask,
    predict_qos,
)

metrics = st.builds(
    QosMetrics,
    time=st.floats(min_value=0.001, max_value=10),
    cost=st.floats(min_value=0, max_value=10),
    reliability=st.floats(min_value=0.0, max_value=1.0),
)


def _task(name):
    return ServiceTask(
        name=name, address=("h", 80), path="/s", operation="Op",
        input_mapping=lambda ctx: {},
    )


@st.composite
def workflows(draw, depth=0):
    """Random trees of tasks and composition nodes with fresh task names."""
    counter = draw(st.integers(min_value=0, max_value=10**6))
    name = f"t{depth}-{counter}"
    if depth >= 3:
        return _task(name)
    kind = draw(st.sampled_from(["task", "seq", "par", "choice", "loop"]))
    if kind == "task":
        return _task(name)
    if kind in ("seq", "par"):
        children = [
            draw(workflows(depth=depth + 1))
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        ]
        return SequenceFlow(children) if kind == "seq" else ParallelFlow(children)
    if kind == "choice":
        count = draw(st.integers(min_value=1, max_value=3))
        weights = [draw(st.floats(min_value=0.05, max_value=1.0)) for _ in range(count)]
        total = sum(weights)
        branches = [
            (lambda ctx: True, weight / total, draw(workflows(depth=depth + 1)))
            for weight in weights
        ]
        return ExclusiveChoice(branches=branches)
    return LoopFlow(
        body=draw(workflows(depth=depth + 1)),
        condition=lambda ctx: False,
        repeat_probability=draw(st.floats(min_value=0.0, max_value=0.8)),
    )


def _metrics_for(workflow, draw_value):
    return {task.name: draw_value for task in workflow.tasks()}


@given(workflow=workflows(), task_metric=metrics)
@settings(max_examples=80, deadline=None)
def test_prediction_invariants(workflow, task_metric):
    table = {task.name: task_metric for task in workflow.tasks()}
    predicted = predict_qos(workflow, table)
    assert predicted.time >= 0
    assert predicted.cost >= 0
    assert 0.0 <= predicted.reliability <= 1.0
    # Composition never *improves* on the reliability of a single task.
    assert predicted.reliability <= task_metric.reliability + 1e-9
    # Composition is at least as slow as one task, except pure choices
    # cannot dilute a uniform table either.
    assert predicted.time >= task_metric.time - 1e-9


@given(workflow=workflows())
@settings(max_examples=60, deadline=None)
def test_perfect_tasks_compose_perfectly(workflow):
    perfect = QosMetrics(time=0.0, cost=0.0, reliability=1.0)
    table = {task.name: perfect for task in workflow.tasks()}
    predicted = predict_qos(workflow, table)
    assert predicted.time == 0.0
    assert predicted.reliability > 1.0 - 1e-9


@given(workflow=workflows(), task_metric=metrics)
@settings(max_examples=60, deadline=None)
def test_prediction_deterministic(workflow, task_metric):
    table = {task.name: task_metric for task in workflow.tasks()}
    first = predict_qos(workflow, table)
    second = predict_qos(workflow, table)
    assert first == second
