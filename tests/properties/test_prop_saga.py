"""Property-based test: saga atomicity under random crash/partition/loss.

For any random fault schedule — orchestrator crashes (including at
commit boundaries), coordinator crashes and partitions, dropped
messages, network-wide loss — every saga must end all-committed or
all-compensated, with no double compensation and no stranded partial
effects, as audited over the durable saga log and every backend's
``Database.effect_log`` by
:func:`repro.check.invariants.saga_atomicity_violations` (re-checked
after every slice of the run by :func:`run_saga_schedule`).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check import FaultOp, SagaCheckScenario, Schedule, run_saga_schedule
from repro.check.saga import ORCHESTRATOR_HOST, loan_saga_context

TERMINAL = {"committed", "compensated", "dead-lettered"}

@st.composite
def fault_ops(draw):
    # ``crash`` needs an explicit victim — aim it at the orchestrator
    # host, the crash the saga log exists to survive; ``drop`` must
    # target a network decision point.
    action = draw(st.sampled_from(
        ["crash", "crash-coordinator", "partition-coordinator", "drop"]
    ))
    return FaultOp(
        at_decision=draw(st.integers(min_value=1, max_value=600)),
        action=action,
        target=ORCHESTRATOR_HOST if action == "crash" else None,
        duration=draw(st.floats(min_value=1.0, max_value=4.0)),
        point="pre-send" if action == "drop" else "any",
    )

schedules = st.builds(
    Schedule,
    ops=st.lists(fault_ops(), max_size=3).map(tuple),
    label=st.just("prop"),
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=40),
    loss=st.sampled_from([0.0, 0.01, 0.03]),
    schedule=schedules,
)
def test_sagas_are_atomic_under_random_faults(seed, loss, schedule):
    scenario = SagaCheckScenario(
        seed=seed, sagas=5, cooldown=8.0, loss_rate=loss
    )
    result = run_saga_schedule(scenario, schedule)
    # The slice-by-slice audit: atomicity (all committed or every applied
    # step compensated, no double rollback, no stranded effects) plus
    # exactly-once over every backend effect ledger.
    assert result.violations == [], (seed, loss, schedule.describe())
    # Every submitted saga reached a terminal state once faults drained
    # (dead-lettered is terminal: parked in the DLQ, not stranded).
    for saga_id, state in result.saga_states.items():
        assert state in TERMINAL, (saga_id, state)
    # Business-level safety rides along: an insolvent applicant's saga
    # can never commit, whatever the schedule did.
    for index in range(scenario.sagas):
        if loan_saga_context(scenario, index)["insolvent"]:
            assert result.saga_states.get(f"loan-{index:04d}") != "committed"
