"""Property-based tests: exactly-once invocation under random failures.

Random crash/partition/loss schedules run against the mutating enrollment
service while a client issues logical calls (each retried internally by
the proxy under one idempotency key).  Whatever the schedule:

* no invocation id is applied more than once across the group's backend
  side-effect ledgers (with the dedup journal enabled), and
* every call the client saw succeed is backed by a ``DONE`` journal entry
  somewhere in the group — the result is durable knowledge, not a lucky
  race.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.datasets import student_database
from repro.backend.services import student_enrollment
from repro.core import ScenarioConfig, WhisperSystem
from repro.core.errors import WhisperError
from repro.soap.fault import SoapFault
from repro.wsdl.samples import student_admin_wsdl

REPLICAS = 3
STUDENTS = 20
PROBES = 8


def _build(seed, loss_rate):
    system = WhisperSystem(
        ScenarioConfig(
            seed=seed,
            heartbeat_interval=0.5,
            miss_threshold=2,
            students=STUDENTS,
        )
    )
    system.network.loss_rate = loss_rate
    implementations = [
        student_enrollment(student_database(STUDENTS)) for _ in range(REPLICAS)
    ]
    service = system.deploy_service(
        student_admin_wsdl(),
        {"EnrollStudent": implementations},
        web_host="web0",
    )
    system.settle(6.0)
    return system, service


def _schedule(system, service, plan):
    """Turn the drawn plan into crash/partition events on the sim clock."""
    hosts = [peer.node.name for peer in service.group.peers]
    everyone = list(system.network.hosts.keys())
    at = system.env.now
    for kind, victim_index, gap, duration in plan:
        at += gap
        victim = hosts[victim_index % len(hosts)]
        if kind == "crash":
            system.failures.crash_for(at, victim, downtime=duration)
        else:
            others = [name for name in everyone if name != victim]
            system.failures.partition_at(at, [victim], others, duration=duration)


def _drive(system, service):
    """Sequential enrollment calls; returns the successful InvokeResults."""
    results = []

    def client():
        for sequence in range(PROBES):
            try:
                result = yield from service.invoke(
                    "EnrollStudent",
                    {
                        "ID": f"S{sequence % STUDENTS + 1:05d}",
                        "course": f"C{sequence:05d}",
                    },
                    timeout=2.0,
                    budget=8.0,
                )
            except (SoapFault, WhisperError):
                continue
            results.append(result)

    system.env.run(until=service.proxy.node.spawn(client()))
    system.settle(12.0)  # heals + restarts + final election drain
    return results


_plan_events = st.tuples(
    st.sampled_from(["crash", "partition"]),
    st.integers(min_value=0, max_value=REPLICAS - 1),  # victim
    st.floats(min_value=0.5, max_value=4.0),           # gap before event
    st.floats(min_value=1.0, max_value=6.0),           # downtime / window
)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    plan=st.lists(_plan_events, max_size=3),
    loss_rate=st.sampled_from([0.0, 0.01, 0.05]),
)
@settings(max_examples=10, deadline=None)
def test_no_duplicate_effects_and_results_are_journaled(seed, plan, loss_rate):
    system, service = _build(seed, loss_rate)
    _schedule(system, service, plan)
    results = _drive(system, service)

    # Invariant 1: no invocation applied its mutation twice, anywhere.
    counts = {}
    for peer in service.group.peers:
        for invocation_id, _peer_name in peer.implementation.backend.effect_log:
            counts[invocation_id] = counts.get(invocation_id, 0) + 1
    duplicated = {
        invocation_id: count for invocation_id, count in counts.items() if count > 1
    }
    assert not duplicated, f"double-applied invocations: {duplicated}"

    # Invariant 2: every result the client saw as OK is backed by a DONE
    # journal entry on at least one group member.
    for result in results:
        holders = [
            peer.name
            for peer in service.group.peers
            if (entry := peer.journal.lookup(result.invocation_id)) is not None
            and entry.done
        ]
        assert holders, f"{result.invocation_id} succeeded but is journaled nowhere"
