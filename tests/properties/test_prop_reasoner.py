"""Property-based tests: ontology reasoning invariants on random DAGs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ontology import ConceptMatcher, DegreeOfMatch, Ontology, Reasoner

NS = "http://prop.test/o#"


@st.composite
def ontologies(draw):
    """Random acyclic ontologies: parents only point to lower indices
    (guaranteeing acyclicity), plus a few equivalences between roots."""
    size = draw(st.integers(min_value=2, max_value=14))
    onto = Ontology("http://prop.test/o")
    names = [f"{NS}C{i}" for i in range(size)]
    for index, name in enumerate(names):
        parent_count = draw(st.integers(min_value=0, max_value=min(2, index)))
        parents = draw(
            st.lists(
                st.sampled_from(names[:index]) if index else st.nothing(),
                min_size=parent_count,
                max_size=parent_count,
                unique=True,
            )
        ) if index else []
        onto.add_concept(name, parents=parents)
    # A couple of equivalences between same-generation concepts.
    eq_count = draw(st.integers(min_value=0, max_value=2))
    for _ in range(eq_count):
        a = draw(st.sampled_from(names))
        b = draw(st.sampled_from(names))
        onto.add_equivalence(a, b)
    return onto


@given(onto=ontologies())
@settings(max_examples=60, deadline=None)
def test_subsumption_is_reflexive(onto):
    reasoner = Reasoner(onto)
    for uri in onto.concepts:
        assert reasoner.is_subsumed_by(uri, uri)


@given(onto=ontologies())
@settings(max_examples=60, deadline=None)
def test_subsumption_is_transitive(onto):
    reasoner = Reasoner(onto)
    uris = sorted(onto.concepts)
    for a in uris:
        for b in reasoner.ancestors(a):
            for c in reasoner.ancestors(b):
                assert reasoner.is_subsumed_by(a, c)


@given(onto=ontologies())
@settings(max_examples=60, deadline=None)
def test_equivalence_is_an_equivalence_relation(onto):
    reasoner = Reasoner(onto)
    uris = sorted(onto.concepts)
    for a in uris:
        assert reasoner.equivalent(a, a)
        for b in uris:
            assert reasoner.equivalent(a, b) == reasoner.equivalent(b, a)
    # Transitivity via equivalence classes.
    for a in uris:
        cls = reasoner.equivalence_class(a)
        for b in cls:
            assert reasoner.equivalence_class(b) == cls


@given(onto=ontologies())
@settings(max_examples=60, deadline=None)
def test_equivalent_concepts_subsume_each_other(onto):
    reasoner = Reasoner(onto)
    for a in sorted(onto.concepts):
        for b in reasoner.equivalence_class(a):
            assert reasoner.is_subsumed_by(a, b)
            assert reasoner.is_subsumed_by(b, a)


@given(onto=ontologies())
@settings(max_examples=60, deadline=None)
def test_similarity_symmetric_and_bounded(onto):
    reasoner = Reasoner(onto)
    uris = sorted(onto.concepts)[:8]
    for a in uris:
        for b in uris:
            s_ab = reasoner.similarity(a, b)
            s_ba = reasoner.similarity(b, a)
            assert 0.0 <= s_ab <= 1.0
            assert abs(s_ab - s_ba) < 1e-12
    for a in uris:
        assert reasoner.similarity(a, a) == 1.0


@given(onto=ontologies())
@settings(max_examples=60, deadline=None)
def test_match_degree_consistent_with_subsumption(onto):
    reasoner = Reasoner(onto)
    matcher = ConceptMatcher(reasoner)
    uris = sorted(onto.concepts)[:8]
    for requested in uris:
        for advertised in uris:
            degree = matcher.match_concepts(requested, advertised).degree
            if reasoner.equivalent(requested, advertised):
                assert degree is DegreeOfMatch.EXACT
            elif reasoner.is_subsumed_by(advertised, requested):
                assert degree is DegreeOfMatch.PLUGIN
            elif reasoner.is_subsumed_by(requested, advertised):
                assert degree is DegreeOfMatch.SUBSUME
            else:
                assert degree is DegreeOfMatch.FAIL


@given(onto=ontologies())
@settings(max_examples=40, deadline=None)
def test_owl_xml_roundtrip_preserves_reasoning(onto):
    from repro.ontology import ontology_from_xml, ontology_to_xml

    parsed = ontology_from_xml(ontology_to_xml(onto))
    original = Reasoner(onto)
    recovered = Reasoner(parsed)
    for uri in sorted(onto.concepts):
        assert original.ancestors(uri) == recovered.ancestors(uri)


@given(onto=ontologies())
@settings(max_examples=40, deadline=None)
def test_turtle_roundtrip_preserves_reasoning(onto):
    from repro.ontology import ontology_from_turtle, ontology_to_turtle

    parsed = ontology_from_turtle(ontology_to_turtle(onto))
    original = Reasoner(onto)
    recovered = Reasoner(parsed)
    for uri in sorted(onto.concepts):
        assert original.ancestors(uri) == recovered.ancestors(uri)


@given(onto=ontologies())
@settings(max_examples=40, deadline=None)
def test_xml_and_turtle_agree(onto):
    """The two serialisations describe the same ontology."""
    from repro.ontology import (
        ontology_from_turtle,
        ontology_from_xml,
        ontology_to_turtle,
        ontology_to_xml,
    )

    via_xml = ontology_from_xml(ontology_to_xml(onto))
    via_turtle = ontology_from_turtle(ontology_to_turtle(onto))
    assert set(via_xml.concepts) == set(via_turtle.concepts)
    for uri in via_xml.concepts:
        assert via_xml.concepts[uri].parents == via_turtle.concepts[uri].parents
