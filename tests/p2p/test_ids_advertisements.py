"""Unit tests for JXTA ids and advertisements."""

import pytest

from repro.p2p import (
    AdvParseError,
    PeerAdvertisement,
    PeerGroupAdvertisement,
    PeerGroupId,
    PeerId,
    PipeAdvertisement,
    PipeId,
    SemanticAdvertisement,
    advertisement_from_xml,
)


class TestIds:
    def test_deterministic_from_name(self):
        assert PeerId.from_name("alpha") == PeerId.from_name("alpha")

    def test_distinct_names_distinct_ids(self):
        assert PeerId.from_name("alpha") != PeerId.from_name("beta")

    def test_kinds_do_not_collide(self):
        assert PeerId.from_name("x").uuid_hex != PeerGroupId.from_name("x").uuid_hex

    def test_urn_roundtrip(self):
        peer_id = PeerId.from_name("alpha")
        assert PeerId.from_urn(peer_id.urn) == peer_id
        assert peer_id.urn.startswith("urn:jxta:uuid-")

    def test_bad_urn_rejected(self):
        with pytest.raises(ValueError):
            PeerId.from_urn("http://not-a-urn")

    def test_ids_are_orderable_and_hashable(self):
        ids = sorted({PeerId.from_name(str(i)) for i in range(5)})
        assert len(ids) == 5


def _roundtrip(advertisement):
    return advertisement_from_xml(advertisement.to_xml())


class TestAdvertisements:
    def test_peer_advertisement_roundtrip(self):
        original = PeerAdvertisement(
            peer_id=PeerId.from_name("p"), name="p", host="h1", port=9701
        )
        parsed = _roundtrip(original)
        assert parsed.peer_id == original.peer_id
        assert parsed.address == ("h1", 9701)
        assert parsed.key() == original.key()

    def test_peergroup_advertisement_roundtrip(self):
        original = PeerGroupAdvertisement(
            group_id=PeerGroupId.from_name("g"), name="g", description="a group"
        )
        parsed = _roundtrip(original)
        assert parsed.group_id == original.group_id
        assert parsed.description == "a group"

    def test_pipe_advertisement_roundtrip(self):
        original = PipeAdvertisement(
            pipe_id=PipeId.from_name("pp"), name="pp",
            pipe_type=PipeAdvertisement.PROPAGATE,
        )
        parsed = _roundtrip(original)
        assert parsed.pipe_type == PipeAdvertisement.PROPAGATE

    def test_semantic_advertisement_roundtrip(self):
        original = SemanticAdvertisement(
            group_id=PeerGroupId.from_name("g"),
            name="students",
            action="http://o#StudentInformation",
            inputs=("http://o#StudentID",),
            outputs=("http://o#StudentInfo", "http://o#Extra"),
            ontology_uri="http://o",
            description="semantic group",
        )
        parsed = _roundtrip(original)
        assert parsed.get_sem_action() == original.action
        assert parsed.get_sem_input() == original.inputs
        assert parsed.get_sem_output() == original.outputs
        assert parsed.ontology_uri == "http://o"

    def test_lifetime_survives_roundtrip(self):
        original = PeerGroupAdvertisement(
            group_id=PeerGroupId.from_name("g"), name="g", lifetime=123.0
        )
        assert _roundtrip(original).lifetime == 123.0

    def test_attributes_view(self):
        advertisement = SemanticAdvertisement(
            group_id=PeerGroupId.from_name("g"), name="students",
            action="http://o#A",
        )
        attributes = advertisement.attributes()
        assert attributes["Name"] == "students"
        assert attributes["Action"] == "http://o#A"

    def test_unknown_type_rejected(self):
        with pytest.raises(AdvParseError):
            advertisement_from_xml('<x type="alien:Adv"/>')

    def test_malformed_rejected(self):
        with pytest.raises(AdvParseError):
            advertisement_from_xml("<oops")

    def test_missing_field_rejected(self):
        with pytest.raises(AdvParseError):
            advertisement_from_xml('<jxta_PA type="jxta:PA"><Name>n</Name></jxta_PA>')

    def test_size_grows_with_content(self):
        small = SemanticAdvertisement(
            group_id=PeerGroupId.from_name("g"), name="g", action="a"
        )
        big = SemanticAdvertisement(
            group_id=PeerGroupId.from_name("g"), name="g", action="a",
            inputs=tuple(f"http://o#In{i}" for i in range(20)),
        )
        assert big.size_bytes() > small.size_bytes()


class TestLazyXmlCache:
    def _adv(self):
        return SemanticAdvertisement(
            group_id=PeerGroupId.from_name("g"), name="g", action="a",
            inputs=("http://o#In",), outputs=("http://o#Out",),
        )

    def test_repeat_renders_are_cached_and_identical(self):
        advertisement = self._adv()
        first = advertisement.to_xml()
        assert advertisement.to_xml() is first  # cached object, not re-render
        assert advertisement.size_bytes() == len(first.encode())

    def test_invalidate_after_mutation_re_renders(self):
        advertisement = self._adv()
        before = advertisement.to_xml()
        advertisement.lifetime = 12.5
        advertisement.invalidate_xml_cache()
        after = advertisement.to_xml()
        assert after != before
        assert 'lifetime="12.5"' in after

    def test_cache_flag_off_renders_eagerly(self, monkeypatch):
        from repro.p2p import advertisement as advertisement_module

        monkeypatch.setattr(advertisement_module, "CACHE_XML", False)
        advertisement = self._adv()
        first = advertisement.to_xml()
        assert advertisement.to_xml() is not first  # fresh render each call
        assert advertisement.to_xml() == first      # but equal content

    def test_parse_after_cached_render_roundtrips(self):
        advertisement = self._adv()
        document = advertisement.to_xml()
        parsed = advertisement_from_xml(document)
        assert parsed.key() == advertisement.key()
        assert parsed.get_sem_input() == ("http://o#In",)
