"""Unit tests for pipes and the membership (credential) service."""

import pytest

from repro.p2p import (
    MembershipError,
    PipeAdvertisement,
    PipeBindError,
    PipeId,
    PeerGroupId,
)
from repro.p2p.membership import CREDENTIAL_LIFETIME


def _pipe_adv(name, pipe_type=PipeAdvertisement.UNICAST):
    return PipeAdvertisement(
        pipe_id=PipeId.from_name(name), name=name, pipe_type=pipe_type
    )


class TestPipes:
    def test_bind_and_send(self, env, p2p):
        _rendezvous, edges = p2p
        advertisement = _pipe_adv("orders")
        input_pipe = edges[1].pipes.create_input_pipe(advertisement)
        got = []

        def reader():
            datagram = yield input_pipe.recv()
            got.append((datagram.payload, datagram.src_peer))

        edges[1].node.spawn(reader())

        def writer():
            output = yield from edges[2].pipes.bind_output_pipe(advertisement, timeout=0.5)
            output.send({"order": 7})

        env.run(until=edges[2].node.spawn(writer()))
        env.run(until=env.now + 0.2)
        assert got == [({"order": 7}, edges[2].peer_id)]

    def test_bind_unbound_pipe_raises(self, env, p2p):
        _rendezvous, edges = p2p
        outcome = {}

        def writer():
            try:
                yield from edges[2].pipes.bind_output_pipe(_pipe_adv("ghost"), timeout=0.3)
            except PipeBindError as error:
                outcome["error"] = error

        env.run(until=edges[2].node.spawn(writer()))
        assert "error" in outcome

    def test_closed_input_pipe_silently_drops(self, env, p2p):
        _rendezvous, edges = p2p
        advertisement = _pipe_adv("closing")
        input_pipe = edges[1].pipes.create_input_pipe(advertisement)

        def writer():
            output = yield from edges[2].pipes.bind_output_pipe(advertisement, timeout=0.5)
            input_pipe.close()
            output.send("too-late")

        env.run(until=edges[2].node.spawn(writer()))
        env.run(until=env.now + 0.2)
        assert len(input_pipe.inbox) == 0

    def test_multiple_messages_all_delivered(self, env, p2p):
        """Pipes are datagram channels: delivery is complete but may
        reorder under independent per-message latencies."""
        _rendezvous, edges = p2p
        advertisement = _pipe_adv("stream")
        input_pipe = edges[1].pipes.create_input_pipe(advertisement)
        got = []

        def reader():
            for _ in range(3):
                datagram = yield input_pipe.recv()
                got.append(datagram.payload)

        reader_process = edges[1].node.spawn(reader())

        def writer():
            output = yield from edges[2].pipes.bind_output_pipe(advertisement, timeout=0.5)
            for index in range(3):
                output.send(index)

        edges[2].node.spawn(writer())
        env.run(until=reader_process)
        assert sorted(got) == [0, 1, 2]


class TestMembershipService:
    def test_join_issues_credential(self, env, p2p):
        _rendezvous, edges = p2p
        group_id = PeerGroupId.from_name("g")
        credential = edges[0].membership.join(group_id)
        assert credential.peer_id == edges[0].peer_id
        assert credential.group_id == group_id
        assert credential.valid_at(env.now)

    def test_current_credential(self, env, p2p):
        _rendezvous, edges = p2p
        group_id = PeerGroupId.from_name("g")
        assert edges[0].membership.current_credential(group_id) is None
        edges[0].membership.join(group_id)
        assert edges[0].membership.current_credential(group_id) is not None

    def test_resign_discards(self, env, p2p):
        _rendezvous, edges = p2p
        group_id = PeerGroupId.from_name("g")
        edges[0].membership.join(group_id)
        edges[0].membership.resign(group_id)
        assert edges[0].membership.current_credential(group_id) is None

    def test_verify_wrong_group_rejected(self, env, p2p):
        _rendezvous, edges = p2p
        group_a = PeerGroupId.from_name("a")
        group_b = PeerGroupId.from_name("b")
        credential = edges[0].membership.join(group_a)
        with pytest.raises(MembershipError):
            edges[0].membership.verify(credential, group_b)

    def test_expired_credential_rejected(self, env, p2p):
        _rendezvous, edges = p2p
        group_id = PeerGroupId.from_name("g")
        credential = edges[0].membership.join(group_id)
        env.run(until=env.now + CREDENTIAL_LIFETIME + 1)
        with pytest.raises(MembershipError):
            edges[0].membership.verify(credential, group_id)
