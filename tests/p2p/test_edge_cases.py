"""Edge cases across the P2P stack."""

import pytest

from repro.p2p import Peer, PeerGroupAdvertisement, PeerGroupId


class TestDisconnectedPeer:
    def test_publish_remote_without_lease_is_local_only(self, env, network):
        """An unconnected peer can still publish locally; the SRDI push is
        silently skipped (nothing to push to)."""
        lonely = Peer(network.add_host("lonely"))
        advertisement = PeerGroupAdvertisement(
            group_id=PeerGroupId.from_name("g"), name="g"
        )
        lonely.discovery.publish(advertisement, remote=True)  # must not raise
        env.run(until=0.2)
        local = lonely.discovery.get_local_advertisements(PeerGroupAdvertisement)
        assert [a.name for a in local] == ["g"]

    def test_propagate_without_rendezvous_is_local_only(self, env, network):
        lonely = Peer(network.add_host("lonely"))
        got = []
        lonely.rendezvous.register_propagate_listener(
            "x", lambda payload, origin: got.append(payload)
        )
        lonely.rendezvous.propagate("x", "hello")
        env.run(until=0.2)
        assert got == ["hello"]  # loopback only; no crash

    def test_group_join_without_rendezvous(self, env, network):
        lonely = Peer(network.add_host("lonely"))
        group_id = PeerGroupId.from_name("solo")
        lonely.groups.join(group_id, "solo")
        env.run(until=0.5)
        assert lonely.groups.is_member(group_id)
        assert lonely.groups.members(group_id) == {lonely.peer_id}


class TestSingleMemberGroup:
    def test_single_member_elects_itself(self, env, p2p):
        from repro.election import GroupCoordinator

        _rendezvous, edges = p2p
        group_id = PeerGroupId.from_name("singleton")
        edges[0].groups.join(group_id, "singleton")
        coordinator = GroupCoordinator(edges[0].groups, group_id)
        coordinator.bootstrap()
        env.run(until=env.now + 2.0)
        assert coordinator.is_coordinator
        assert not coordinator.monitor.active  # nobody to monitor

    def test_survivor_of_crashes_takes_over(self, env, p2p):
        from repro.election import GroupCoordinator

        _rendezvous, edges = p2p
        group_id = PeerGroupId.from_name("attrition")
        coordinators = []
        for edge in edges[:3]:
            edge.groups.join(group_id, "attrition")
        env.run(until=env.now + 1.0)
        for edge in edges[:3]:
            coordinators.append(
                GroupCoordinator(
                    edge.groups, group_id, heartbeat_interval=0.5, miss_threshold=2
                )
            )
        coordinators[0].bootstrap()
        env.run(until=env.now + 4.0)
        # Kill everyone except the lowest-id member.
        ordered = sorted(range(3), key=lambda i: edges[i].peer_id.uuid_hex)
        survivor_index = ordered[0]
        for index in ordered[1:]:
            edges[index].node.crash()
        env.run(until=env.now + 20.0)
        assert coordinators[survivor_index].is_coordinator
