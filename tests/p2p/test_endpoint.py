"""Unit tests for the endpoint service (peer-ID messaging + relays)."""

import pytest

from repro.p2p import (
    EndpointService,
    Peer,
    PeerId,
    UnresolvablePeerError,
    attach_nat_peer,
    configure_relay,
)


def _endpoint(network, host_name, nat=False):
    node = network.add_host(host_name)
    return EndpointService(node, PeerId.from_name(host_name), nat_isolated=nat)


class TestDirectMessaging:
    def test_send_by_peer_id(self, env, network):
        a = _endpoint(network, "a")
        b = _endpoint(network, "b")
        a.add_route(b.peer_id, b.address)
        got = []
        b.register_listener("test", lambda msg: got.append(msg.payload))
        a.send(b.peer_id, "test", {"hello": 1})
        env.run(until=0.1)
        assert got == [{"hello": 1}]
        assert a.messages_out == 1
        assert b.messages_in == 1

    def test_unknown_peer_raises(self, env, network):
        a = _endpoint(network, "a")
        with pytest.raises(UnresolvablePeerError):
            a.send(PeerId.from_name("ghost"), "test", None)

    def test_listener_dispatch_by_protocol(self, env, network):
        a = _endpoint(network, "a")
        b = _endpoint(network, "b")
        a.add_route(b.peer_id, b.address)
        got = {"x": [], "y": []}
        b.register_listener("x", lambda m: got["x"].append(m.payload))
        b.register_listener("y", lambda m: got["y"].append(m.payload))
        a.send(b.peer_id, "x", 1)
        a.send(b.peer_id, "y", 2)
        a.send(b.peer_id, "unregistered", 3)
        env.run(until=0.1)
        assert got == {"x": [1], "y": [2]}

    def test_unregister_listener(self, env, network):
        a = _endpoint(network, "a")
        b = _endpoint(network, "b")
        a.add_route(b.peer_id, b.address)
        got = []
        b.register_listener("x", lambda m: got.append(m.payload))
        b.unregister_listener("x")
        a.send(b.peer_id, "x", 1)
        env.run(until=0.1)
        assert got == []

    def test_message_category_recorded(self, env, network):
        a = _endpoint(network, "a")
        b = _endpoint(network, "b")
        a.add_route(b.peer_id, b.address)
        a.send(b.peer_id, "proto", None, category="custom-cat")
        env.run(until=0.1)
        assert network.trace.sent_by_category["custom-cat"] == 1


class TestRelay:
    def test_send_via_intermediate(self, env, network):
        a = _endpoint(network, "a")
        relay = _endpoint(network, "r")
        b = _endpoint(network, "b")
        a.add_route(relay.peer_id, relay.address)
        relay.add_route(b.peer_id, b.address)
        got = []
        b.register_listener("x", lambda m: got.append((m.payload, m.relayed)))
        a.send_via(relay.peer_id, b.peer_id, "x", "through-relay")
        env.run(until=0.1)
        assert got == [("through-relay", True)]

    def test_nat_peer_reachable_through_relay(self, env, network):
        relay = _endpoint(network, "relay")
        public = _endpoint(network, "public")
        nat = _endpoint(network, "nat", nat=True)
        attach_nat_peer(nat, relay, [public])
        got = []
        nat.register_listener("x", lambda m: got.append(m.payload))
        public.send(nat.peer_id, "x", "hi-nat")
        env.run(until=0.1)
        assert got == ["hi-nat"]

    def test_nat_peer_sends_out_through_relay(self, env, network):
        relay = _endpoint(network, "relay")
        public = _endpoint(network, "public")
        nat = _endpoint(network, "nat", nat=True)
        attach_nat_peer(nat, relay, [public])
        got = []
        public.register_listener("x", lambda m: got.append(m.payload))
        nat.send(public.peer_id, "x", "from-nat")
        env.run(until=0.1)
        assert got == ["from-nat"]
        # Two hops: nat->relay and relay->public.
        assert network.trace.sent_total >= 2

    def test_configure_relay_wires_clients(self, env, network):
        relay = _endpoint(network, "relay")
        a = _endpoint(network, "a")
        b = _endpoint(network, "b")
        configure_relay(relay, [a, b])
        assert a.relay_peer == relay.peer_id
        assert relay.route_for(a.peer_id) == a.address

    def test_nat_without_relay_raises(self, env, network):
        a = _endpoint(network, "a")
        b = _endpoint(network, "b")
        a.add_route(b.peer_id, b.address, nat_isolated=True)
        with pytest.raises(UnresolvablePeerError):
            a.send(b.peer_id, "x", None)


class TestCrashRecovery:
    def test_endpoint_rebinds_after_restart(self, env, network):
        a = _endpoint(network, "a")
        b = _endpoint(network, "b")
        a.add_route(b.peer_id, b.address)
        b.node.crash()
        b.node.restart()
        got = []
        b.register_listener("x", lambda m: got.append(m.payload))
        a.send(b.peer_id, "x", "after-restart")
        env.run(until=0.1)
        assert got == ["after-restart"]
