"""Unit tests for the rendezvous service and resolver."""

import pytest

from repro.p2p import Peer, PeerAdvertisement


class TestLeases:
    def test_edges_obtain_leases(self, env, p2p):
        rendezvous, edges = p2p
        assert len(rendezvous.rendezvous.clients) == 4
        for edge in edges:
            assert edge.rendezvous.has_lease

    def test_leases_renew_over_time(self, env, p2p):
        rendezvous, edges = p2p
        lease_duration = edges[0].rendezvous.lease_duration
        env.run(until=env.now + lease_duration * 2)
        for edge in edges:
            assert edge.rendezvous.has_lease

    def test_crashed_edge_expires_from_client_list(self, env, p2p):
        rendezvous, edges = p2p
        edges[0].node.crash()
        lease_duration = edges[0].rendezvous.lease_duration
        env.run(until=env.now + lease_duration * 1.5)
        rendezvous.rendezvous._expire_clients()
        assert edges[0].peer_id not in rendezvous.rendezvous.clients


class TestPropagation:
    def test_propagate_reaches_all_edges(self, env, p2p):
        rendezvous, edges = p2p
        got = []
        for edge in edges:
            edge.rendezvous.register_propagate_listener(
                "app", lambda payload, origin, name=edge.name: got.append((name, payload))
            )
        edges[0].rendezvous.propagate("app", "broadcast")
        env.run(until=env.now + 0.2)
        receivers = sorted(name for name, _payload in got)
        assert receivers == ["edge0", "edge1", "edge2", "edge3"]

    def test_origin_gets_local_loopback_only_once(self, env, p2p):
        _rendezvous, edges = p2p
        got = []
        edges[0].rendezvous.register_propagate_listener(
            "app", lambda payload, origin: got.append(payload)
        )
        edges[0].rendezvous.propagate("app", "x")
        env.run(until=env.now + 0.2)
        assert got == ["x"]

    def test_rendezvous_can_propagate_too(self, env, p2p):
        rendezvous, edges = p2p
        got = []
        edges[1].rendezvous.register_propagate_listener(
            "app", lambda payload, origin: got.append(payload)
        )
        rendezvous.rendezvous.propagate("app", "from-rdv")
        env.run(until=env.now + 0.2)
        assert got == ["from-rdv"]


class TestSrdi:
    def test_publish_remote_lands_in_srdi(self, env, p2p):
        rendezvous, edges = p2p
        assert len(rendezvous.rendezvous.srdi) >= 4  # one peer adv per edge

    def test_srdi_lookup_filters(self, env, p2p):
        rendezvous, _edges = p2p
        matches = rendezvous.rendezvous.srdi_lookup(
            lambda adv: isinstance(adv, PeerAdvertisement) and adv.name == "edge2"
        )
        assert [adv.name for adv in matches] == ["edge2"]

    def test_crashed_edge_srdi_entries_dropped(self, env, p2p):
        rendezvous, edges = p2p
        edges[0].node.crash()
        lease = edges[0].rendezvous.lease_duration
        env.run(until=env.now + lease * 1.5)
        rendezvous.rendezvous._expire_clients()
        remaining = rendezvous.rendezvous.srdi_lookup(
            lambda adv: isinstance(adv, PeerAdvertisement) and adv.name == "edge0"
        )
        assert remaining == []


class TestResolver:
    def test_directed_query_and_response(self, env, p2p):
        _rendezvous, edges = p2p
        edges[1].resolver.register_handler("math", lambda q: q.payload * 2)
        answers = []
        edges[0].resolver.send_query(
            "math", 21, on_response=lambda r: answers.append(r.payload),
            dst_peer=edges[1].peer_id,
        )
        env.run(until=env.now + 0.2)
        assert answers == [42]

    def test_propagated_query_collects_multiple_answers(self, env, p2p):
        _rendezvous, edges = p2p
        for index, edge in enumerate(edges[1:], start=1):
            edge.resolver.register_handler("who", lambda q, i=index: f"edge{i}")
        answers = []
        edges[0].resolver.send_query(
            "who", None, on_response=lambda r: answers.append(r.payload)
        )
        env.run(until=env.now + 0.3)
        assert sorted(answers) == ["edge1", "edge2", "edge3"]

    def test_handler_returning_none_sends_nothing(self, env, p2p):
        _rendezvous, edges = p2p
        edges[1].resolver.register_handler("quiet", lambda q: None)
        answers = []
        edges[0].resolver.send_query(
            "quiet", None, on_response=lambda r: answers.append(r.payload),
            dst_peer=edges[1].peer_id,
        )
        env.run(until=env.now + 0.2)
        assert answers == []

    def test_cancel_query_stops_delivery(self, env, p2p):
        _rendezvous, edges = p2p

        def slow_handler(query):
            return "late-answer"

        edges[1].resolver.register_handler("slow", slow_handler)
        answers = []
        query_id = edges[0].resolver.send_query(
            "slow", None, on_response=lambda r: answers.append(r.payload),
            dst_peer=edges[1].peer_id,
        )
        edges[0].resolver.cancel_query(query_id)
        env.run(until=env.now + 0.2)
        assert answers == []

    def test_local_loopback_handler(self, env, p2p):
        _rendezvous, edges = p2p
        edges[0].resolver.register_handler("self", lambda q: "me")
        answers = []
        edges[0].resolver.send_query(
            "self", None, on_response=lambda r: answers.append(r.payload)
        )
        env.run(until=env.now + 0.2)
        assert "me" in answers
