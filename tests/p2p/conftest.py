"""Shared fixtures for P2P tests: a rendezvous plus attached edge peers."""

import pytest

from repro.p2p import Peer


@pytest.fixture
def p2p(env, network):
    """One rendezvous + 4 edges, attached, published, and settled."""
    rdv_node = network.add_host("rdv")
    rendezvous = Peer(rdv_node, is_rendezvous=True)
    rendezvous.publish_self(remote=False)
    edges = []
    for index in range(4):
        node = network.add_host(f"edge{index}")
        peer = Peer(node)
        peer.attach_to(rendezvous)
        peer.publish_self(remote=True)
        edges.append(peer)
    env.run(until=0.5)
    return rendezvous, edges
