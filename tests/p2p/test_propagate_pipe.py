"""Unit tests for propagate (one-to-many) pipes."""

import pytest

from repro.p2p import PipeAdvertisement, PipeBindError, PipeId


def _propagate_adv(name="events"):
    return PipeAdvertisement(
        pipe_id=PipeId.from_name(name), name=name,
        pipe_type=PipeAdvertisement.PROPAGATE,
    )


class TestPropagatePipe:
    def test_all_open_copies_receive(self, env, p2p):
        _rendezvous, edges = p2p
        advertisement = _propagate_adv()
        pipes = [edge.pipes.open_propagate_pipe(advertisement) for edge in edges[:3]]
        got = []

        def reader(pipe, name):
            datagram = yield pipe.recv()
            got.append((name, datagram.payload))

        for pipe, edge in zip(pipes, edges[:3]):
            edge.node.spawn(reader(pipe, edge.name))
        pipes[0].send({"event": "deploy"})
        env.run(until=env.now + 0.3)
        names = sorted(name for name, _payload in got)
        assert names == ["edge0", "edge1", "edge2"]
        assert all(payload == {"event": "deploy"} for _n, payload in got)

    def test_sender_also_receives_loopback(self, env, p2p):
        _rendezvous, edges = p2p
        advertisement = _propagate_adv("loopback")
        pipe = edges[0].pipes.open_propagate_pipe(advertisement)
        got = []

        def reader():
            datagram = yield pipe.recv()
            got.append(datagram.src_peer)

        edges[0].node.spawn(reader())
        pipe.send("self-event")
        env.run(until=env.now + 0.3)
        assert got == [edges[0].peer_id]

    def test_unopened_peers_do_not_receive(self, env, p2p):
        _rendezvous, edges = p2p
        advertisement = _propagate_adv("selective")
        sender = edges[0].pipes.open_propagate_pipe(advertisement)
        bystander_pipe = edges[3].pipes  # edge3 never opens the pipe
        sender.send("x")
        env.run(until=env.now + 0.3)
        assert bystander_pipe._propagate_pipes.get(advertisement.pipe_id) is None

    def test_closed_pipe_stops_receiving(self, env, p2p):
        _rendezvous, edges = p2p
        advertisement = _propagate_adv("closing")
        sender = edges[0].pipes.open_propagate_pipe(advertisement)
        receiver = edges[1].pipes.open_propagate_pipe(advertisement)
        receiver.close()
        sender.send("after-close")
        env.run(until=env.now + 0.3)
        assert len(receiver.inbox) == 0

    def test_wrong_type_rejected(self, env, p2p):
        _rendezvous, edges = p2p
        unicast = PipeAdvertisement(
            pipe_id=PipeId.from_name("u"), name="u",
            pipe_type=PipeAdvertisement.UNICAST,
        )
        with pytest.raises(ValueError):
            edges[0].pipes.open_propagate_pipe(unicast)

    def test_multiple_messages_all_arrive(self, env, p2p):
        _rendezvous, edges = p2p
        advertisement = _propagate_adv("stream")
        sender = edges[0].pipes.open_propagate_pipe(advertisement)
        receiver = edges[2].pipes.open_propagate_pipe(advertisement)
        got = []

        def reader():
            for _ in range(3):
                datagram = yield receiver.recv()
                got.append(datagram.payload)

        process = edges[2].node.spawn(reader())
        for index in range(3):
            sender.send(index)
        env.run(until=process)
        assert sorted(got) == [0, 1, 2]
