"""Unit tests for the discovery service."""

import pytest

from repro.p2p import (
    PeerAdvertisement,
    PeerGroupAdvertisement,
    PeerGroupId,
    SemanticAdvertisement,
)


def _group_adv(name):
    return PeerGroupAdvertisement(group_id=PeerGroupId.from_name(name), name=name)


def _semantic_adv(name, action):
    return SemanticAdvertisement(
        group_id=PeerGroupId.from_name(name), name=name, action=action,
        inputs=("http://o#In",), outputs=("http://o#Out",),
    )


def _remote(env, peer, **kwargs):
    found = {}

    def searcher():
        found["advs"] = yield from peer.discovery.get_remote_advertisements(**kwargs)

    env.run(until=peer.node.spawn(searcher()))
    return found["advs"]


class TestLocal:
    def test_publish_then_local_query(self, env, p2p):
        _rendezvous, edges = p2p
        edges[0].discovery.publish(_group_adv("g1"))
        results = edges[0].discovery.get_local_advertisements(PeerGroupAdvertisement)
        assert [a.name for a in results] == ["g1"]

    def test_local_query_by_attribute(self, env, p2p):
        _rendezvous, edges = p2p
        edges[0].discovery.publish(_semantic_adv("s1", "http://o#ActA"))
        edges[0].discovery.publish(_semantic_adv("s2", "http://o#ActB"))
        results = edges[0].discovery.get_local_advertisements(
            SemanticAdvertisement, "Action", "http://o#ActA"
        )
        assert [a.name for a in results] == ["s1"]

    def test_flush_removes(self, env, p2p):
        _rendezvous, edges = p2p
        advertisement = _group_adv("g1")
        edges[0].discovery.publish(advertisement)
        edges[0].discovery.flush(advertisement)
        assert edges[0].discovery.get_local_advertisements(PeerGroupAdvertisement) == []


class TestRemote:
    def test_finds_advertisements_on_other_peers(self, env, p2p):
        _rendezvous, edges = p2p
        edges[3].discovery.publish(_group_adv("remote-group"))
        found = _remote(env, edges[0], adv_type=PeerGroupAdvertisement, timeout=0.5)
        assert "remote-group" in [a.name for a in found]

    def test_found_advertisements_cached_locally(self, env, p2p):
        _rendezvous, edges = p2p
        edges[3].discovery.publish(_group_adv("cached-group"))
        _remote(env, edges[0], adv_type=PeerGroupAdvertisement, timeout=0.5)
        local = edges[0].discovery.get_local_advertisements(PeerGroupAdvertisement)
        assert "cached-group" in [a.name for a in local]

    def test_finds_srdi_indexed_advertisements(self, env, p2p):
        """An advertisement published remote lands in the rendezvous SRDI;
        a querying peer finds it even if the publisher is silent."""
        _rendezvous, edges = p2p
        edges[2].discovery.publish(_semantic_adv("srdi-group", "http://o#A"), remote=True)
        env.run(until=env.now + 0.1)  # let the SRDI push land
        edges[2].node.crash()  # publisher gone; only SRDI has it
        found = _remote(env, edges[0], adv_type=SemanticAdvertisement, timeout=0.5)
        assert "srdi-group" in [a.name for a in found]

    def test_threshold_returns_early(self, env, p2p):
        _rendezvous, edges = p2p
        edges[1].discovery.publish(_group_adv("early"))
        start = env.now
        found = _remote(
            env, edges[0], adv_type=PeerGroupAdvertisement, timeout=5.0, threshold=1
        )
        assert found
        assert env.now - start < 1.0  # did not wait the full timeout

    def test_no_match_waits_timeout_and_returns_empty(self, env, p2p):
        _rendezvous, edges = p2p
        start = env.now
        found = _remote(
            env, edges[0], adv_type=PeerGroupAdvertisement,
            attribute="Name", value="ghost", timeout=0.4,
        )
        assert found == []
        assert env.now - start >= 0.4

    def test_attribute_filter_applies_remotely(self, env, p2p):
        _rendezvous, edges = p2p
        edges[1].discovery.publish(_semantic_adv("m1", "http://o#Wanted"))
        edges[2].discovery.publish(_semantic_adv("m2", "http://o#Other"))
        found = _remote(
            env, edges[0], adv_type=SemanticAdvertisement,
            attribute="Action", value="http://o#Wanted", timeout=0.5,
        )
        assert [a.name for a in found] == ["m1"]

    def test_duplicate_responses_deduplicated(self, env, p2p):
        _rendezvous, edges = p2p
        advertisement = _group_adv("dup")
        for edge in edges[1:]:
            edge.discovery.publish(advertisement)
        found = _remote(env, edges[0], adv_type=PeerGroupAdvertisement, timeout=0.5)
        assert [a.name for a in found].count("dup") == 1
