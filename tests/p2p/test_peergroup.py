"""Unit tests for group membership and group messaging."""

import pytest

from repro.p2p import PeerGroupId
from repro.p2p.peergroup import ANNOUNCE_PERIOD

GID = PeerGroupId.from_name("test-group")


class TestMembership:
    def test_join_makes_member(self, env, p2p):
        _rendezvous, edges = p2p
        edges[0].groups.join(GID, "test-group")
        assert edges[0].groups.is_member(GID)
        assert edges[0].peer_id in edges[0].groups.members(GID)

    def test_membership_converges_across_members(self, env, p2p):
        _rendezvous, edges = p2p
        for edge in edges:
            edge.groups.join(GID, "test-group")
        env.run(until=env.now + 1.0)
        for edge in edges:
            assert len(edge.groups.members(GID)) == 4

    def test_nonmembers_do_not_track_membership(self, env, p2p):
        _rendezvous, edges = p2p
        edges[0].groups.join(GID, "test-group")
        edges[1].groups.join(GID, "test-group")
        env.run(until=env.now + 1.0)
        assert edges[3].groups.members(GID) == set()

    def test_late_joiner_converges_via_roster(self, env, p2p):
        _rendezvous, edges = p2p
        for edge in edges[:3]:
            edge.groups.join(GID, "test-group")
        env.run(until=env.now + 1.0)
        edges[3].groups.join(GID, "test-group")
        env.run(until=env.now + ANNOUNCE_PERIOD + 1.0)
        assert len(edges[3].groups.members(GID)) == 4
        for edge in edges[:3]:
            assert edges[3].peer_id in edge.groups.members(GID)

    def test_leave_propagates(self, env, p2p):
        _rendezvous, edges = p2p
        for edge in edges[:3]:
            edge.groups.join(GID, "test-group")
        env.run(until=env.now + 1.0)
        edges[2].groups.leave(GID)
        env.run(until=env.now + 1.0)
        assert not edges[2].groups.is_member(GID)
        assert edges[2].peer_id not in edges[0].groups.members(GID)

    def test_remove_member_is_local(self, env, p2p):
        _rendezvous, edges = p2p
        for edge in edges[:2]:
            edge.groups.join(GID, "test-group")
        env.run(until=env.now + 1.0)
        edges[0].groups.remove_member(GID, edges[1].peer_id)
        assert edges[1].peer_id not in edges[0].groups.members(GID)
        assert edges[1].groups.is_member(GID)  # other views untouched

    def test_membership_change_listener(self, env, p2p):
        _rendezvous, edges = p2p
        changes = []
        edges[0].groups.on_membership_change(
            lambda gid, pid, change: changes.append((change, pid))
        )
        edges[0].groups.join(GID, "test-group")
        edges[1].groups.join(GID, "test-group")
        env.run(until=env.now + 1.0)
        assert ("joined", edges[1].peer_id) in changes

    def test_crashed_member_purged_from_registry_roster(self, env, p2p):
        rendezvous, edges = p2p
        for edge in edges[:3]:
            edge.groups.join(GID, "test-group")
        env.run(until=env.now + 1.0)
        edges[1].node.crash()
        # After the renewal grace expires, the roster no longer lists it.
        env.run(until=env.now + ANNOUNCE_PERIOD * 3.5)
        registry = rendezvous.groups._registry.get(GID, {})
        now = env.now
        alive = [p for p, (_a, expiry) in registry.items() if expiry > now]
        assert edges[1].peer_id not in alive


class TestGroupMessaging:
    def test_send_to_member(self, env, p2p):
        _rendezvous, edges = p2p
        for edge in edges[:2]:
            edge.groups.join(GID, "test-group")
        env.run(until=env.now + 1.0)
        got = []
        edges[1].groups.register_group_listener(
            "app", lambda payload, src, gid: got.append((payload, src))
        )
        edges[0].groups.send_to_member(GID, edges[1].peer_id, "app", "direct")
        env.run(until=env.now + 0.2)
        assert got == [("direct", edges[0].peer_id)]

    def test_propagate_to_group_reaches_members_only(self, env, p2p):
        _rendezvous, edges = p2p
        for edge in edges[:3]:
            edge.groups.join(GID, "test-group")
        env.run(until=env.now + 1.0)
        got = []
        for edge in edges:
            edge.groups.register_group_listener(
                "app", lambda payload, src, gid, name=edge.name: got.append(name)
            )
        sent = edges[0].groups.propagate_to_group(GID, "app", "hello")
        env.run(until=env.now + 0.2)
        assert sent == 2
        assert sorted(got) == ["edge0", "edge1", "edge2"]  # includes self loopback

    def test_propagate_exclude_self(self, env, p2p):
        _rendezvous, edges = p2p
        for edge in edges[:2]:
            edge.groups.join(GID, "test-group")
        env.run(until=env.now + 1.0)
        got = []
        edges[0].groups.register_group_listener(
            "app", lambda payload, src, gid: got.append("self")
        )
        edges[0].groups.propagate_to_group(GID, "app", "x", include_self=False)
        env.run(until=env.now + 0.2)
        assert got == []

    def test_messages_scoped_by_group_id(self, env, p2p):
        _rendezvous, edges = p2p
        other = PeerGroupId.from_name("other-group")
        edges[0].groups.join(GID, "test-group")
        edges[1].groups.join(GID, "test-group")
        env.run(until=env.now + 1.0)
        got = []
        edges[1].groups.register_group_listener(
            "app", lambda payload, src, gid: got.append(gid)
        )
        edges[0].groups.send_to_member(GID, edges[1].peer_id, "app", "x")
        env.run(until=env.now + 0.2)
        assert got == [GID]
