"""Unit tests for the advertisement cache."""

import pytest

from repro.p2p import (
    AdvertisementCache,
    PeerAdvertisement,
    PeerGroupAdvertisement,
    PeerGroupId,
    PeerId,
)


@pytest.fixture
def clock():
    state = {"now": 0.0}
    return state


@pytest.fixture
def cache(clock):
    return AdvertisementCache(clock=lambda: clock["now"])


def _peer_adv(name, host="h", port=1):
    return PeerAdvertisement(peer_id=PeerId.from_name(name), name=name, host=host, port=port)


def _group_adv(name):
    return PeerGroupAdvertisement(group_id=PeerGroupId.from_name(name), name=name)


class TestPublish:
    def test_publish_and_get(self, cache):
        advertisement = _peer_adv("p1")
        cache.publish(advertisement)
        assert cache.get(advertisement.key()) is advertisement
        assert len(cache) == 1

    def test_republish_replaces(self, cache):
        cache.publish(_peer_adv("p1", host="old"))
        updated = _peer_adv("p1", host="new")
        cache.publish(updated)
        assert len(cache) == 1
        assert cache.get(updated.key()).host == "new"

    def test_remove(self, cache):
        advertisement = _peer_adv("p1")
        cache.publish(advertisement)
        assert cache.remove(advertisement.key())
        assert not cache.remove(advertisement.key())
        assert cache.get(advertisement.key()) is None

    def test_clear(self, cache):
        cache.publish(_peer_adv("p1"))
        cache.clear()
        assert len(cache) == 0


class TestExpiry:
    def test_expires_after_lifetime(self, cache, clock):
        advertisement = _peer_adv("p1")
        cache.publish(advertisement, lifetime=10.0)
        clock["now"] = 9.9
        assert cache.get(advertisement.key()) is not None
        clock["now"] = 10.1
        assert cache.get(advertisement.key()) is None
        assert len(cache) == 0

    def test_republish_extends_lifetime(self, cache, clock):
        advertisement = _peer_adv("p1")
        cache.publish(advertisement, lifetime=10.0)
        clock["now"] = 8.0
        cache.publish(advertisement, lifetime=10.0)
        clock["now"] = 15.0
        assert cache.get(advertisement.key()) is not None

    def test_query_skips_expired(self, cache, clock):
        cache.publish(_peer_adv("p1"), lifetime=5.0)
        cache.publish(_peer_adv("p2"), lifetime=50.0)
        clock["now"] = 10.0
        names = [a.name for a in cache.query(PeerAdvertisement)]
        assert names == ["p2"]


class TestQuery:
    def test_query_by_type(self, cache):
        cache.publish(_peer_adv("p1"))
        cache.publish(_group_adv("g1"))
        assert len(cache.query(PeerAdvertisement)) == 1
        assert len(cache.query(PeerGroupAdvertisement)) == 1
        assert len(cache.query()) == 2

    def test_query_by_attribute_value(self, cache):
        cache.publish(_peer_adv("alice"))
        cache.publish(_peer_adv("bob"))
        results = cache.query(PeerAdvertisement, "Name", "alice")
        assert [a.name for a in results] == ["alice"]

    def test_query_wildcard_prefix(self, cache):
        for name in ("alpha1", "alpha2", "beta"):
            cache.publish(_peer_adv(name))
        results = cache.query(PeerAdvertisement, "Name", "alpha*")
        assert sorted(a.name for a in results) == ["alpha1", "alpha2"]

    def test_query_attribute_without_value_requires_presence(self, cache):
        cache.publish(_peer_adv("p1"))
        assert len(cache.query(attribute="Name")) == 1
        assert len(cache.query(attribute="Nonexistent")) == 0

    def test_query_results_deterministic_order(self, cache):
        for name in ("c", "a", "b"):
            cache.publish(_peer_adv(name))
        first = [a.key() for a in cache.query()]
        second = [a.key() for a in cache.query()]
        assert first == second


class TestMetrics:
    @pytest.fixture
    def metrics(self):
        from repro.obs import Observability

        return Observability(enabled=True).metrics

    @pytest.fixture
    def cache(self, clock, metrics):
        return AdvertisementCache(clock=lambda: clock["now"], metrics=metrics)

    def _counter(self, metrics, name):
        counter = metrics.counters.get(name)
        return counter.value if counter is not None else 0

    def test_get_hit_and_expiry_counted(self, cache, clock, metrics):
        advertisement = _peer_adv("p1")
        cache.publish(advertisement, lifetime=10.0)
        assert cache.get(advertisement.key()) is not None
        assert self._counter(metrics, "discovery.cache_hit") == 1
        clock["now"] = 11.0
        assert cache.get(advertisement.key()) is None
        assert self._counter(metrics, "discovery.cache_expired") == 1
        assert self._counter(metrics, "discovery.cache_hit") == 1

    def test_query_counts_one_hit_per_lookup_and_purges(self, cache, clock, metrics):
        """One query is one lookup: a single hit no matter how many
        advertisements match (parity with ``get``)."""
        cache.publish(_peer_adv("p1"), lifetime=5.0)
        cache.publish(_peer_adv("p2"), lifetime=50.0)
        cache.publish(_peer_adv("p3"), lifetime=50.0)
        clock["now"] = 10.0
        results = cache.query(PeerAdvertisement)
        assert len(results) == 2
        assert self._counter(metrics, "discovery.cache_hit") == 1
        assert self._counter(metrics, "discovery.cache_expired") == 1

    def test_query_with_no_matches_counts_a_miss(self, cache, metrics):
        cache.publish(_peer_adv("p1"))
        assert cache.query(PeerAdvertisement, "Name", "ghost") == []
        assert self._counter(metrics, "discovery.cache_hit") == 0
        assert self._counter(metrics, "discovery.cache_miss") == 1

    def test_get_miss_counts_a_miss(self, cache, metrics):
        assert cache.get("ghost") is None
        assert self._counter(metrics, "discovery.cache_hit") == 0
        assert self._counter(metrics, "discovery.cache_miss") == 1
        assert self._counter(metrics, "discovery.cache_expired") == 0

    def test_get_expired_counts_expired_and_miss(self, cache, clock, metrics):
        advertisement = _peer_adv("p1")
        cache.publish(advertisement, lifetime=5.0)
        clock["now"] = 10.0
        assert cache.get(advertisement.key()) is None
        assert self._counter(metrics, "discovery.cache_expired") == 1
        assert self._counter(metrics, "discovery.cache_miss") == 1
        assert self._counter(metrics, "discovery.cache_hit") == 0

    def test_clear_accounts_expired_and_flushed(self, cache, clock, metrics):
        cache.publish(_peer_adv("p1"), lifetime=5.0)
        cache.publish(_peer_adv("p2"), lifetime=50.0)
        cache.publish(_peer_adv("p3"), lifetime=50.0)
        clock["now"] = 10.0
        cache.clear()
        assert len(cache) == 0
        assert self._counter(metrics, "discovery.cache_expired") == 1
        assert self._counter(metrics, "discovery.cache_flushed") == 2

    def test_cache_without_metrics_still_works(self, clock):
        bare = AdvertisementCache(clock=lambda: clock["now"])
        advertisement = _peer_adv("p1")
        bare.publish(advertisement, lifetime=1.0)
        assert bare.get(advertisement.key()) is not None
        clock["now"] = 2.0
        assert bare.get(advertisement.key()) is None
