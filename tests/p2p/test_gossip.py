"""Cross-region gossip discovery: convergence, suppression, flood baseline."""

import pytest

from repro.bench.wan import FLOOD_CATEGORIES, GOSSIP_CATEGORIES, build_wan_system


def _settle(system, seconds=12.0):
    system.settle(seconds)


def _cross_region_sent(system, categories):
    return sum(
        system.trace.sent_by_category.get(category, 0) for category in categories
    )


class TestGossipConvergence:
    def test_every_region_learns_every_advertisement(self):
        system, _service = build_wan_system(regions=3, replicas=1)
        _settle(system)
        key_sets = [frozenset(g.entries) for g in system.gossip.values()]
        assert len(key_sets) == 3
        assert len(set(key_sets)) == 1, "regions disagree on the SRDI key set"
        assert len(key_sets[0]) > 0

    def test_seen_at_records_first_application_times(self):
        system, _service = build_wan_system(regions=2, replicas=1)
        _settle(system)
        for gossip in system.gossip.values():
            assert set(gossip.seen_at) == set(gossip.entries)
            assert all(t >= 0.0 for t in gossip.seen_at.values())

    def test_refresh_republishes_are_suppressed(self):
        # REPUBLISH_PERIOD refreshes carry identical content; gossip must
        # not re-rumor them (that is where the economy win comes from).
        system, _service = build_wan_system(regions=2, replicas=1)
        _settle(system, 25.0)
        suppressed = sum(g.stats.refreshes_suppressed for g in system.gossip.values())
        assert suppressed > 0

    def test_higher_fanout_sends_more_rumors(self):
        slow, _ = build_wan_system(regions=4, replicas=1, fanout=1)
        _settle(slow)
        fast, _ = build_wan_system(regions=4, replicas=1, fanout=3)
        _settle(fast)
        rumors_slow = sum(g.stats.rumors_sent for g in slow.gossip.values())
        rumors_fast = sum(g.stats.rumors_sent for g in fast.gossip.values())
        assert rumors_fast > rumors_slow


class TestFloodBaseline:
    def test_flood_mode_forwards_every_push(self):
        system, _service = build_wan_system(regions=3, replicas=1, mode="flood")
        _settle(system)
        assert _cross_region_sent(system, FLOOD_CATEGORIES) > 0
        assert all(g.mode == "flood" for g in system.gossip.values())
        # Flood still converges — it is the correctness baseline.
        key_sets = [frozenset(g.entries) for g in system.gossip.values()]
        assert len(set(key_sets)) == 1

    def test_gossip_beats_flood_in_steady_state(self):
        """The headline economy claim at >= 3 regions (also gated by the
        wan bench): with refresh traffic flowing, gossip's digest cost is
        strictly below flood's per-push forwarding."""
        window = 30.0
        counts = {}
        for mode, categories in (
            ("gossip", GOSSIP_CATEGORIES),
            ("flood", FLOOD_CATEGORIES),
        ):
            system, _service = build_wan_system(
                regions=3, replicas=2, mode=mode
            )
            _settle(system, 20.0)
            before = _cross_region_sent(system, categories)
            system.run_until(system.env.now + window)
            counts[mode] = _cross_region_sent(system, categories) - before
        assert counts["gossip"] < counts["flood"]
