"""Fault ops and schedules: validation, JSON round-trips, sampling."""

import random

import pytest

from repro.check import FaultOp, Schedule, random_schedule
from repro.check.schedule import ACTIONS

HOSTS = ("bpeer0", "bpeer1", "bpeer2")


class TestFaultOpValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultOp(at_decision=1, action="meteor-strike")

    def test_drop_must_target_a_network_point(self):
        with pytest.raises(ValueError):
            FaultOp(at_decision=1, action="drop", point="pre-commit")
        with pytest.raises(ValueError):
            FaultOp(at_decision=1, action="drop")  # "any" includes pre-commit

    def test_decisions_count_from_one(self):
        with pytest.raises(ValueError):
            FaultOp(at_decision=0, action="crash", target="bpeer0")

    def test_duration_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultOp(at_decision=1, action="crash", target="bpeer0", duration=0.0)


class TestRoundTrip:
    def test_fault_op_round_trips(self):
        op = FaultOp(
            at_decision=17, action="drop", point="pre-deliver", duration=2.5
        )
        assert FaultOp.from_dict(op.to_dict()) == op

    def test_schedule_round_trips(self):
        schedule = Schedule(
            tiebreak={"kind": "shuffle", "seed": 99},
            ops=(
                FaultOp(at_decision=3, action="crash-coordinator", duration=4.0),
                FaultOp(at_decision=9, action="partition", target="bpeer1"),
            ),
            label="round-trip",
        )
        assert Schedule.from_dict(schedule.to_dict()) == schedule

    def test_baseline_detection(self):
        assert Schedule().is_baseline
        assert Schedule(tiebreak={"kind": "fifo"}).is_baseline
        assert not Schedule(tiebreak={"kind": "shuffle", "seed": 1}).is_baseline
        assert not Schedule(
            ops=(FaultOp(at_decision=1, action="crash", target="h"),)
        ).is_baseline

    def test_without_ops_drops_by_index(self):
        ops = tuple(
            FaultOp(at_decision=i, action="crash", target="h") for i in (1, 2, 3)
        )
        schedule = Schedule(ops=ops)
        kept = schedule.without_ops([1])
        assert kept.ops == (ops[0], ops[2])
        assert kept.tiebreak == schedule.tiebreak


class TestRandomSchedule:
    def test_deterministic_per_rng_seed(self):
        draw = lambda: random_schedule(  # noqa: E731 - local shorthand
            random.Random("schedule-test"), HOSTS, decision_horizon=400
        )
        assert draw() == draw()

    def test_samples_are_well_formed(self):
        rng = random.Random(5)
        horizon = 400
        window = (horizon * 3) // 4
        for index in range(200):
            schedule = random_schedule(rng, HOSTS, horizon, label=f"s{index}")
            assert 1 <= len(schedule.ops) <= 4
            decisions = [op.at_decision for op in schedule.ops]
            assert decisions == sorted(decisions)
            for op in schedule.ops:
                assert op.action in ACTIONS
                assert 1 <= op.at_decision <= window
                if op.action in ("crash", "partition"):
                    assert op.target in HOSTS
                else:
                    assert op.target is None

    def test_tiny_horizon_rejected(self):
        with pytest.raises(ValueError):
            random_schedule(random.Random(1), HOSTS, decision_horizon=3)
