"""The stateful registry: epoch monotonicity as a trajectory property."""

from types import SimpleNamespace

from repro.check import InvariantRegistry
from repro.election import Epoch


def _service(epoch):
    peer = SimpleNamespace(
        name="p0",
        peer_id=SimpleNamespace(uuid_hex="aa"),
        coordinator_mgr=SimpleNamespace(
            epoch=epoch,
            elector=SimpleNamespace(announced=[]),
            is_coordinator=False,
        ),
        node=SimpleNamespace(up=True),
        implementation=SimpleNamespace(backend=None),
    )
    peer._member_load = {}
    group = SimpleNamespace(name="g0", peers=[peer])
    return SimpleNamespace(
        group=group,
        all_peers=lambda: [peer],
        all_groups=lambda: [group],
        proxy=SimpleNamespace(result_epoch_log=[]),
    )


class TestAcceptedEpochCursor:
    def test_advancing_epochs_pass(self):
        registry = InvariantRegistry(dedup_journal=False)
        assert registry.check_step(_service(Epoch(1, "aa"))) == []
        assert registry.check_step(_service(Epoch(2, "bb"))) == []

    def test_regression_caught_even_if_it_self_corrects(self):
        """The cursor sees the dip a final-state audit would miss."""
        registry = InvariantRegistry(dedup_journal=False)
        assert registry.check_step(_service(Epoch(3, "aa"))) == []
        violations = registry.check_step(_service(Epoch(1, "bb")))
        assert violations and "regressed" in violations[0]
        # A later recovery to a fresh term is clean again.
        assert registry.check_step(_service(Epoch(4, "cc"))) == []

    def test_fresh_registry_has_no_history(self):
        """Per-run state: a new registry accepts any starting epoch."""
        first = InvariantRegistry(dedup_journal=False)
        first.check_step(_service(Epoch(9, "aa")))
        second = InvariantRegistry(dedup_journal=False)
        assert second.check_step(_service(Epoch(1, "bb"))) == []
