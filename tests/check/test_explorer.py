"""The explorer end to end: runs, injection, repro files, self-test.

These tests drive real (small) simulated deployments, so they are the
slowest in the package — each ``run_schedule`` is a full
settle/probe/cooldown scenario.  The scenarios stay at the
:class:`CheckScenario` defaults (3 replicas, 12s probe window) to keep
them cheap.
"""

import pytest

from repro.check import (
    CheckScenario,
    FaultOp,
    Schedule,
    ScheduleExplorer,
    load_repro,
    replay_repro,
    run_schedule,
    self_test,
)
from repro.check.explorer import save_repro


@pytest.fixture(scope="module")
def baseline():
    """One shared clean baseline run (module-scoped: it is pure)."""
    return run_schedule(CheckScenario(), Schedule(label="baseline"))


class TestRunSchedule:
    def test_baseline_is_clean_and_productive(self, baseline):
        assert baseline.violations == []
        assert baseline.probes_ok > 0
        assert baseline.probes_failed == 0
        assert baseline.decisions > 100  # enough room to aim faults
        assert baseline.effects_applied > 0
        assert baseline.hosts  # the watched replica hosts

    def test_runs_are_deterministic(self, baseline):
        again = run_schedule(CheckScenario(), Schedule(label="baseline"))
        assert again.digest() == baseline.digest()

    def test_injected_fault_fires_and_recovers(self, baseline):
        schedule = Schedule(
            ops=(
                FaultOp(
                    at_decision=baseline.decisions // 4,
                    action="crash-coordinator",
                    duration=3.0,
                ),
            ),
            label="one-crash",
        )
        result = run_schedule(CheckScenario(), schedule)
        assert len(result.fired) == 1
        assert result.fired[0]["victim"] in baseline.hosts
        assert result.violations == []  # fencing on: the crash is survivable

    def test_drop_op_fires_at_a_network_point(self, baseline):
        schedule = Schedule(
            ops=(
                FaultOp(
                    at_decision=baseline.decisions // 3,
                    action="drop",
                    point="pre-deliver",
                ),
            ),
            label="one-drop",
        )
        result = run_schedule(CheckScenario(), schedule)
        assert len(result.fired) == 1
        assert result.fired[0]["victim"] == "<message>"
        assert result.violations == []


class TestReproFiles:
    def test_save_load_replay_round_trip(self, tmp_path, baseline):
        path = str(tmp_path / "repro.json")
        schedule = Schedule(
            tiebreak={"kind": "shuffle", "seed": 17}, label="round-trip"
        )
        result = run_schedule(CheckScenario(), schedule)
        save_repro(path, CheckScenario(), schedule, result)
        loaded_scenario, loaded_schedule, expected = load_repro(path)
        assert loaded_scenario == CheckScenario()
        assert loaded_schedule == schedule
        assert expected["digest"] == result.digest()
        ok, replayed, _expected = replay_repro(path)
        assert ok
        assert replayed.digest() == result.digest()

    def test_replay_detects_scenario_drift(self, tmp_path, baseline):
        """A doctored repro file must *fail* replay, not silently pass."""
        path = str(tmp_path / "repro.json")
        schedule = Schedule(label="drift")
        result = run_schedule(CheckScenario(), schedule)
        save_repro(path, CheckScenario(), schedule, result)
        import json

        with open(path) as handle:
            data = json.load(handle)
        data["scenario"]["seed"] = CheckScenario().seed + 1
        with open(path, "w") as handle:
            json.dump(data, handle)
        ok, _replayed, _expected = replay_repro(path)
        assert not ok


class TestExplorer:
    def test_small_exploration_is_clean(self):
        report = ScheduleExplorer(
            CheckScenario(), seeds=range(1), schedules_per_seed=2
        ).explore()
        assert report.clean
        assert report.runs == 3  # baseline + two schedules
        assert "all hold" in report.format()

    def test_wall_clock_budget_truncates(self):
        report = ScheduleExplorer(
            CheckScenario(),
            seeds=range(3),
            schedules_per_seed=50,
            time_budget=0.0,
        ).explore()
        assert report.truncated
        assert report.clean


class TestSelfTest:
    def test_fencing_off_violation_is_found_shrunk_and_replayed(self, tmp_path):
        """The checker's own teeth: disable epoch fencing and demand the
        harness produce a confirmed, minimal, replayable counterexample."""
        path = str(tmp_path / "self-test-repro.json")
        outcome = self_test(repro_path=path)
        assert outcome["ok"], outcome
        assert outcome["violations"]
        assert outcome["replay_ok"]
        # The shrunk schedule must still violate, and the repro file must
        # declare the fencing-off scenario it ran under.
        assert outcome["shrunk_violations"]
        scenario, schedule, _expected = load_repro(path)
        assert scenario.epoch_fencing is False
        assert schedule.ops  # a schedule-induced violation, not baseline
