"""Tests for the saga atomicity checker: runs, crashes, repro replay."""

from repro.check import (
    FaultOp,
    SagaCheckScenario,
    Schedule,
    explore_saga_schedules,
    replay_saga_repro,
    run_saga_schedule,
    saga_self_test,
)
from repro.check.saga import ORCHESTRATOR_HOST

SMALL = SagaCheckScenario(seed=3, sagas=6, cooldown=8.0)


def test_baseline_run_is_clean_and_compensates_insolvent():
    result = run_saga_schedule(SMALL, Schedule(label="baseline"))
    assert result.violations == []
    assert result.submitted == 6
    # Sagas 0 and 4 are the insolvent submissions (every 4th).
    assert result.committed == 4
    assert result.compensated == 2
    assert result.saga_states["loan-0000"] == "compensated"
    assert result.saga_states["loan-0001"] == "committed"


def test_orchestrator_crash_recovers_without_violation():
    baseline = run_saga_schedule(SMALL, Schedule(label="baseline"))
    schedule = Schedule(
        ops=(
            FaultOp(
                at_decision=max(1, baseline.decisions // 4),
                action="crash",
                target=ORCHESTRATOR_HOST,
                duration=3.0,
                point="pre-commit",
            ),
        ),
        label="crash-orchestrator",
    )
    result = run_saga_schedule(SMALL, schedule)
    assert result.violations == []
    assert result.fired, "the crash op never fired"
    assert result.recoveries >= 1
    # Every saga still reaches a terminal state.
    assert set(result.saga_states.values()) <= {"committed", "compensated"}


def test_run_digest_is_deterministic():
    first = run_saga_schedule(SMALL, Schedule(label="digest"))
    second = run_saga_schedule(SMALL, Schedule(label="digest"))
    assert first.digest() == second.digest()


def test_self_test_catches_shrinks_and_replays(tmp_path):
    repro_path = str(tmp_path / "saga-repro.json")
    outcome = saga_self_test(seed=42, repro_path=repro_path)
    assert outcome["ok"], outcome
    assert outcome["replay_ok"]
    assert any("stranded" in v for v in outcome["violations"])
    ok, result, expected = replay_saga_repro(repro_path)
    assert ok
    assert result.digest() == expected["digest"]


def test_explore_saga_schedules_clean_on_small_budget():
    report = explore_saga_schedules(
        scenario=SMALL, seeds=(3,), schedules_per_seed=2
    )
    assert report["clean"], report
    assert report["runs"] == 3
