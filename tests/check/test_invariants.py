"""The invariant audit functions, exercised on hand-built states.

The functions take live system objects but only touch a narrow surface
(peer name/id, elector announcement log, backend ledgers, admission
ledger, node liveness), so small shims can present exactly the state
each violation needs — including states the real protocol (hopefully)
never reaches.
"""

from types import SimpleNamespace

from repro.check import (
    announced_epoch_violations,
    convergence_violations,
    exactly_once_violations,
    queue_bound_violations,
    stale_result_violations,
)
from repro.election import Epoch


def _peer(name, owner_hex, announced, *, up=True, claims=False, backend=None,
          member_load=None):
    shim = SimpleNamespace(
        name=name,
        peer_id=SimpleNamespace(uuid_hex=owner_hex),
        coordinator_mgr=SimpleNamespace(
            elector=SimpleNamespace(announced=list(announced)),
            is_coordinator=claims,
        ),
        node=SimpleNamespace(up=up),
        implementation=SimpleNamespace(backend=backend),
    )
    shim._member_load = member_load or {}
    return shim


class _Backend:
    def __init__(self, counts):
        self._counts = dict(counts)

    def effect_counts(self):
        return dict(self._counts)


class TestElectionSafety:
    def test_clean_log_passes(self):
        peers = [
            _peer("p0", "aa", [(1.0, Epoch(1, "aa")), (5.0, Epoch(3, "aa"))]),
            _peer("p1", "bb", [(3.0, Epoch(2, "bb"))]),
        ]
        assert announced_epoch_violations(peers) == []

    def test_unowned_epoch_flagged(self):
        peers = [_peer("p0", "aa", [(1.0, Epoch(1, "bb"))])]
        violations = announced_epoch_violations(peers)
        assert len(violations) == 1
        assert "does not own" in violations[0]

    def test_non_increasing_announcements_flagged(self):
        peers = [
            _peer("p0", "aa", [(1.0, Epoch(2, "aa")), (2.0, Epoch(1, "aa"))]),
        ]
        violations = announced_epoch_violations(peers)
        assert any("not increasing" in v for v in violations)

    def test_same_epoch_twice_by_one_peer_flagged(self):
        """Re-announcing an identical term is not 'strictly increasing'."""
        peers = [
            _peer("p0", "aa", [(1.0, Epoch(2, "aa")), (2.0, Epoch(2, "aa"))]),
        ]
        assert announced_epoch_violations(peers)


class TestStaleResults:
    def test_monotone_deliveries_pass(self):
        proxy = SimpleNamespace(result_epoch_log=[
            ("g", Epoch(1, "aa")), ("g", Epoch(1, "aa")), ("g", Epoch(2, "bb")),
        ])
        assert stale_result_violations(proxy) == []

    def test_regression_flagged(self):
        proxy = SimpleNamespace(result_epoch_log=[
            ("g", Epoch(2, "bb")), ("g", Epoch(1, "aa")),
        ])
        violations = stale_result_violations(proxy)
        assert len(violations) == 1
        assert "after" in violations[0]

    def test_groups_are_independent(self):
        proxy = SimpleNamespace(result_epoch_log=[
            ("g1", Epoch(2, "bb")), ("g2", Epoch(1, "aa")),
        ])
        assert stale_result_violations(proxy) == []


class TestExactlyOnce:
    def test_duplicate_application_flagged(self):
        backend = _Backend({"inv-1": 1, "inv-2": 2})
        peers = [_peer("p0", "aa", [], backend=backend)]
        violations = exactly_once_violations(peers)
        assert violations == [
            "invocation inv-2 applied 2 times (exactly-once violated)"
        ]

    def test_shared_backend_not_double_counted(self):
        """Replicas sharing one store must not look like duplicates."""
        backend = _Backend({"inv-1": 1})
        peers = [
            _peer("p0", "aa", [], backend=backend),
            _peer("p1", "bb", [], backend=backend),
        ]
        assert exactly_once_violations(peers) == []

    def test_distinct_backends_summed(self):
        peers = [
            _peer("p0", "aa", [], backend=_Backend({"inv-1": 1})),
            _peer("p1", "bb", [], backend=_Backend({"inv-1": 1})),
        ]
        assert exactly_once_violations(peers)


class TestQueueBound:
    def test_within_bound_passes(self):
        load = {"m": SimpleNamespace(outstanding=4)}
        peers = [_peer("p0", "aa", [], member_load=load)]
        assert queue_bound_violations(peers, bound=4) == []

    def test_over_bound_flagged(self):
        load = {"m": SimpleNamespace(outstanding=5)}
        peers = [_peer("p0", "aa", [], member_load=load)]
        assert queue_bound_violations(peers, bound=4)

    def test_unbounded_always_passes(self):
        load = {"m": SimpleNamespace(outstanding=1000)}
        peers = [_peer("p0", "aa", [], member_load=load)]
        assert queue_bound_violations(peers, bound=None) == []


class TestConvergence:
    def test_single_claimant_passes(self):
        peers = [
            _peer("p0", "aa", [], claims=True),
            _peer("p1", "bb", [], claims=False),
        ]
        assert convergence_violations(peers) == []

    def test_split_brain_flagged(self):
        peers = [
            _peer("p0", "aa", [], claims=True),
            _peer("p1", "bb", [], claims=True),
        ]
        violations = convergence_violations(peers)
        assert len(violations) == 1
        assert "2 live peers" in violations[0]

    def test_dead_claimant_ignored(self):
        peers = [
            _peer("p0", "aa", [], claims=True),
            _peer("p1", "bb", [], claims=True, up=False),
        ]
        assert convergence_violations(peers) == []
