"""Region-aware schedule exploration: sampling, injection, WAN-heal audit.

The directed scenario at the bottom is the ISSUE's WAN-heal check: a span
deployment split across two regions loses its WAN link mid-workload, and
after the link heals both election safety (no two peers ever announce the
same epoch, no stale re-announcements) and exactly-once application must
hold.
"""

import random

import pytest

from repro.backend.datasets import student_database
from repro.backend.services import student_enrollment
from repro.check import (
    CheckScenario,
    FaultOp,
    Schedule,
    load_repro,
    replay_repro,
    run_schedule,
)
from repro.check.explorer import save_repro
from repro.check.invariants import (
    announced_epoch_violations,
    convergence_violations,
    exactly_once_violations,
)
from repro.check.schedule import random_schedule
from repro.core import ScenarioConfig, WhisperSystem
from repro.core.topology import Topology
from repro.wsdl.samples import student_admin_wsdl


class TestRegionSampling:
    def test_partition_region_targets_a_region(self):
        rng = random.Random(5)
        actions = set()
        for _ in range(200):
            schedule = random_schedule(
                rng, ["h0", "h1"], decision_horizon=200, regions=["r0", "r1"]
            )
            for op in schedule.ops:
                actions.add(op.action)
                if op.action == "partition-region":
                    assert op.target in ("r0", "r1")
        assert "partition-region" in actions

    def test_single_region_sampling_is_unchanged(self):
        """regions=() must reproduce the exact pre-region sampling
        sequence, so existing seeds and repro files keep their meaning."""
        ops_with = [
            random_schedule(random.Random(9), ["h0"], 100).to_dict(),
            random_schedule(random.Random(10), ["h0"], 100).to_dict(),
        ]
        ops_again = [
            random_schedule(random.Random(9), ["h0"], 100, regions=()).to_dict(),
            random_schedule(random.Random(10), ["h0"], 100, regions=()).to_dict(),
        ]
        assert ops_with == ops_again
        for schedule in ops_with:
            assert all(
                op["action"] != "partition-region" for op in schedule["ops"]
            )

    def test_partition_region_op_round_trips(self):
        op = FaultOp(at_decision=7, action="partition-region", target="r1")
        assert "partition-region(r1" in op.describe()
        schedule = Schedule(ops=(op,), label="wan-split")
        restored = Schedule.from_dict(schedule.to_dict())
        assert restored == schedule

    def test_scenario_rejects_shards_and_regions_together(self):
        scenario = CheckScenario(shards=2, regions=2)
        with pytest.raises(ValueError, match="shards and regions"):
            run_schedule(scenario, Schedule(label="invalid"))


class TestRegionInjection:
    @pytest.fixture(scope="class")
    def region_baseline(self):
        return run_schedule(
            CheckScenario(regions=2), Schedule(label="region-baseline")
        )

    def test_region_baseline_is_clean(self, region_baseline):
        assert region_baseline.violations == []
        assert region_baseline.probes_ok > 0

    def test_partition_region_fires_and_recovers(self, region_baseline):
        schedule = Schedule(
            ops=(
                FaultOp(
                    at_decision=region_baseline.decisions // 4,
                    action="partition-region",
                    target="r1",
                    duration=3.0,
                ),
            ),
            label="region-split",
        )
        result = run_schedule(CheckScenario(regions=2), schedule)
        assert len(result.fired) == 1
        assert result.fired[0]["victim"] == "region:r1"
        assert result.violations == []

    def test_region_repro_round_trip(self, tmp_path, region_baseline):
        scenario = CheckScenario(regions=2)
        schedule = Schedule(
            ops=(
                FaultOp(
                    at_decision=region_baseline.decisions // 3,
                    action="partition-region",
                    target="r0",
                    duration=2.5,
                ),
            ),
            label="region-repro",
        )
        result = run_schedule(scenario, schedule)
        path = str(tmp_path / "region-repro.json")
        save_repro(path, scenario, schedule, result)
        loaded_scenario, loaded_schedule, payload = load_repro(path)
        assert loaded_scenario.regions == 2
        assert loaded_schedule == schedule
        matched, replayed, expected = replay_repro(path)
        assert matched, (replayed.digest(), expected["digest"])


class TestWanHeal:
    def test_election_safety_and_exactly_once_after_wan_heal(self):
        """Split a 2-region span deployment at the WAN, keep the mutating
        workload flowing, heal, and audit the protocol's promises."""
        topology = Topology.mesh(["r0", "r1"], placement="span")
        system = WhisperSystem(
            ScenarioConfig(seed=13, replicas=3, topology=topology)
        )
        service = system.deploy_service(
            student_admin_wsdl(),
            {
                "EnrollStudent": [
                    student_enrollment(student_database(40)) for _ in range(3)
                ]
            },
        )
        system.settle(8.0)

        node, _soap = system.add_client("wan-heal-client")
        outcomes = {"ok": 0, "failed": 0}

        def probe(sequence):
            try:
                yield from service.invoke(
                    "EnrollStudent",
                    {"ID": f"S{sequence % 40 + 1:05d}", "course": f"C{sequence:04d}"},
                    timeout=3.0,
                    budget=12.0,
                )
            except Exception:
                outcomes["failed"] += 1
            else:
                outcomes["ok"] += 1

        def driver():
            for sequence in range(30):
                node.spawn(probe(sequence))
                yield system.env.timeout(1.0)

        node.spawn(driver())
        # Cut the WAN a few seconds in; heal it while probes still flow.
        system.failures.cut_wan_at(system.env.now + 4.0, "r0", "r1", duration=8.0)
        system.run_until(system.env.now + 30.0 + 20.0)  # workload + cooldown

        peers = service.all_peers()
        assert announced_epoch_violations(peers) == []
        assert exactly_once_violations(peers) == []
        assert convergence_violations(peers) == []
        assert outcomes["ok"] > 0
        # The healed group serves from one coordinator again.
        (group,) = service.all_groups()
        assert group.coordinator_peer() is not None
