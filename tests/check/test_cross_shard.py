"""Cross-shard schedules: the checker against a federated deployment.

The scenario here deploys the mutating EnrollStudent workload across two
federated shard groups (each its own replica set, election, journal) and
drives the same probe workload through the shard-aware proxy.  The
directed schedule crashes one *whole* shard group mid-workload — the
ring-handoff case the sharding design must survive — and every safety
invariant (election safety per group, epoch monotonicity, exactly-once
across all shard journals, stale-result ordering) is audited slice by
slice exactly as in the single-group runs.
"""

import pytest

from repro.check import CheckScenario, FaultOp, Schedule, run_schedule
from repro.check.explorer import replay_repro, save_repro

SHARDED = CheckScenario(shards=2)


@pytest.fixture(scope="module")
def sharded_baseline():
    """One shared clean cross-shard baseline run (module-scoped: pure)."""
    return run_schedule(SHARDED, Schedule(label="sharded-baseline"))


def _shard_hosts(baseline, shard_index):
    hosts = sorted(h for h in baseline.hosts if f"-s{shard_index}-" in h)
    assert hosts, baseline.hosts
    return hosts


class TestShardedBaseline:
    def test_clean_and_watches_every_shard_group(self, sharded_baseline):
        assert sharded_baseline.violations == []
        assert sharded_baseline.probes_ok > 0
        assert sharded_baseline.effects_applied > 0
        # The decision space spans both shard groups' replicas.
        assert len(_shard_hosts(sharded_baseline, 0)) == SHARDED.replicas
        assert len(_shard_hosts(sharded_baseline, 1)) == SHARDED.replicas

    def test_sharded_runs_are_deterministic(self, sharded_baseline):
        again = run_schedule(SHARDED, Schedule(label="sharded-baseline"))
        assert again.digest() == sharded_baseline.digest()

    def test_scenario_roundtrip_defaults_old_files_to_one_shard(self):
        assert CheckScenario.from_dict(SHARDED.to_dict()) == SHARDED
        legacy = CheckScenario().to_dict()
        legacy.pop("shards")
        assert CheckScenario.from_dict(legacy).shards == 1


class TestShardGroupFailover:
    def _group_crash_schedule(self, baseline, shard_index=0, duration=4.0):
        """Crash every replica of one shard group at one protocol step."""
        at = max(1, baseline.decisions // 3)
        return Schedule(
            ops=tuple(
                FaultOp(at_decision=at, action="crash", target=host,
                        duration=duration)
                for host in _shard_hosts(baseline, shard_index)
            ),
            label="crash-shard-group",
        )

    def test_invariants_survive_whole_shard_group_crash(self, sharded_baseline):
        """Exactly-once and election safety hold across the ring handoff:
        losing shard group 0 mid-workload reroutes its segment without a
        single double-applied invocation or cross-epoch violation."""
        schedule = self._group_crash_schedule(sharded_baseline)
        result = run_schedule(SHARDED, schedule)
        assert result.violations == [], result.violations
        assert len(result.fired) == SHARDED.replicas  # whole group went down
        victims = {f["victim"] for f in result.fired}
        assert victims == set(_shard_hosts(sharded_baseline, 0))
        # The surviving shard group kept the workload alive.
        assert result.probes_ok > 0

    def test_cross_shard_counterexamples_replay_byte_identically(
        self, tmp_path, sharded_baseline
    ):
        """Repro files carry the shards field and replay deterministically,
        so a cross-shard counterexample is as durable as a single-group one."""
        schedule = self._group_crash_schedule(sharded_baseline)
        result = run_schedule(SHARDED, schedule)
        path = str(tmp_path / "cross-shard-repro.json")
        save_repro(path, SHARDED, schedule, result)
        ok, replayed, expected = replay_repro(path)
        assert ok
        assert expected["scenario"]["shards"] == 2
        assert replayed.digest() == result.digest()
