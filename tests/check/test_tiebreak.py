"""Tiebreak policies: determinism, spec round-trips, and victim keying."""

from types import SimpleNamespace

import pytest

from repro.check import (
    AdversarialDelayTiebreak,
    FifoTiebreak,
    SeededShuffleTiebreak,
    build_tiebreak,
)
from repro.simnet import Environment


class TestSpecs:
    def test_fifo_builds_to_none(self):
        """FIFO maps to no policy at all (the environment's fast path)."""
        assert build_tiebreak(None) is None
        assert build_tiebreak({"kind": "fifo"}) is None
        assert FifoTiebreak().spec() == {"kind": "fifo"}

    def test_shuffle_round_trip(self):
        policy = SeededShuffleTiebreak(7)
        rebuilt = build_tiebreak(policy.spec())
        assert isinstance(rebuilt, SeededShuffleTiebreak)
        assert rebuilt.seed == 7

    def test_adversarial_round_trip(self):
        policy = AdversarialDelayTiebreak("bpeer2")
        rebuilt = build_tiebreak(policy.spec())
        assert isinstance(rebuilt, AdversarialDelayTiebreak)
        assert rebuilt.victim == "bpeer2"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_tiebreak({"kind": "chaos"})

    def test_adversarial_needs_victim(self):
        with pytest.raises(ValueError):
            AdversarialDelayTiebreak("")


class TestDeterminism:
    def test_shuffle_same_seed_same_ranks(self):
        """The whole point of the spec: rebuilds replay identically."""
        env = Environment()
        first = SeededShuffleTiebreak(11)
        second = SeededShuffleTiebreak(11)
        ranks = [first.key(env, False, None) for _ in range(50)]
        assert ranks == [second.key(env, False, None) for _ in range(50)]

    def test_shuffle_different_seed_different_ranks(self):
        env = Environment()
        a = [SeededShuffleTiebreak(1).key(env, False, None) for _ in range(20)]
        b = [SeededShuffleTiebreak(2).key(env, False, None) for _ in range(20)]
        assert a != b


class TestAdversarialKeying:
    def test_victim_events_lose_the_tiebreak(self):
        policy = AdversarialDelayTiebreak("victim-host")
        bystander = SimpleNamespace(
            active_process=SimpleNamespace(name="other-host/proc")
        )
        starved = SimpleNamespace(
            active_process=SimpleNamespace(name="victim-host/proc")
        )
        nobody = SimpleNamespace(active_process=None)
        assert policy.key(bystander, False, None) == 0
        assert policy.key(nobody, False, None) == 0
        assert policy.key(starved, False, None) > 0


class TestOrderingEffect:
    def test_shuffle_reorders_same_timestamp_events(self):
        """Two same-instant callbacks run in policy order, not FIFO order.

        Sampled over several seeds because any single seed may happen to
        draw the FIFO order; at least one of them must flip it.
        """

        def run_order(policy):
            env = Environment(tiebreak=policy)
            order = []

            def waiter(tag):
                yield env.timeout(1.0)
                order.append(tag)

            env.process(waiter("first-scheduled"))
            env.process(waiter("second-scheduled"))
            env.run(until=2.0)
            return order

        assert run_order(None) == ["first-scheduled", "second-scheduled"]
        flipped = [
            run_order(SeededShuffleTiebreak(seed))
            for seed in range(8)
        ]
        assert ["second-scheduled", "first-scheduled"] in flipped
