"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.simnet import Environment, MessageTrace, Network, RngRegistry


@pytest.fixture
def env():
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def network(env):
    """A fresh network on the default 100 Mbit LAN model."""
    return Network(env, trace=MessageTrace(), rng=RngRegistry(12345))


@pytest.fixture
def two_hosts(network):
    """Two hosts ``a`` and ``b`` on the LAN."""
    return network.add_host("a"), network.add_host("b")
