"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.simnet import Environment, MessageTrace, Network, RngRegistry


@pytest.fixture
def env():
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def seed(request):
    """Root RNG seed for the ``network`` fixture.

    Defaults to the suite's historical 12345; parametrize it indirectly
    to sweep a scenario across seeds::

        @pytest.mark.parametrize("seed", [7, 11, 42], indirect=True)
        def test_something(network, ...): ...
    """
    return getattr(request, "param", 12345)


@pytest.fixture
def network(env, seed):
    """A fresh network on the default 100 Mbit LAN model."""
    return Network(env, trace=MessageTrace(), rng=RngRegistry(seed))


@pytest.fixture
def two_hosts(network):
    """Two hosts ``a`` and ``b`` on the LAN."""
    return network.add_host("a"), network.add_host("b")
