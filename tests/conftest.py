"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.simnet import Environment, MessageTrace, Network, RngRegistry


@pytest.fixture
def env():
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def seed(request):
    """Root RNG seed for the ``network`` fixture.

    Defaults to the suite's historical 12345; parametrize it indirectly
    to sweep a scenario across seeds::

        @pytest.mark.parametrize("seed", [7, 11, 42], indirect=True)
        def test_something(network, ...): ...
    """
    return getattr(request, "param", 12345)


@pytest.fixture
def network(env, seed):
    """A fresh network on the default 100 Mbit LAN model."""
    return Network(env, trace=MessageTrace(), rng=RngRegistry(seed))


@pytest.fixture
def two_hosts(network):
    """Two hosts ``a`` and ``b`` on the LAN."""
    return network.add_host("a"), network.add_host("b")


@pytest.fixture
def capacity_scenario(seed):
    """A settled student service with the full capacity layer armed.

    Autoscaler (floor 2, ceiling 5), circuit breaker, and semantic
    result cache, all on one deployment — the shape the adaptive
    capacity tests exercise.  Threads the shared ``seed`` fixture, so
    ``@pytest.mark.parametrize("seed", [...], indirect=True)`` sweeps
    it.  Returns ``(system, service)``.
    """
    from repro.core.autoscale import AutoscaleSpec
    from repro.core.breaker import BreakerSpec
    from repro.core.config import ScenarioConfig
    from repro.core.rescache import ResultCacheSpec
    from repro.core.system import WhisperSystem

    system = WhisperSystem(
        ScenarioConfig(
            seed=seed,
            replicas=2,
            load_sharing=True,
            autoscale=AutoscaleSpec(
                min_replicas=2,
                max_replicas=5,
                cooldown=1.0,
                interval=0.5,
                smoothing=0.4,
            ),
            circuit_breaker=BreakerSpec(
                window=8, min_calls=4, failure_threshold=0.75, open_duration=2.0
            ),
            result_cache=ResultCacheSpec(capacity=128, staleness_bound=2.0),
        )
    )
    service = system.deploy_student_service()
    system.settle(6.0)
    return system, service
