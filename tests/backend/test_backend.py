"""Unit tests for stores, datasets, the warehouse, and service impls."""

import pytest

from repro.backend import (
    BackendUnavailable,
    Database,
    RecordNotFound,
    build_warehouse,
    claim_assessment,
    claims_database,
    loan_approval,
    loans_database,
    patient_record_retrieval,
    patients_database,
    student_database,
    student_lookup_operational,
    student_lookup_warehouse,
    warehouse_lookup,
)


class TestTableAndDatabase:
    def test_insert_get(self):
        db = Database("d")
        table = db.create_table("t", primary_key="id")
        table.insert({"id": 1, "name": "x"})
        assert db.read("t", 1)["name"] == "x"

    def test_get_returns_copy(self):
        db = Database("d")
        table = db.create_table("t", primary_key="id")
        table.insert({"id": 1, "name": "x"})
        row = db.read("t", 1)
        row["name"] = "mutated"
        assert db.read("t", 1)["name"] == "x"

    def test_insert_requires_primary_key(self):
        table = Database("d").create_table("t", primary_key="id")
        with pytest.raises(ValueError):
            table.insert({"name": "x"})

    def test_missing_record(self):
        db = Database("d")
        db.create_table("t", primary_key="id")
        with pytest.raises(RecordNotFound):
            db.read("t", 99)

    def test_select_predicate(self):
        table = Database("d").create_table("t", primary_key="id")
        for index in range(10):
            table.insert({"id": index, "even": index % 2 == 0})
        assert len(table.select(lambda row: row["even"])) == 5

    def test_update(self):
        db = Database("d")
        table = db.create_table("t", primary_key="id")
        table.insert({"id": 1, "v": "old"})
        table.update(1, {"v": "new"})
        assert db.read("t", 1)["v"] == "new"

    def test_delete(self):
        table = Database("d").create_table("t", primary_key="id")
        table.insert({"id": 1})
        assert table.delete(1)
        assert not table.delete(1)

    def test_duplicate_table_rejected(self):
        db = Database("d")
        db.create_table("t", primary_key="id")
        with pytest.raises(ValueError):
            db.create_table("t", primary_key="id")

    def test_fail_and_restore(self):
        db = Database("d")
        table = db.create_table("t", primary_key="id")
        table.insert({"id": 1})
        db.fail()
        with pytest.raises(BackendUnavailable):
            db.read("t", 1)
        with pytest.raises(BackendUnavailable):
            db.write("t", {"id": 2})
        db.restore()
        assert db.read("t", 1) == {"id": 1}

    def test_read_write_counters(self):
        db = Database("d")
        db.create_table("t", primary_key="id")
        db.write("t", {"id": 1})
        db.read("t", 1)
        assert (db.reads, db.writes) == (1, 1)


class TestDatasets:
    def test_student_database_shape(self):
        db = student_database(count=50)
        assert len(db.table("students")) == 50
        row = db.read("students", "S00001")
        assert set(row) >= {"student_id", "name", "degree", "email", "enrolled_courses"}

    def test_datasets_deterministic(self):
        a = student_database(count=20, seed=5).read("students", "S00007")
        b = student_database(count=20, seed=5).read("students", "S00007")
        assert a == b

    def test_different_seeds_differ(self):
        a = student_database(count=20, seed=5)
        b = student_database(count=20, seed=6)
        rows_a = [a.read("students", f"S{i:05d}")["name"] for i in range(1, 21)]
        rows_b = [b.read("students", f"S{i:05d}")["name"] for i in range(1, 21)]
        assert rows_a != rows_b

    @pytest.mark.parametrize(
        "factory,table,prefix",
        [
            (claims_database, "claims", "C"),
            (loans_database, "loans", "L"),
            (patients_database, "patients", "H"),
        ],
    )
    def test_other_domains(self, factory, table, prefix):
        db = factory(count=30)
        assert len(db.table(table)) == 30
        assert db.read(table, f"{prefix}00001")


class TestWarehouse:
    def test_etl_preserves_row_count(self):
        operational = student_database(count=40)
        warehouse = build_warehouse(operational)
        assert len(warehouse.table("dw_students")) == 40

    def test_lookup_restores_operational_shape(self):
        operational = student_database(count=10)
        warehouse = build_warehouse(operational)
        original = operational.read("students", "S00003")
        restored = warehouse_lookup(warehouse, "students", "S00003")
        assert restored == original

    def test_single_item_list_roundtrips(self):
        operational = Database("x-operational")
        table = operational.create_table("things", primary_key="id")
        table.insert({"id": "a", "tags": ["only-one"]})
        warehouse = build_warehouse(operational)
        assert warehouse_lookup(warehouse, "things", "a")["tags"] == ["only-one"]

    def test_empty_list_roundtrips(self):
        operational = Database("x-operational")
        table = operational.create_table("things", primary_key="id")
        table.insert({"id": "a", "tags": []})
        warehouse = build_warehouse(operational)
        assert warehouse_lookup(warehouse, "things", "a")["tags"] == []

    def test_warehouse_independent_availability(self):
        operational = student_database(count=10)
        warehouse = build_warehouse(operational)
        operational.fail()
        assert warehouse_lookup(warehouse, "students", "S00001")
        with pytest.raises(BackendUnavailable):
            operational.read("students", "S00001")


class TestServiceImplementations:
    def test_operational_and_warehouse_agree(self):
        db = student_database(count=20)
        warehouse = build_warehouse(db)
        op = student_lookup_operational(db)
        dw = student_lookup_warehouse(warehouse)
        a = op.invoke({"ID": "S00005"})
        b = dw.invoke({"ID": "S00005"})
        assert a["source"] == "operational-db"
        assert b["source"] == "data-warehouse"
        for key in ("studentId", "name", "degree", "email", "enrolledCourses"):
            assert a[key] == b[key]

    def test_missing_argument_rejected(self):
        impl = student_lookup_operational(student_database(count=5))
        with pytest.raises(ValueError, match="ID"):
            impl.invoke({})

    def test_unknown_student_raises(self):
        impl = student_lookup_operational(student_database(count=5))
        with pytest.raises(RecordNotFound):
            impl.invoke({"ID": "S99999"})

    def test_backend_failure_propagates(self):
        db = student_database(count=5)
        impl = student_lookup_operational(db)
        db.fail()
        with pytest.raises(BackendUnavailable):
            impl.invoke({"ID": "S00001"})

    def test_invocation_counter(self):
        impl = student_lookup_operational(student_database(count=5))
        impl.invoke({"ID": "S00001"})
        impl.invoke({"ID": "S00002"})
        assert impl.invocations == 2

    def test_claim_assessment_decision(self):
        impl = claim_assessment(claims_database(count=50))
        result = impl.invoke({"request": "C00001"})
        assert result["assessment"] in {"approve", "escalate", "closed"}

    def test_loan_approval_consistent_with_score(self):
        db = loans_database(count=50)
        impl = loan_approval(db)
        for index in range(1, 51):
            loan_id = f"L{index:05d}"
            row = db.read("loans", loan_id)
            result = impl.invoke({"request": loan_id})
            assert result["approved"] == row["approved"]

    def test_patient_record(self):
        impl = patient_record_retrieval(patients_database(count=10))
        result = impl.invoke({"request": "H00004"})
        assert result["patientId"] == "H00004"
        assert isinstance(result["conditions"], list)
