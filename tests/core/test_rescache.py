"""Semantic result cache: unit semantics and live proxy integration.

The unit half drives :class:`~repro.core.rescache.SemanticResultCache`
directly — staleness bound, epoch fencing, the invalidation family, LRU
eviction, and the serve audit log.  The integration half deploys the
two-operation student service with the cache armed and checks the
read-through path end to end: identical reads hit without touching the
network, a mutating enrollment flushes the cache, the staleness bound
expires entries, and the "zero stale-epoch serves" invariant holds.
"""

import itertools

import pytest

from repro.backend import (
    student_database,
    student_enrollment,
    student_lookup_operational,
)
from repro.check.invariants import rescache_violations
from repro.core.config import ScenarioConfig
from repro.core.rescache import ResultCacheSpec, SemanticResultCache
from repro.core.result import InvokeOutcome
from repro.core.system import WhisperSystem
from repro.wsdl import student_admin_wsdl

SPEC = ResultCacheSpec(capacity=4, staleness_bound=5.0)


def store(cache, key, value="v", epoch=1, group_id="g", now=0.0, action="a:read"):
    cache.store(key, value, action=action, epoch=epoch, group_id=group_id, now=now)


# -- spec validation -----------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs", [dict(capacity=0), dict(staleness_bound=0.0), dict(staleness_bound=-1.0)]
)
def test_spec_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        ResultCacheSpec(**kwargs)


# -- hit / miss / staleness ----------------------------------------------------------


def test_miss_then_hit():
    cache = SemanticResultCache(SPEC)
    assert cache.lookup("k", now=0.0) is None
    store(cache, "k", value={"x": 1}, now=0.0)
    entry = cache.lookup("k", now=1.0)
    assert entry is not None and entry.value == {"x": 1}
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.hit_ratio == 0.5


def test_staleness_bound_expires_entries():
    cache = SemanticResultCache(SPEC)
    store(cache, "k", now=0.0)
    assert cache.lookup("k", now=SPEC.staleness_bound) is not None, (
        "age == bound is still servable"
    )
    store(cache, "k2", now=0.0)
    assert cache.lookup("k2", now=SPEC.staleness_bound + 0.01) is None
    assert len(cache) == 1, "expired entry must be dropped, not kept"


def test_serve_audit_records_age_and_epochs():
    cache = SemanticResultCache(SPEC)
    store(cache, "k", epoch=3, now=1.0)
    cache.lookup("k", now=2.5, fence_for=lambda group: 3)
    (serve,) = cache.serves
    assert serve.key == "k"
    assert serve.age == pytest.approx(1.5)
    assert serve.entry_epoch == 3
    assert serve.fence_epoch == 3
    assert cache.stale_epoch_serves == 0


# -- epoch fencing -------------------------------------------------------------------


def test_fenced_epoch_is_invalidated_not_served():
    cache = SemanticResultCache(SPEC)
    store(cache, "k", epoch=2, group_id="g", now=0.0)
    # A failover happened: the proxy has since seen epoch 3 for "g".
    entry = cache.lookup("k", now=1.0, fence_for=lambda group: 3)
    assert entry is None
    assert cache.invalidated == 1
    assert cache.stale_epoch_serves == 0
    assert len(cache) == 0


def test_equal_epoch_is_not_fenced():
    cache = SemanticResultCache(SPEC)
    store(cache, "k", epoch=3, now=0.0)
    assert cache.lookup("k", now=1.0, fence_for=lambda group: 3) is not None


def test_epochless_entry_is_never_fenced():
    cache = SemanticResultCache(SPEC)
    store(cache, "k", epoch=None, now=0.0)
    assert cache.lookup("k", now=1.0, fence_for=lambda group: 99) is not None


# -- invalidation family -------------------------------------------------------------


def test_invalidate_all_flushes_everything():
    cache = SemanticResultCache(SPEC)
    store(cache, "a", now=0.0)
    store(cache, "b", now=0.0)
    assert cache.invalidate_all() == 2
    assert len(cache) == 0 and cache.invalidated == 2


def test_invalidate_group_is_scoped():
    cache = SemanticResultCache(SPEC)
    store(cache, "a", group_id="g1", now=0.0)
    store(cache, "b", group_id="g2", now=0.0)
    assert cache.invalidate_group("g1") == 1
    assert cache.lookup("b", now=0.1) is not None
    assert cache.lookup("a", now=0.1) is None


def test_invalidate_action_is_scoped():
    cache = SemanticResultCache(SPEC)
    store(cache, "a", action="sm:Lookup", now=0.0)
    store(cache, "b", action="sm:Other", now=0.0)
    assert cache.invalidate_action("sm:Lookup") == 1
    assert cache.lookup("b", now=0.1) is not None


def test_invalidate_epoch_drops_only_fenced_entries_of_group():
    cache = SemanticResultCache(SPEC)
    store(cache, "old", group_id="g", epoch=1, now=0.0)
    store(cache, "new", group_id="g", epoch=5, now=0.0)
    store(cache, "other", group_id="h", epoch=1, now=0.0)
    assert cache.invalidate_epoch("g", fence=3) == 1
    assert cache.lookup("new", now=0.1) is not None
    assert cache.lookup("other", now=0.1) is not None
    assert cache.lookup("old", now=0.1) is None


# -- LRU eviction --------------------------------------------------------------------


def test_capacity_evicts_least_recently_used():
    cache = SemanticResultCache(SPEC)  # capacity 4
    for i in range(4):
        store(cache, f"k{i}", now=0.0)
    cache.lookup("k0", now=0.1)  # refresh k0: k1 becomes the LRU
    store(cache, "k4", now=0.2)
    assert len(cache) == 4
    assert cache.lookup("k1", now=0.3) is None, "LRU entry must be evicted"
    assert cache.lookup("k0", now=0.3) is not None


# -- live proxy integration ----------------------------------------------------------


@pytest.fixture
def cached_system():
    system = WhisperSystem(
        ScenarioConfig(
            seed=91,
            result_cache=ResultCacheSpec(capacity=64, staleness_bound=4.0),
        )
    )
    database = student_database()
    service = system.deploy_service(
        student_admin_wsdl(),
        {
            "StudentInformation": [
                student_lookup_operational(database) for _ in range(2)
            ],
            "EnrollStudent": [student_enrollment(database) for _ in range(2)],
        },
    )
    system.settle(6.0)
    return system, service


_client_ids = itertools.count()


def read(system, service, student="S00001"):
    node, _soap = system.add_client(f"rc-client-{next(_client_ids)}")
    return system.run_process(
        service.invoke("StudentInformation", {"ID": student}), node=node
    )


def enroll(system, service, student="S00001", course="X999"):
    node, _soap = system.add_client(f"rc-enroll-{next(_client_ids)}")
    return system.run_process(
        service.invoke("EnrollStudent", {"ID": student, "course": course}),
        node=node,
    )


def test_second_identical_read_is_served_from_cache(cached_system):
    system, service = cached_system
    first = read(system, service)
    second = read(system, service)
    assert first.outcome is not InvokeOutcome.CACHED
    assert second.outcome is InvokeOutcome.CACHED
    assert second.attempts == 0, "a hit must not touch the network"
    assert second.served_by == "rescache"
    assert second.value == first.value
    executed = service.group_for("StudentInformation").total_requests_executed()
    assert executed == 1, "the backend must see exactly one read"


def test_distinct_arguments_do_not_share_entries(cached_system):
    system, service = cached_system
    read(system, service, student="S00001")
    other = read(system, service, student="S00002")
    assert other.outcome is not InvokeOutcome.CACHED
    assert other.value["studentId"] == "S00002"


def test_mutating_operation_invalidates_cached_reads(cached_system):
    system, service = cached_system
    stale = read(system, service)
    assert "X999" not in stale.value["enrolledCourses"]
    read(system, service)  # warm the cache
    enroll(system, service, course="X999")
    fresh = read(system, service)
    assert fresh.outcome is not InvokeOutcome.CACHED, (
        "enrollment must flush the cache"
    )
    assert "X999" in fresh.value["enrolledCourses"]


def test_staleness_bound_expires_live_entries(cached_system):
    system, service = cached_system
    read(system, service)
    cached = read(system, service)
    assert cached.outcome is InvokeOutcome.CACHED
    system.settle(5.0)  # beyond the 4s staleness bound
    expired = read(system, service)
    assert expired.outcome is not InvokeOutcome.CACHED


def test_no_stale_epoch_serves_and_invariant_clean(cached_system):
    system, service = cached_system
    for _ in range(3):
        read(system, service)
    enroll(system, service, course="Y100")
    for _ in range(3):
        read(system, service)
    cache = service.proxy.result_cache
    assert cache.hits >= 2
    assert cache.stale_epoch_serves == 0
    assert rescache_violations(service.proxy) == []


def test_capacity_layer_off_is_byte_identical_to_seed():
    """Specs left ``None`` must not perturb the seed's message flow."""
    from repro.bench.capacity import run_fig4_guard

    guard = run_fig4_guard(seed=91)
    assert guard["identical"], guard
