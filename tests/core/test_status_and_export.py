"""Tests for the status report and trace export."""

import pytest

from repro.core import ScenarioConfig, WhisperSystem
from repro.simnet import Message, MessageTrace


class TestStatusReport:
    @pytest.fixture
    def system(self):
        sys_ = WhisperSystem(ScenarioConfig(seed=99))
        sys_.deploy_student_service(sys_.config.replace(replicas=3))
        sys_.settle(6.0)
        return sys_

    def test_report_shape(self, system):
        report = system.status_report()
        assert report["hosts"]["total"] == 1 + 3 + 1  # rdv + b-peers + web
        assert report["hosts"]["up"] == report["hosts"]["total"]
        assert "StudentManagement" in report["services"]
        service = report["services"]["StudentManagement"]
        group = service["groups"]["StudentInformation"]
        assert group["replicas"] == 3
        assert group["alive"] == 3
        assert group["coordinator"] is not None

    def test_report_reflects_crash(self, system):
        deployed = system.services["StudentManagement"]
        deployed.group.crash_coordinator()
        report = system.status_report()
        group = report["services"]["StudentManagement"]["groups"]["StudentInformation"]
        assert group["alive"] == 2
        assert report["hosts"]["up"] == report["hosts"]["total"] - 1

    def test_report_counts_invocations(self, system):
        deployed = system.services["StudentManagement"]
        node, client = system.add_client("report-client")

        def caller():
            yield from client.call(
                deployed.address, deployed.path, "StudentInformation",
                {"ID": "S00001"}, timeout=30.0,
            )

        system.env.run(until=node.spawn(caller()))
        report = system.status_report()
        proxy = report["services"]["StudentManagement"]["proxy"]
        assert proxy["invocations"] == 1
        assert proxy["successes"] == 1


class TestTraceExport:
    def test_records_csv(self):
        trace = MessageTrace(record_details=True)
        message = Message(src=("a", 1), dst=("b", 2), payload=None,
                          category="test", size_bytes=64)
        trace.on_send(0.5, message)
        trace.on_deliver(0.6, message)
        csv = trace.records_to_csv()
        lines = csv.strip().splitlines()
        assert lines[0].startswith("time,event,category")
        assert len(lines) == 3
        assert "send,test,a,1,b,2,64" in lines[1]
        assert lines[2].startswith("0.6,deliver")

    def test_rtts_csv(self):
        trace = MessageTrace()
        trace.stamp_request(5, 1.0)
        trace.stamp_reply(5, 1.25)
        csv = trace.rtts_to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "correlation_id,request_at,reply_at,rtt"
        assert lines[1] == "5,1.0,1.25,0.25"

    def test_csv_roundtrip_parses(self):
        """The CSV is machine-readable: parse it back with the csv module."""
        import csv as csv_module
        import io

        trace = MessageTrace(record_details=True)
        for index in range(5):
            message = Message(src=("h1", 1), dst=("h2", 2), payload=None)
            trace.on_send(float(index), message)
        reader = csv_module.DictReader(io.StringIO(trace.records_to_csv()))
        rows = list(reader)
        assert len(rows) == 5
        assert rows[3]["time"] == "3.0"
        assert rows[0]["event"] == "send"
