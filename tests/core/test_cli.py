"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig4_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.max_peers == 16
        assert args.seed == 42

    def test_seed_flag_global(self):
        args = build_parser().parse_args(["--seed", "7", "rtt"])
        assert args.seed == 7

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quantum"])

    def test_check_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.seeds == 5
        assert args.schedules == 50
        assert args.max_ops == 4
        assert args.timeout is None
        assert args.replay is None
        assert not args.self_test


class TestCommands:
    def test_fig4_runs_small(self, capsys):
        assert main(["fig4", "--max-peers", "4"]) == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "r²" in output or "r2" in output.lower()

    def test_rtt_runs_small(self, capsys):
        assert main(["rtt", "--samples", "20"]) == 0
        output = capsys.readouterr().out
        assert "RTT" in output
        assert "p95" in output

    def test_failover_runs(self, capsys):
        assert main(["failover", "--heartbeat", "0.5"]) == 0
        output = capsys.readouterr().out
        assert "Coordinator crash" in output
        assert "re-binds" in output

    def test_availability_runs(self, capsys):
        assert main(["availability", "--replicas", "2"]) == 0
        output = capsys.readouterr().out
        assert "Availability under churn" in output
        assert "availability" in output

    def test_check_runs_small_and_clean(self, capsys, tmp_path):
        out = str(tmp_path / "repro.json")
        assert main(["check", "--seeds", "1", "--schedules", "2",
                     "--out", out]) == 0
        output = capsys.readouterr().out
        assert "schedule exploration" in output
        assert "all hold" in output

    def test_check_self_test_catches_unfenced_violation(self, capsys, tmp_path):
        out = str(tmp_path / "self-test.json")
        assert main(["check", "--self-test", "--out", out]) == 0
        output = capsys.readouterr().out
        assert "self-test" in output
        assert "OK" in output
