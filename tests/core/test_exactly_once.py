"""End-to-end exactly-once invocation: dedup journal across failover.

The acceptance scenario for the exactly-once layer: a mutating enrollment
call executes once, its result is replicated through the group's dedup
journal, and a retry carrying the same idempotency key — to the same
coordinator or to a freshly elected one after a crash — is answered from
the journal (``InvokeResult.deduped``) instead of mutating the backend
again.  With the journal disabled, the same retry double-applies: the
at-least-once baseline the duplicate audit must catch.
"""

import itertools

import pytest

from repro.backend.datasets import student_database
from repro.backend.services import student_enrollment
from repro.core import ScenarioConfig, WhisperSystem
from repro.wsdl.samples import student_admin_wsdl

REPLICAS = 4


def _build(dedup_journal=True, seed=1206):
    system = WhisperSystem(
        ScenarioConfig(
            seed=seed,
            heartbeat_interval=0.5,
            miss_threshold=2,
            dedup_journal=dedup_journal,
        )
    )
    implementations = [
        student_enrollment(student_database(50)) for _ in range(REPLICAS)
    ]
    service = system.deploy_service(
        student_admin_wsdl(),
        {"EnrollStudent": implementations},
        web_host="web0",
    )
    system.settle(6.0)
    return system, service


@pytest.fixture
def deployment():
    return _build()


def _invoke(system, service, arguments, **kwargs):
    outcome = {}

    def runner():
        try:
            result = yield from service.invoke("EnrollStudent", arguments, **kwargs)
            outcome["result"] = result
        except Exception as error:  # noqa: BLE001 - captured for assertions
            outcome["error"] = error

    system.env.run(until=service.proxy.node.spawn(runner()))
    assert "error" not in outcome, outcome.get("error")
    return outcome["result"]


def _replay_same_invocation(proxy):
    """Rig the proxy to mint invocation id #1 again — a client-level retry
    of the first logical call, reusing its idempotency key."""
    proxy._invocation_ids = itertools.chain([1], itertools.count(2))


def _effect_counts(service):
    counts = {}
    for peer in service.group.peers:
        backend = peer.implementation.backend
        for invocation_id, _peer_name in backend.effect_log:
            counts[invocation_id] = counts.get(invocation_id, 0) + 1
    return counts


class TestDedupOnRetry:
    def test_retry_to_live_coordinator_is_deduped(self, deployment):
        system, service = deployment
        first = _invoke(system, service, {"ID": "S00001", "course": "C101"})
        assert not first.deduped
        assert "C101" in first.value["enrolledCourses"]

        _replay_same_invocation(service.proxy)
        retry = _invoke(system, service, {"ID": "S00001", "course": "C101"})
        assert retry.deduped
        assert retry.invocation_id == first.invocation_id
        assert retry.value == first.value
        assert service.proxy.stats.deduped == 1
        # The backend mutated exactly once across both calls.
        assert _effect_counts(service) == {first.invocation_id: 1}

    def test_mutating_result_replicated_to_members(self, deployment):
        system, service = deployment
        result = _invoke(system, service, {"ID": "S00002", "course": "C200"})
        system.settle(1.0)  # let the eager broadcast land
        holders = [
            peer
            for peer in service.group.peers
            if result.invocation_id in peer.journal
            and peer.journal.lookup(result.invocation_id).done
        ]
        assert len(holders) == len(service.group.peers)

    def test_retry_after_coordinator_crash_is_deduped(self, deployment):
        system, service = deployment
        first = _invoke(system, service, {"ID": "S00003", "course": "C300"})
        old_coordinator = service.group.coordinator_peer()
        system.settle(1.0)

        old_coordinator.node.crash()
        system.settle(10.0)  # re-election + journal push
        successor = service.group.coordinator_peer()
        assert successor is not None and successor is not old_coordinator

        _replay_same_invocation(service.proxy)
        retry = _invoke(system, service, {"ID": "S00003", "course": "C300"})
        assert retry.deduped
        assert retry.value == first.value
        # No second side effect anywhere in the group, the crashed
        # replica included.
        assert _effect_counts(service) == {first.invocation_id: 1}


class TestBaselineWithoutJournal:
    def test_retry_double_applies(self):
        system, service = _build(dedup_journal=False)
        first = _invoke(system, service, {"ID": "S00001", "course": "C101"})
        assert not first.deduped

        _replay_same_invocation(service.proxy)
        retry = _invoke(system, service, {"ID": "S00001", "course": "C101"})
        assert not retry.deduped
        # At-least-once: the retried call executed again.  The effect
        # ledger records both applications under the same idempotency
        # key — exactly what the campaign's duplicate audit flags.
        counts = _effect_counts(service)
        assert counts[first.invocation_id] == 2
        # The journal machinery stayed inert end to end.
        assert all(not peer.journal_enabled for peer in service.group.peers)
        assert all(len(peer.journal) == 0 for peer in service.group.peers)
