"""Multi-region deployments end to end: placement, preference, failover.

Covers the Topology-driven deploy paths of :class:`WhisperSystem`:
region-replicated groups with nearest-region binding and cross-region
failover, span placement with one election domain over the WAN, and the
byte-identity guarantee that an explicit single-region topology changes
nothing against the seed.
"""

import pytest

from repro.bench.wan import build_wan_system, run_fig4_guard
from repro.core import ScenarioConfig, WhisperSystem
from repro.core.topology import Topology


def _invoke(system, service, operation="StudentInformation", arguments=None):
    outcome = {}

    def caller():
        result = yield from service.invoke(
            operation, arguments or {"ID": "S00007"}, timeout=8.0, budget=30.0
        )
        outcome["result"] = result

    system.env.run(until=service.proxy.node.spawn(caller()))
    return outcome["result"]


class TestReplicatePlacement:
    def test_one_group_per_region(self):
        system, service = build_wan_system(regions=3, replicas=2)
        system.settle(10.0)
        regions = system.topology.region_names()
        groups = service.all_groups()
        assert len(groups) == 3
        names = sorted(group.name for group in groups)
        assert all("@" in name for name in names)
        for region in regions:
            group = service.region_group_for("StudentInformation", region)
            assert group.advertisement.region == region
            assert len(group.peers) == 2
            assert group.coordinator_peer() is not None

    def test_home_region_binding_is_preferred(self):
        system, service = build_wan_system(regions=3, replicas=1)
        system.settle(10.0)
        result = _invoke(system, service)
        assert result.value["studentId"] == "S00007"
        assert service.proxy.stats.region_preferred > 0

    def test_cross_region_failover_after_home_region_loss(self):
        system, service = build_wan_system(regions=3, replicas=1)
        system.settle(10.0)
        home = system.topology.home
        group = service.region_group_for("StudentInformation", home)
        for peer in group.peers:
            system.failures.crash_at(system.env.now, peer.node.name)
        system.run_until(system.env.now + 3.0)
        result = _invoke(system, service)
        assert result.value["studentId"] == "S00007"
        assert service.proxy.stats.region_failovers > 0

    def test_status_report_has_topology_section(self):
        system, service = build_wan_system(regions=2, replicas=1)
        system.settle(10.0)
        report = system.status_report()
        topo = report["topology"]
        assert topo["regions"] == system.topology.region_names()
        assert topo["home"] == system.topology.home
        assert topo["placement"] == "replicate"
        for region in system.topology.region_names():
            assert topo["gossip"][region]["mode"] == "gossip"
            assert topo["gossip"][region]["entries"] > 0


class TestSpanPlacement:
    def test_one_election_domain_across_regions(self):
        topology = Topology.mesh(["r0", "r1", "r2"], placement="span")
        system = WhisperSystem(
            ScenarioConfig(seed=42, replicas=3, topology=topology)
        )
        service = system.deploy_student_service()
        system.settle(10.0)
        groups = {
            id(group): group
            for group in service.all_groups()
        }
        assert len(groups) == 1
        (group,) = groups.values()
        peer_regions = {system.network.region_of(p.node.name) for p in group.peers}
        assert peer_regions == {"r0", "r1", "r2"}
        coordinators = [
            p for p in group.peers if p.coordinator_mgr.is_coordinator
        ]
        assert len(coordinators) == 1
        result = _invoke(system, service)
        assert result.value["studentId"] == "S00007"


class TestGuards:
    def test_single_region_topology_is_byte_identical_to_seed(self):
        guard = run_fig4_guard(seed=7)
        assert guard["identical"], guard

    def test_sharding_and_regions_do_not_compose_yet(self):
        topology = Topology.mesh(["r0", "r1"])
        system = WhisperSystem(
            ScenarioConfig(seed=1, shards=2, replicas=2, topology=topology)
        )
        with pytest.raises(NotImplementedError):
            system.deploy_student_service()

    def test_client_defaults_to_home_region(self):
        system, _service = build_wan_system(regions=2, replicas=1)
        node, _soap = system.add_client("cli0")
        assert system.network.region_of(node.name) == system.topology.home
