"""The declarative Topology API: specs, validation, builder, defaults."""

import pytest

from repro.core.topology import (
    DEFAULT_WAN_LATENCY,
    GossipSpec,
    RegionSpec,
    Topology,
    WanLinkSpec,
)


class TestSpecs:
    def test_region_rejects_slash_and_empty_names(self):
        with pytest.raises(ValueError):
            RegionSpec("eu/west")
        with pytest.raises(ValueError):
            RegionSpec("")

    def test_region_validates_latency_spec_eagerly(self):
        with pytest.raises(ValueError):
            RegionSpec("eu", latency="constant:oops")

    def test_region_rejects_bad_loss_rate(self):
        with pytest.raises(ValueError):
            RegionSpec("eu", loss_rate=1.0)

    def test_wan_link_needs_two_distinct_regions(self):
        with pytest.raises(ValueError):
            WanLinkSpec("eu", "eu")

    def test_wan_link_validates_both_directions(self):
        with pytest.raises(ValueError):
            WanLinkSpec("eu", "us", latency_back="nope:1ms")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fanout": 0},
            {"interval": 0.0},
            {"anti_entropy_interval": -1.0},
            {"rumor_rounds": 0},
            {"mode": "broadcast"},
        ],
    )
    def test_gossip_spec_validation(self, kwargs):
        with pytest.raises(ValueError):
            GossipSpec(**kwargs)


class TestTopology:
    def test_single_region_is_the_paper_testbed(self):
        topology = Topology.single_region()
        assert not topology.multi_region
        assert topology.home == "lan0"
        assert topology.wan_links_effective() == ()

    def test_duplicate_region_names_rejected(self):
        with pytest.raises(ValueError):
            Topology(regions=(RegionSpec("eu"), RegionSpec("eu")))

    def test_link_must_reference_known_regions(self):
        with pytest.raises(ValueError):
            Topology(
                regions=(RegionSpec("eu"), RegionSpec("us")),
                wan_links=(WanLinkSpec("eu", "ap"),),
            )

    def test_home_region_must_exist(self):
        with pytest.raises(ValueError):
            Topology(regions=(RegionSpec("eu"),), home_region="us")

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            Topology(regions=(RegionSpec("eu"),), placement="anycast")

    def test_implicit_full_mesh_when_no_links_declared(self):
        topology = Topology(
            regions=(RegionSpec("eu"), RegionSpec("us"), RegionSpec("ap"))
        )
        links = topology.wan_links_effective()
        pairs = {(link.a, link.b) for link in links}
        assert pairs == {("eu", "us"), ("eu", "ap"), ("us", "ap")}
        assert all(link.latency == DEFAULT_WAN_LATENCY for link in links)

    def test_mesh_constructor(self):
        topology = Topology.mesh(["r0", "r1", "r2"], placement="span")
        assert topology.region_names() == ["r0", "r1", "r2"]
        assert len(topology.wan_links) == 3
        assert topology.placement == "span"
        assert topology.home == "r0"

    def test_region_lookup(self):
        topology = Topology.mesh(["r0", "r1"])
        assert topology.region("r1").name == "r1"
        with pytest.raises(KeyError):
            topology.region("r9")

    def test_replace_returns_modified_copy(self):
        topology = Topology.mesh(["r0", "r1"])
        moved = topology.replace(home_region="r1")
        assert moved.home == "r1"
        assert topology.home == "r0"


class TestBuilder:
    def test_fluent_build(self):
        topology = (
            Topology.builder()
            .region("eu", latency="lan")
            .region("us", latency="lan")
            .link("eu", "us", latency="lognormal:40ms±15ms",
                  latency_back="lognormal:60ms±15ms")
            .gossip(fanout=3, interval=0.25)
            .place("span")
            .home("us")
            .build()
        )
        assert topology.region_names() == ["eu", "us"]
        assert topology.wan_links[0].latency_back == "lognormal:60ms±15ms"
        assert topology.gossip.fanout == 3
        assert topology.placement == "span"
        assert topology.home == "us"

    def test_empty_builder_rejected(self):
        with pytest.raises(ValueError):
            Topology.builder().build()

    def test_builder_validation_is_eager(self):
        with pytest.raises(ValueError):
            Topology.builder().region("eu").link("eu", "eu").build()
