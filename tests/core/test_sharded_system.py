"""Integration tests for semantic sharding across federated b-peer groups."""

import pytest

from repro.backend.datasets import student_database
from repro.backend.services import student_enrollment, student_lookup_operational
from repro.core import ScenarioConfig, WhisperSystem
from repro.core.sharding import ScatterResult
from repro.wsdl.samples import student_admin_wsdl, student_management_wsdl


def _sharded_system(shards=4, seed=42, **overrides):
    config = ScenarioConfig(
        seed=seed,
        shards=shards,
        replicas=2,
        load_sharing=True,
        dispatch="least-outstanding",
        heartbeat_interval=0.5,
        miss_threshold=2,
        **overrides,
    )
    system = WhisperSystem(config)
    service = system.deploy_student_service()
    system.settle(6.0)
    return system, service


def _run(system, service, generator):
    return system.run_process(generator, node=service.proxy.node)


class TestShardedDeploy:
    def test_one_group_per_shard_with_full_replication(self):
        system, service = _sharded_system(shards=4)
        groups = service.all_groups()
        assert len(groups) == 4
        assert sorted(g.name for g in groups) == [
            f"grp-StudentManagement-s{i}" for i in range(4)
        ]
        for group in groups:
            assert len(group.peers) == 2
            assert group.coordinator_peer() is not None
            assert group.advertisement.shard_count == 4
        assert {g.advertisement.shard_index for g in groups} == {0, 1, 2, 3}
        assert len(service.all_peers()) == 8

    def test_single_shard_advertisement_is_seed_identical(self):
        """shards=1 must not grow the advertisement (protects the
        Figure-4 message sizes)."""
        system, service = _sharded_system(shards=1)
        advertisement = service.group.advertisement
        assert advertisement.shard_index is None
        assert advertisement.shard_count is None
        assert not advertisement.sharded
        xml = advertisement.to_xml()
        assert "Shard" not in xml

    def test_sharded_deploy_rejects_flat_implementation_list(self):
        system = WhisperSystem(ScenarioConfig(seed=1, shards=2))
        db = student_database(20)
        with pytest.raises(ValueError, match="per shard"):
            system.deploy_service(
                student_management_wsdl(),
                [student_lookup_operational(db)],
            )

    def test_read_only_operations_wired_from_mutating_flag(self):
        system, service = _sharded_system(shards=2)
        assert "StudentInformation" in service.proxy.read_only_operations
        admin = WhisperSystem(ScenarioConfig(seed=3))
        deployed = admin.deploy_service(
            student_admin_wsdl(),
            {"EnrollStudent": [student_enrollment(student_database(20))]},
        )
        assert "EnrollStudent" not in deployed.proxy.read_only_operations


class TestShardRouting:
    def test_reads_spread_over_every_shard_group(self):
        system, service = _sharded_system(shards=4)

        def run():
            for index in range(200):
                result = yield from service.invoke(
                    "StudentInformation", {"ID": f"S{(index % 200) + 1:05d}"}
                )
                assert result.value["studentId"] == f"S{(index % 200) + 1:05d}"

        _run(system, service, run())
        executed = {
            group.name: group.total_requests_executed()
            for group in service.all_groups()
        }
        assert all(count > 0 for count in executed.values()), executed
        assert service.proxy.stats.shard_routed == 200

    def test_same_key_always_routes_to_same_group(self):
        system, service = _sharded_system(shards=4)

        def run():
            for _ in range(5):
                result = yield from service.invoke(
                    "StudentInformation", {"ID": "S00017"}
                )
                assert result.value["studentId"] == "S00017"

        _run(system, service, run())
        # All five invocations landed on exactly one shard group.
        executed = {
            group.name: group.total_requests_executed()
            for group in service.all_groups()
        }
        assert sorted(executed.values()) == [0, 0, 0, 5], executed

    def test_unsharded_deploy_never_touches_the_router(self):
        system, service = _sharded_system(shards=1)

        def run():
            yield from service.invoke("StudentInformation", {"ID": "S00001"})

        _run(system, service, run())
        assert service.proxy.stats.shard_routed == 0
        assert service.proxy._routers == {}


class TestScatterGather:
    def test_scatter_reaches_every_shard(self):
        system, service = _sharded_system(shards=4)

        def run():
            result = yield from service.proxy.scatter(
                "StudentInformation", {"ID": "S00001"}
            )
            return result

        result = _run(system, service, run())
        assert isinstance(result, ScatterResult)
        assert result.shards == 4
        assert sorted(result.results) == [
            f"grp-StudentManagement-s{i}" for i in range(4)
        ]
        assert not result.partial
        assert all(
            value["studentId"] == "S00001" for value in result.values.values()
        )
        assert service.proxy.stats.scatter_calls == 1
        assert service.proxy.stats.scatter_partial == 0

    def test_scatter_partial_policy_tolerates_one_dead_shard(self):
        system, service = _sharded_system(shards=4, scatter_policy="partial")
        victim = service.shard_groups_for("StudentInformation")[2]
        for peer in victim.peers:
            peer.node.crash()
        system.settle(2.0)

        def run():
            result = yield from service.proxy.scatter(
                "StudentInformation", {"ID": "S00002"}, budget=12.0
            )
            return result

        result = _run(system, service, run())
        assert result.partial
        assert victim.name in result.failures
        assert len(result.results) == 3
        assert service.proxy.stats.scatter_partial == 1

    def test_scatter_on_unsharded_service_degenerates_to_one_leg(self):
        system, service = _sharded_system(shards=1)

        def run():
            result = yield from service.proxy.scatter(
                "StudentInformation", {"ID": "S00001"}
            )
            return result

        result = _run(system, service, run())
        assert result.shards == 1
        assert not result.partial


class TestShardFailover:
    def test_reads_survive_shard_group_loss_via_ring_successor(self):
        """Killing one whole shard group remaps only its segment: reads
        for its keys fail over to ring successors, everyone else's keys
        keep their owner."""
        system, service = _sharded_system(shards=4)
        ids = [f"S{i:05d}" for i in range(1, 61)]

        def warm():
            for student in ids:
                yield from service.invoke("StudentInformation", {"ID": student})

        _run(system, service, warm())
        victim = service.shard_groups_for("StudentInformation")[1]
        for peer in victim.peers:
            peer.node.crash()
        system.settle(1.0)

        def run():
            for student in ids:
                result = yield from service.invoke(
                    "StudentInformation", {"ID": student}, budget=20.0
                )
                assert result.value["studentId"] == student

        _run(system, service, run())
        assert service.proxy.stats.shard_failovers > 0
        live_counts = {
            group.name: group.total_requests_executed()
            for group in service.all_groups()
            if group is not victim
        }
        assert all(count > 0 for count in live_counts.values())

    def test_mutating_ops_pin_to_home_group_once_sent(self):
        """Sticky at-most-once handoff: a mutating invocation id never
        spans two groups, so per-group dedup journals stay sufficient.
        Across a whole-shard-group crash mid-workload, no enrollment is
        ever double-applied."""
        config = ScenarioConfig(
            seed=11,
            shards=4,
            replicas=2,
            load_sharing=True,
            heartbeat_interval=0.5,
            miss_threshold=2,
            request_timeout=0.5,
        )
        system = WhisperSystem(config)
        databases = {
            shard: [student_database(50), student_database(50)]
            for shard in range(4)
        }
        service = system.deploy_service(
            student_admin_wsdl(),
            {
                "EnrollStudent": lambda shard: [
                    student_enrollment(db) for db in databases[shard]
                ]
            },
        )
        system.settle(6.0)
        victim = service.shard_groups_for("EnrollStudent")[0]
        statuses = []

        def workload():
            for index in range(40):
                if index == 12:
                    for peer in victim.peers:
                        peer.node.crash()
                try:
                    result = yield from service.invoke(
                        "EnrollStudent",
                        {"ID": f"S{index + 1:05d}", "course": "b2b-integration"},
                        budget=6.0,
                    )
                    statuses.append(("ok", result.invocation_id))
                except Exception as error:
                    statuses.append(("fail", type(error).__name__))

        _run(system, service, workload())
        # Exactly-once audit: across every backend replica of every shard
        # group, no invocation id was applied twice.
        seen_backends = set()
        applied = {}
        for peer in service.all_peers():
            backend = peer.implementation.backend
            if id(backend) in seen_backends:
                continue
            seen_backends.add(id(backend))
            for invocation_id, _applied_by in getattr(backend, "effect_log", []):
                applied[invocation_id] = applied.get(invocation_id, 0) + 1
        double_applied = {
            inv: count for inv, count in applied.items() if count > 1
        }
        assert double_applied == {}, double_applied
        # The workload made progress despite losing a whole shard group.
        assert sum(1 for status, _ in statuses if status == "ok") >= 25
