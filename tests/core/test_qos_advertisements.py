"""Tests for the §2.4 extension: QoS-annotated semantic advertisements."""

import pytest

from repro.core import ScenarioConfig, WhisperSystem
from repro.core.bpeer_group import semantic_advertisement_for
from repro.p2p import PeerGroupId, SemanticAdvertisement, advertisement_from_xml
from repro.qos import QosMetrics
from repro.wsdl.annotations import SemanticAnnotation

ANNOTATION = SemanticAnnotation(
    action="http://o#A", inputs=("http://o#In",), outputs=("http://o#Out",)
)


class TestQosAdvertisement:
    def test_qos_fields_roundtrip_xml(self):
        advertisement = SemanticAdvertisement(
            group_id=PeerGroupId.from_name("g"), name="g", action="http://o#A",
            qos_time=0.015, qos_cost=2.5, qos_reliability=0.97,
        )
        parsed = advertisement_from_xml(advertisement.to_xml())
        assert parsed.qos_time == 0.015
        assert parsed.qos_cost == 2.5
        assert parsed.qos_reliability == 0.97
        assert parsed.has_qos

    def test_unannotated_advertisement_has_no_qos(self):
        advertisement = SemanticAdvertisement(
            group_id=PeerGroupId.from_name("g"), name="g", action="http://o#A"
        )
        parsed = advertisement_from_xml(advertisement.to_xml())
        assert not parsed.has_qos
        assert parsed.qos_time is None

    def test_partial_qos_is_not_has_qos(self):
        advertisement = SemanticAdvertisement(
            group_id=PeerGroupId.from_name("g"), name="g", action="http://o#A",
            qos_time=0.01,
        )
        assert not advertisement.has_qos

    def test_builder_attaches_qos(self):
        advertisement = semantic_advertisement_for(
            "grp", ANNOTATION, "http://onto",
            qos=QosMetrics(time=0.02, cost=1.0, reliability=0.9),
        )
        assert advertisement.has_qos
        assert advertisement.qos_time == 0.02

    def test_builder_without_qos(self):
        advertisement = semantic_advertisement_for("grp", ANNOTATION, "http://onto")
        assert not advertisement.has_qos


class TestProxyQosPrior:
    def test_advertised_qos_seeds_proxy_profile(self):
        system = WhisperSystem(ScenarioConfig(seed=31))
        service = system.deploy_student_service(system.config.replace(replicas=2))
        proxy = service.proxy
        advertisement = semantic_advertisement_for(
            "grp-x", ANNOTATION, "http://onto",
            qos=QosMetrics(time=0.2, cost=3.0, reliability=0.5),
        )
        profile = proxy._profile_for(advertisement.key(), advertisement)
        snapshot = profile.snapshot()
        assert snapshot.time == 0.2
        assert snapshot.cost == 3.0
        assert snapshot.reliability == 0.5

    def test_unadvertised_group_gets_default_profile(self):
        system = WhisperSystem(ScenarioConfig(seed=31))
        service = system.deploy_student_service(system.config.replace(replicas=2))
        advertisement = semantic_advertisement_for("grp-y", ANNOTATION, "http://onto")
        profile = service.proxy._profile_for(advertisement.key(), advertisement)
        assert profile.snapshot().reliability == 1.0

    def test_profile_persists_across_lookups(self):
        system = WhisperSystem(ScenarioConfig(seed=31))
        service = system.deploy_student_service(system.config.replace(replicas=2))
        advertisement = semantic_advertisement_for("grp-z", ANNOTATION, "http://onto")
        first = service.proxy._profile_for(advertisement.key(), advertisement)
        first.record_success(0.123)
        second = service.proxy._profile_for(advertisement.key(), advertisement)
        assert second is first
        assert second.observations == 1

    def test_invoke_seeds_profile_on_single_match_path(self):
        """Regression: with exactly one matching group, ``invoke`` used to
        call ``_profile_for(key)`` without the advertisement, so the profile
        was a blank default and the advertised QoS never seeded it.
        ``_choose_group`` short-circuits for a single match, making this the
        only seeding opportunity on that path."""
        from repro.backend import student_database, student_lookup_operational
        from repro.core import SemanticWebService, SwsProxy
        from repro.core.bpeer_group import deploy_bpeer_group
        from repro.wsdl import student_management_wsdl

        system = WhisperSystem(ScenarioConfig(seed=41))
        sws = SemanticWebService(student_management_wsdl(), system.ontology)
        annotation = sws.annotation("StudentInformation")
        group = deploy_bpeer_group(
            system.network, system.rendezvous, "grp-qos-solo", annotation,
            [student_lookup_operational(student_database())],
            ontology_uri=system.ontology.uri,
            advertise_qos=QosMetrics(time=0.2, cost=3.0, reliability=0.9),
        )
        node = system.network.add_host("qos-solo-web")
        proxy = SwsProxy(node, sws, system.matcher)
        proxy.attach_to(system.rendezvous)
        system.settle(6.0)

        outcome = {}

        def runner():
            result = yield from proxy.invoke(
                "StudentInformation", {"ID": "S00001"}
            )
            outcome["value"] = result.value

        system.env.run(until=node.spawn(runner()))
        assert "value" in outcome
        profile = proxy._group_profiles[group.advertisement.key()]
        # Seeded from the advertisement, not QosProfile() defaults
        # (cost=1.0, initial_time=0.05).
        assert profile.cost == 3.0
        assert profile.initial_time == 0.2
        assert profile.initial_reliability == 0.9
        assert profile.observations == 1  # the successful invocation landed

    def test_proxy_prefers_group_with_better_advertised_qos(self):
        """Two semantically identical groups; only the advertised QoS
        differs.  The proxy's first choice should be the better one."""
        from repro.backend import student_database, student_lookup_operational
        from repro.core.bpeer_group import deploy_bpeer_group
        from repro.wsdl import student_management_wsdl

        system = WhisperSystem(ScenarioConfig(seed=37))
        service = system.deploy_student_service(system.config.replace(replicas=2))
        annotation = service.sws.annotation("StudentInformation")
        # Replace the default group advertisement set with two QoS-annotated
        # competitors discovered by the proxy.
        good = deploy_bpeer_group(
            system.network, system.rendezvous, "grp-good", annotation,
            [student_lookup_operational(student_database())],
            ontology_uri=system.ontology.uri,
            advertise_qos=QosMetrics(time=0.002, cost=1.0, reliability=0.99),
        )
        bad = deploy_bpeer_group(
            system.network, system.rendezvous, "grp-bad", annotation,
            [student_lookup_operational(student_database())],
            ontology_uri=system.ontology.uri,
            advertise_qos=QosMetrics(time=0.5, cost=5.0, reliability=0.6),
        )
        system.settle(8.0)
        matches = service.proxy.group_matcher.find_all(
            annotation, [good.advertisement, bad.advertisement]
        )
        chosen = service.proxy._choose_group(matches)
        assert chosen.advertisement.name == "grp-good"
