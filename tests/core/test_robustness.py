"""Robustness integration tests: lossy networks, partitions, NAT relays.

§5 credits JXTA's transport with relay routing and NAT traversal; this
file exercises Whisper under those harder network conditions, plus the
message-loss and partition tolerance its retry/re-announce machinery
provides.
"""

import pytest

from repro.core import ScenarioConfig, WhisperSystem
from repro.soap import RequestTimeout, SoapFault


def _call(system, service, arguments, client, timeout=60.0, retries=0):
    node, soap = client
    outcome = {}

    def caller():
        try:
            outcome["value"] = yield from soap.call(
                service.address, service.path, "StudentInformation", arguments,
                timeout=timeout, retries=retries,
            )
        except (SoapFault, RequestTimeout) as error:
            outcome["error"] = error

    system.env.run(until=node.spawn(caller()))
    return outcome


class TestMessageLoss:
    def test_service_survives_moderate_loss(self):
        """10% uniform message loss: heartbeats, renewals, and proxy
        retries absorb it."""
        system = WhisperSystem(ScenarioConfig(seed=81))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        system.network.loss_rate = 0.10
        client = system.add_client("lossy-client")
        successes = 0
        for index in range(10):
            outcome = _call(
                system, service, {"ID": f"S{index + 1:05d}"}, client,
                timeout=10.0, retries=2,
            )
            if "value" in outcome:
                successes += 1
        assert successes == 10

    def test_loss_during_failover_still_recovers(self):
        system = WhisperSystem(ScenarioConfig(seed=82, heartbeat_interval=0.5, miss_threshold=2))
        service = system.deploy_student_service(system.config.replace(replicas=4))
        system.settle(6.0)
        client = system.add_client("lossy-failover-client")
        _call(system, service, {"ID": "S00001"}, client)
        system.network.loss_rate = 0.10
        service.group.crash_coordinator()
        outcome = _call(
            system, service, {"ID": "S00002"}, client, timeout=120.0, retries=2
        )
        assert "value" in outcome

    def test_total_loss_means_silence(self):
        system = WhisperSystem(ScenarioConfig(seed=83))
        service = system.deploy_student_service(system.config.replace(replicas=2))
        system.settle(6.0)
        system.network.loss_rate = 1.0
        client = system.add_client("dead-net-client")
        outcome = _call(system, service, {"ID": "S00001"}, client, timeout=2.0)
        assert isinstance(outcome["error"], RequestTimeout)


class TestPartitions:
    def test_partitioned_bpeers_recover_after_heal(self):
        system = WhisperSystem(ScenarioConfig(seed=84, heartbeat_interval=0.5, miss_threshold=2))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        client = system.add_client("partition-client")
        _call(system, service, {"ID": "S00001"}, client)
        # Cut the b-peers (and rendezvous side) off from the web server.
        bpeer_hosts = [peer.node.name for peer in service.group.peers]
        other_hosts = [
            name for name in system.network.hosts if name not in bpeer_hosts
        ]
        system.network.partition(bpeer_hosts, other_hosts)
        outcome = _call(system, service, {"ID": "S00002"}, client, timeout=5.0)
        assert "error" in outcome  # unreachable during the partition
        system.network.heal_partitions()
        system.settle(15.0)  # leases, renewals, and elections recover
        outcome = _call(system, service, {"ID": "S00003"}, client, timeout=60.0)
        assert "value" in outcome

    def test_minority_partition_of_group_masked(self):
        """One b-peer cut off: the rest of the group keeps serving."""
        system = WhisperSystem(ScenarioConfig(seed=85, heartbeat_interval=0.5, miss_threshold=2))
        service = system.deploy_student_service(system.config.replace(replicas=4))
        system.settle(6.0)
        client = system.add_client("minority-client")
        _call(system, service, {"ID": "S00001"}, client)
        isolated = service.group.peers[0].node.name
        everyone_else = [
            name for name in system.network.hosts if name != isolated
        ]
        system.network.partition([isolated], everyone_else)
        outcome = _call(system, service, {"ID": "S00002"}, client, timeout=60.0)
        assert "value" in outcome


class TestNatRelay:
    def test_nat_isolated_bpeer_serves_through_relay(self):
        """A b-peer behind NAT participates via the rendezvous relay: the
        §5 claim that the transport traverses NAT with relay peers."""
        from repro.p2p import attach_nat_peer

        system = WhisperSystem(ScenarioConfig(seed=86))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        # Re-wire one non-coordinator member as NAT-isolated, relayed by
        # the rendezvous.
        coordinator_id = service.group.coordinator_id()
        nat_peer = next(
            peer for peer in service.group.peers
            if peer.peer_id != coordinator_id
        )
        publics = [
            peer.endpoint for peer in service.group.peers if peer is not nat_peer
        ] + [service.proxy.endpoint]
        nat_peer.endpoint.nat_isolated = True
        attach_nat_peer(nat_peer.endpoint, system.rendezvous.endpoint, publics)
        system.settle(6.0)
        client = system.add_client("nat-client")
        # Normal requests flow.
        outcome = _call(system, service, {"ID": "S00001"}, client)
        assert "value" in outcome
        # Make the NAT-isolated member the only one whose backend works.
        for peer in service.group.peers:
            if peer is not nat_peer:
                peer.implementation.backend.fail()
        outcome = _call(system, service, {"ID": "S00002"}, client, timeout=60.0)
        assert "value" in outcome
        assert nat_peer.requests_executed >= 1
