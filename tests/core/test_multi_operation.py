"""Tests for multi-operation services: one b-peer group per operation."""

import pytest

from repro.backend import (
    student_database,
    student_enrollment,
    student_lookup_operational,
)
from repro.core import ScenarioConfig, WhisperSystem
from repro.soap import SoapFault
from repro.wsdl import student_admin_wsdl


@pytest.fixture
def system():
    return WhisperSystem(ScenarioConfig(seed=91))


@pytest.fixture
def deployed(system):
    database = student_database()
    service = system.deploy_service(
        student_admin_wsdl(),
        {
            "StudentInformation": [
                student_lookup_operational(database) for _ in range(2)
            ],
            "EnrollStudent": [student_enrollment(database) for _ in range(2)],
        },
    )
    system.settle(6.0)
    return service


def _call(system, service, operation, arguments):
    node, soap = system.add_client(f"client-{operation}-{system.env.now}")
    outcome = {}

    def caller():
        try:
            outcome["value"] = yield from soap.call(
                service.address, service.path, operation, arguments, timeout=30.0
            )
        except SoapFault as fault:
            outcome["error"] = fault

    system.env.run(until=node.spawn(caller()))
    return outcome


class TestMultiOperation:
    def test_two_groups_deployed(self, deployed):
        assert set(deployed.groups) == {"StudentInformation", "EnrollStudent"}
        info_group = deployed.group_for("StudentInformation")
        enroll_group = deployed.group_for("EnrollStudent")
        assert info_group.group_id != enroll_group.group_id
        assert info_group.advertisement.action != enroll_group.advertisement.action

    def test_operations_route_to_their_groups(self, system, deployed):
        outcome = _call(
            system, deployed, "StudentInformation", {"ID": "S00001"}
        )
        assert outcome["value"]["studentId"] == "S00001"
        outcome = _call(
            system, deployed, "EnrollStudent", {"ID": "S00001", "course": "X999"}
        )
        assert "X999" in outcome["value"]["enrolledCourses"]
        info_exec = deployed.group_for("StudentInformation").total_requests_executed()
        enroll_exec = deployed.group_for("EnrollStudent").total_requests_executed()
        assert info_exec == 1
        assert enroll_exec == 1

    def test_enrollment_persists(self, system, deployed):
        _call(system, deployed, "EnrollStudent", {"ID": "S00002", "course": "Z111"})
        outcome = _call(system, deployed, "StudentInformation", {"ID": "S00002"})
        assert "Z111" in outcome["value"]["enrolledCourses"]

    def test_one_group_failure_does_not_affect_other(self, system, deployed):
        for peer in deployed.group_for("EnrollStudent").peers:
            peer.node.crash()
        outcome = _call(system, deployed, "StudentInformation", {"ID": "S00003"})
        assert "value" in outcome

    def test_unknown_operations_rejected_at_deploy(self, system):
        with pytest.raises(ValueError, match="unknown operations"):
            system.deploy_service(
                student_admin_wsdl(),
                {"Ghost": [student_lookup_operational(student_database())]},
            )
