"""Unit tests for the dedup/result journal (exactly-once bookkeeping)."""

import pytest

from repro.core import DedupJournal, JournalEntry
from repro.core.journal import DONE, EXECUTING


def _done_entry(invocation_id, reply="reply", epoch=None, recorded_at=0.0):
    return JournalEntry(
        invocation_id=invocation_id,
        state=DONE,
        reply=reply,
        epoch=epoch,
        recorded_at=recorded_at,
    )


class TestBegin:
    def test_begin_marks_executing(self):
        journal = DedupJournal()
        entry = journal.begin("inv-1", request="req", epoch="e1", now=3.0)
        assert entry.state == EXECUTING
        assert entry.request == "req"
        assert entry.recorded_at == 3.0
        assert "inv-1" in journal

    def test_begin_is_idempotent(self):
        journal = DedupJournal()
        first = journal.begin("inv-1", request="req-a")
        second = journal.begin("inv-1", request="req-b")
        assert second is first
        assert len(journal) == 1
        # The latest pending request wins (it is the one a late result
        # must answer).
        assert first.request == "req-b"

    def test_begin_never_demotes_done(self):
        journal = DedupJournal()
        journal.complete("inv-1", reply="result")
        entry = journal.begin("inv-1", request="retry")
        assert entry.done
        assert entry.reply == "result"
        assert entry.request is None


class TestComplete:
    def test_first_complete_wins(self):
        journal = DedupJournal()
        journal.begin("inv-1")
        entry, first = journal.complete("inv-1", reply="A", epoch="e1", now=5.0)
        assert first
        assert entry.done
        assert entry.reply == "A"
        assert entry.epoch == "e1"

    def test_duplicate_complete_suppressed(self):
        journal = DedupJournal()
        journal.complete("inv-1", reply="A")
        entry, first = journal.complete("inv-1", reply="B")
        assert not first
        assert entry.reply == "A"  # first result wins
        assert journal.stats.duplicates_suppressed == 1

    def test_complete_without_begin(self):
        journal = DedupJournal()
        entry, first = journal.complete("inv-1", reply="A")
        assert first and entry.done


class TestAbandon:
    def test_abandon_drops_executing(self):
        journal = DedupJournal()
        journal.begin("inv-1")
        journal.abandon("inv-1")
        assert "inv-1" not in journal

    def test_abandon_never_drops_done(self):
        journal = DedupJournal()
        journal.complete("inv-1", reply="A")
        journal.abandon("inv-1")
        assert journal.lookup("inv-1").reply == "A"

    def test_abandon_unknown_is_noop(self):
        DedupJournal().abandon("ghost")


class TestMerge:
    def test_merge_installs_remote_done(self):
        journal = DedupJournal()
        assert journal.merge(_done_entry("inv-1", reply="A"))
        assert journal.lookup("inv-1").reply == "A"
        assert journal.stats.merges == 1

    def test_merge_upgrades_executing_placeholder(self):
        journal = DedupJournal()
        journal.begin("inv-1", request="pending")
        assert journal.merge(_done_entry("inv-1", reply="A"), now=7.0)
        local = journal.lookup("inv-1")
        assert local.done and local.reply == "A"
        assert local.request is None

    def test_merge_local_done_wins(self):
        journal = DedupJournal()
        journal.complete("inv-1", reply="local")
        assert not journal.merge(_done_entry("inv-1", reply="remote"))
        assert journal.lookup("inv-1").reply == "local"

    def test_merge_rejects_executing_entries(self):
        journal = DedupJournal()
        assert not journal.merge(JournalEntry(invocation_id="inv-1"))
        assert "inv-1" not in journal


class TestCrashSemantics:
    def test_drop_executing_keeps_done(self):
        journal = DedupJournal()
        journal.begin("in-flight-1")
        journal.begin("in-flight-2")
        journal.complete("finished", reply="A")
        assert journal.drop_executing() == 2
        assert "finished" in journal
        assert "in-flight-1" not in journal

    def test_export_ships_only_done_without_transients(self):
        journal = DedupJournal()
        journal.begin("in-flight", request="pending")
        journal.complete("finished", reply="A")
        exported = journal.export()
        assert [entry.invocation_id for entry in exported] == ["finished"]
        assert all(entry.request is None for entry in exported)


class TestBounds:
    def test_capacity_evicts_oldest_done(self):
        journal = DedupJournal(capacity=2)
        journal.complete("old", reply="1")
        journal.complete("mid", reply="2")
        journal.complete("new", reply="3")
        assert len(journal) == 2
        assert "old" not in journal
        assert journal.stats.evictions == 1

    def test_eviction_spares_executing(self):
        journal = DedupJournal(capacity=2)
        journal.begin("in-flight-1")
        journal.begin("in-flight-2")
        journal.complete("done-1", reply="A")
        assert "in-flight-1" in journal
        assert "in-flight-2" in journal
        assert "done-1" not in journal  # only DONE entries are evictable

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DedupJournal(capacity=0)
