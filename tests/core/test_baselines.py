"""Tests for the client-side failover baseline."""

import pytest

from repro.backend import student_database, student_lookup_operational
from repro.core import FailoverSoapClient, ReplicatedPlainService, ScenarioConfig, WhisperSystem
from repro.soap import RequestTimeout, SoapFault


@pytest.fixture
def deployment():
    system = WhisperSystem(ScenarioConfig(seed=41))
    replicated = ReplicatedPlainService(
        system,
        "StudentManagement",
        [student_lookup_operational(student_database()) for _ in range(3)],
    )
    system.settle(1.0)
    node = system.network.add_host("stub-client")
    client = FailoverSoapClient(
        node, replicated.endpoints, replicated.path, per_endpoint_timeout=1.0
    )
    return system, replicated, node, client


def _call(system, node, client, arguments, operation="StudentInformation"):
    outcome = {}

    def caller():
        try:
            outcome["value"] = yield from client.call(operation, arguments)
        except (RequestTimeout, SoapFault) as error:
            outcome["error"] = error

    system.env.run(until=node.spawn(caller()))
    return outcome


class TestFailoverClient:
    def test_happy_path_uses_first_endpoint(self, deployment):
        system, replicated, node, client = deployment
        outcome = _call(system, node, client, {"ID": "S00001"})
        assert outcome["value"]["studentId"] == "S00001"
        assert client.failovers == 0

    def test_fails_over_to_next_replica(self, deployment):
        system, replicated, node, client = deployment
        replicated.hosts()[0].crash()
        outcome = _call(system, node, client, {"ID": "S00002"})
        assert outcome["value"]["studentId"] == "S00002"
        assert client.failovers == 1

    def test_sticks_with_working_replica(self, deployment):
        system, replicated, node, client = deployment
        replicated.hosts()[0].crash()
        _call(system, node, client, {"ID": "S00001"})
        failovers_after_first = client.failovers
        _call(system, node, client, {"ID": "S00002"})
        assert client.failovers == failovers_after_first  # no re-probe of dead one

    def test_all_replicas_down_raises(self, deployment):
        system, replicated, node, client = deployment
        for host in replicated.hosts():
            host.crash()
        outcome = _call(system, node, client, {"ID": "S00001"})
        assert isinstance(outcome["error"], RequestTimeout)
        assert client.failovers == 3

    def test_application_faults_not_retried(self, deployment):
        system, replicated, node, client = deployment
        outcome = _call(system, node, client, {"ID": "S99999"})
        assert isinstance(outcome["error"], SoapFault)
        assert client.failovers == 0

    def test_failover_latency_is_one_timeout(self, deployment):
        """Client-side failover pays one per-endpoint timeout — faster than
        Whisper's detection+election, but at the price of every client
        knowing the replica set (no transparency)."""
        system, replicated, node, client = deployment
        _call(system, node, client, {"ID": "S00001"})
        replicated.hosts()[0].crash()
        # Force the stub back to the dead endpoint.
        client._preferred = 0
        started = system.env.now
        outcome = _call(system, node, client, {"ID": "S00002"})
        elapsed = system.env.now - started
        assert "value" in outcome
        assert 1.0 <= elapsed < 2.0  # ~ the 1s per-endpoint timeout

    def test_requires_endpoints(self, deployment):
        system, _replicated, node, _client = deployment
        with pytest.raises(ValueError):
            FailoverSoapClient(node, [], "/x")
