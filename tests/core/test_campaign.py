"""Property-style tests for the seeded fault-campaign runner."""

import pytest

from repro.core import CampaignReport, FaultCampaign


def _run(seed, **kwargs):
    defaults = dict(duration=45.0, replicas=4, mtbf=20.0, mttr=8.0, partitions=1)
    defaults.update(kwargs)
    return FaultCampaign(seed=seed, **defaults).run()


class TestInvariants:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_invariants_hold_across_seeds(self, seed):
        report = _run(seed)
        assert report.ok, report.violations
        assert report.probes > 0
        assert 0.0 < report.availability <= 1.0
        # Faults actually happened and recovery actually ran.
        assert report.crashes > 0
        assert report.epochs_announced >= 1
        assert report.live_coordinators <= 1

    def test_campaign_is_deterministic_per_seed(self):
        first = _run(13)
        second = _run(13)
        assert first.probes_ok == second.probes_ok
        assert first.probes_failed == second.probes_failed
        assert first.crashes == second.crashes
        assert first.restarts == second.restarts
        assert first.epochs_announced == second.epochs_announced
        assert first.rebinds == second.rebinds
        assert first.violations == second.violations

    def test_quiet_campaign_masks_everything(self):
        """With no injected faults every probe must succeed."""
        report = _run(5, mtbf=1e9, partitions=0)
        assert report.ok
        assert report.crashes == 0
        assert report.probes_failed == 0
        assert report.availability == 1.0


class TestReport:
    def test_format_lists_violations(self):
        report = CampaignReport(seed=1, duration=10.0)
        report.violations.append("h0: crash while already down")
        assert not report.ok
        text = report.format()
        assert "INVARIANT VIOLATIONS" in text
        assert "crash while already down" in text

    def test_format_reports_clean_run(self):
        report = CampaignReport(seed=1, duration=10.0, probes_ok=20)
        assert report.ok
        assert report.availability == 1.0
        assert "all hold" in report.format()
