"""Unit tests for the consistent-hash shard ring and router."""

import pytest

from repro.core.sharding import (
    SCATTER_POLICIES,
    ScatterError,
    ScatterResult,
    ShardRing,
    ShardRouter,
    shard_key,
)


def _ring(members, virtual_nodes=64):
    ring = ShardRing(virtual_nodes=virtual_nodes)
    for member in members:
        ring.add(member)
    return ring


KEYS = [f"EnrollStudent|{{\"ID\": \"S{i:05d}\"}}" for i in range(1, 301)]


class TestShardKey:
    def test_deterministic_across_argument_order(self):
        a = shard_key("Enroll", {"ID": "S1", "Course": "cs"})
        b = shard_key("Enroll", {"Course": "cs", "ID": "S1"})
        assert a == b

    def test_distinct_actions_and_arguments_differ(self):
        base = shard_key("Enroll", {"ID": "S1"})
        assert shard_key("Lookup", {"ID": "S1"}) != base
        assert shard_key("Enroll", {"ID": "S2"}) != base


class TestShardRing:
    def test_lookup_deterministic(self):
        ring = _ring(["g0", "g1", "g2", "g3"])
        other = _ring(["g3", "g1", "g0", "g2"])  # insertion order irrelevant
        for key in KEYS:
            assert ring.lookup(key) == other.lookup(key)

    def test_empty_ring_returns_none(self):
        assert ShardRing().lookup("anything") is None

    def test_every_member_owns_some_segment(self):
        ring = _ring(["g0", "g1", "g2", "g3"])
        owners = {ring.lookup(key) for key in KEYS}
        assert owners == {"g0", "g1", "g2", "g3"}

    def test_removal_remaps_only_victims_segment(self):
        """The consistent-hashing property: removing one member changes
        ownership only for keys the victim owned."""
        ring = _ring(["g0", "g1", "g2", "g3"])
        before = {key: ring.lookup(key) for key in KEYS}
        ring.remove("g2")
        for key, owner in before.items():
            after = ring.lookup(key)
            if owner == "g2":
                assert after != "g2"
            else:
                assert after == owner

    def test_exclusion_equals_removal(self):
        """Suspecting a member routes exactly like removing it — only its
        segment walks to the clockwise successors."""
        ring = _ring(["g0", "g1", "g2", "g3"])
        shrunk = _ring(["g0", "g1", "g3"])
        for key in KEYS:
            assert ring.lookup(key, exclude=frozenset({"g2"})) == shrunk.lookup(key)

    def test_excluding_everyone_falls_back_to_full_ring(self):
        ring = _ring(["g0", "g1"])
        everyone = frozenset({"g0", "g1"})
        assert ring.lookup(KEYS[0], exclude=everyone) == ring.lookup(KEYS[0])

    def test_virtual_nodes_balance_distribution(self):
        ring = _ring(["g0", "g1", "g2", "g3"], virtual_nodes=64)
        fractions = [ring.segment_fraction(f"g{i}") for i in range(4)]
        assert pytest.approx(sum(fractions), abs=0.01) == 1.0
        for fraction in fractions:
            assert 0.10 < fraction < 0.45  # no starved or dominant shard

    def test_add_is_idempotent(self):
        ring = _ring(["g0", "g1"])
        points_before = len(ring._points)
        ring.add("g0")
        assert len(ring._points) == points_before

    def test_rejects_zero_virtual_nodes(self):
        with pytest.raises(ValueError):
            ShardRing(virtual_nodes=0)


class TestShardRouter:
    def test_update_is_additive(self):
        router = ShardRouter()
        router.update(["g0", "g1", "g2", "g3"])
        before = {key: router.route(key, now=0.0) for key in KEYS}
        # A partial re-discovery must not shrink the ring.
        router.update(["g1"])
        assert {key: router.route(key, now=0.0) for key in KEYS} == before

    def test_suspicion_reroutes_then_expires(self):
        router = ShardRouter(suspect_interval=5.0)
        router.update(["g0", "g1", "g2", "g3"])
        victim_keys = [key for key in KEYS if router.route(key, now=0.0) == "g0"]
        assert victim_keys
        router.suspect("g0", now=0.0)
        for key in victim_keys:
            assert router.route(key, now=1.0) != "g0"
        # Non-victim keys keep their owner while g0 is suspected.
        for key in KEYS:
            if key not in victim_keys:
                assert router.route(key, now=1.0) == router.route(key, now=6.0)
        # After the suspicion lapses, the segment returns home.
        for key in victim_keys:
            assert router.route(key, now=6.0) == "g0"

    def test_route_home_ignores_suspicions(self):
        router = ShardRouter()
        router.update(["g0", "g1"])
        key = KEYS[0]
        home = router.route_home(key)
        router.suspect(home, now=0.0)
        assert router.route_home(key) == home


class TestScatterResult:
    def _result(self, policy, ok, failed):
        result = ScatterResult(operation="op", policy=policy, shards=ok + failed)
        for index in range(ok):
            result.results[f"g{index}"] = object()
        for index in range(failed):
            result.failures[f"g{ok + index}"] = "timeout"
        return result

    def test_policy_all_rejects_any_failure(self):
        self._result("all", ok=4, failed=0).evaluate()
        with pytest.raises(ScatterError):
            self._result("all", ok=3, failed=1).evaluate()

    def test_policy_quorum_needs_strict_majority(self):
        self._result("quorum", ok=3, failed=1).evaluate()
        with pytest.raises(ScatterError):
            self._result("quorum", ok=2, failed=2).evaluate()

    def test_policy_partial_needs_one_success(self):
        degraded = self._result("partial", ok=1, failed=3)
        degraded.evaluate()
        assert degraded.partial
        with pytest.raises(ScatterError):
            self._result("partial", ok=0, failed=4).evaluate()

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            self._result("best-effort", ok=1, failed=0).evaluate()

    def test_policy_names_are_stable(self):
        assert SCATTER_POLICIES == ("all", "quorum", "partial")
