"""End-to-end integration tests for the Whisper system.

These exercise the full architecture of the paper's Figures 1-3: SOAP
client -> Web service -> SWS-proxy -> semantic discovery -> b-peer group
(Bully-coordinated) -> backend, including both failure modes the paper
motivates (coordinator crash; backend outage).
"""

import pytest

from repro.core import ScenarioConfig, WhisperSystem
from repro.soap import RequestTimeout, SoapClient, SoapFault


def call_once(system, service, arguments, timeout=60.0, client=None):
    """Synchronous-style helper around one SOAP call."""
    if client is None:
        node, soap = system.add_client(f"cli-{system.env.now}")
    else:
        node, soap = client
    outcome = {}

    def caller():
        try:
            outcome["value"] = yield from soap.call(
                service.address, service.path, "StudentInformation", arguments,
                timeout=timeout,
            )
        except (SoapFault, RequestTimeout) as error:
            outcome["error"] = error

    system.env.run(until=node.spawn(caller()))
    return outcome


@pytest.fixture
def system():
    sys_ = WhisperSystem(ScenarioConfig(seed=11))
    return sys_


class TestHappyPath:
    def test_end_to_end_invocation(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=4))
        system.settle(6.0)
        outcome = call_once(system, service, {"ID": "S00042"})
        assert outcome["value"]["studentId"] == "S00042"
        assert outcome["value"]["name"]

    def test_unknown_student_is_client_fault(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=2))
        system.settle(6.0)
        outcome = call_once(system, service, {"ID": "S99999"})
        assert isinstance(outcome["error"], SoapFault)
        assert outcome["error"].faultcode == "Client"

    def test_unknown_operation_is_client_fault(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=2))
        system.settle(6.0)
        node, soap = system.add_client()
        outcome = {}

        def caller():
            try:
                yield from soap.call(service.address, service.path, "Ghost", {})
            except SoapFault as fault:
                outcome["error"] = fault

        system.env.run(until=node.spawn(caller()))
        assert outcome["error"].faultcode == "Client"

    def test_common_case_latency_is_milliseconds(self, system):
        """§5: the average RTT on the LAN is sub-millisecond at the packet
        level; end-to-end SOAP invocations stay in the low milliseconds."""
        service = system.deploy_student_service(system.config.replace(replicas=4))
        system.settle(6.0)
        client = system.add_client("steady-client")
        latencies = []
        for index in range(10):
            start = system.env.now
            outcome = call_once(system, service, {"ID": f"S{index + 1:05d}"}, client=client)
            assert "value" in outcome
            latencies.append(system.env.now - start)
        assert max(latencies[1:]) < 0.05  # warm calls: a few ms each

    def test_proxy_discovers_once_then_caches(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=2))
        system.settle(6.0)
        client = system.add_client("cache-client")
        for index in range(3):
            call_once(system, service, {"ID": f"S{index + 1:05d}"}, client=client)
        assert service.proxy.stats.remote_discoveries == 1

    def test_multiple_services_coexist(self, system):
        from repro.backend import claim_assessment, claims_database
        from repro.wsdl import insurance_claims_wsdl

        student = system.deploy_student_service(system.config.replace(replicas=2))
        claims = system.deploy_service(
            insurance_claims_wsdl(),
            [claim_assessment(claims_database()) for _ in range(2)],
        )
        system.settle(6.0)
        outcome = call_once(system, student, {"ID": "S00001"})
        assert "value" in outcome

        node, soap = system.add_client("claims-client")
        claims_outcome = {}

        def caller():
            claims_outcome["value"] = yield from soap.call(
                claims.address, claims.path, "ProcessClaim", {"request": "C00001"},
                timeout=30.0,
            )

        system.env.run(until=node.spawn(caller()))
        assert claims_outcome["value"]["claimId"] == "C00001"


class TestCoordinatorFailover:
    def test_invocation_survives_coordinator_crash(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=4))
        system.settle(6.0)
        client = system.add_client("failover-client")
        call_once(system, service, {"ID": "S00001"}, client=client)  # bind
        victim = service.group.coordinator_peer()
        victim.node.crash()
        outcome = call_once(system, service, {"ID": "S00002"}, client=client)
        assert outcome["value"]["studentId"] == "S00002"
        assert service.proxy.stats.rebinds >= 1

    def test_failover_latency_is_seconds(self, system):
        """§5: worst-case RTT reaches several seconds (detection + election
        + re-binding)."""
        service = system.deploy_student_service(system.config.replace(replicas=4))
        system.settle(6.0)
        client = system.add_client("worst-case-client")
        call_once(system, service, {"ID": "S00001"}, client=client)
        service.group.crash_coordinator()
        start = system.env.now
        outcome = call_once(system, service, {"ID": "S00002"}, client=client)
        elapsed = system.env.now - start
        assert "value" in outcome
        assert 1.0 < elapsed < 30.0
        assert service.proxy.stats.failover_durations

    def test_new_coordinator_differs(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        old = service.group.coordinator_id()
        service.group.crash_coordinator()
        client = system.add_client("c")
        call_once(system, service, {"ID": "S00003"}, client=client)
        system.settle(10.0)
        new = service.group.coordinator_id()
        assert new is not None
        assert new != old

    def test_two_sequential_failovers(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=4))
        system.settle(6.0)
        client = system.add_client("double-failover")
        for _round in range(2):
            call_once(system, service, {"ID": "S00001"}, client=client)
            service.group.crash_coordinator()
            outcome = call_once(system, service, {"ID": "S00002"}, client=client)
            assert "value" in outcome
        assert len(service.group.alive_peers()) == 2

    def test_all_replicas_down_times_out(self, system):
        """With every b-peer dead there is nobody to elect: the client sees
        the §1 failure mode (no fault, just silence/timeouts)."""
        service = system.deploy_student_service(system.config.replace(replicas=2))
        system.settle(6.0)
        for peer in service.group.peers:
            peer.node.crash()
        outcome = call_once(system, service, {"ID": "S00001"}, timeout=15.0)
        assert "error" in outcome


class TestBackendFailover:
    def test_db_outage_served_by_equivalent_peer(self, system):
        """§4.1: operational DB down -> semantically equivalent peer answers
        (possibly from the data warehouse)."""
        service = system.deploy_student_service(system.config.replace(replicas=4))
        system.settle(6.0)
        coordinator = service.group.coordinator_peer()
        coordinator.implementation.backend.fail()
        outcome = call_once(system, service, {"ID": "S00010"})
        assert outcome["value"]["studentId"] == "S00010"
        assert coordinator.requests_delegated >= 1

    def test_warehouse_source_used_when_all_dbs_down(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=4))
        system.settle(6.0)
        for peer in service.group.peers:
            if peer.implementation.flavour == "operational":
                peer.implementation.backend.fail()
        outcome = call_once(system, service, {"ID": "S00011"})
        assert outcome["value"]["source"] == "data-warehouse"

    def test_every_backend_down_is_server_fault(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        for peer in service.group.peers:
            peer.implementation.backend.fail()
        outcome = call_once(system, service, {"ID": "S00012"})
        assert isinstance(outcome["error"], SoapFault)
        assert outcome["error"].faultcode == "Server"

    def test_backend_recovery_restores_service(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=2, warehouse_every=0))
        system.settle(6.0)
        for peer in service.group.peers:
            peer.implementation.backend.fail()
        call_once(system, service, {"ID": "S00001"})
        for peer in service.group.peers:
            peer.implementation.backend.restore()
        outcome = call_once(system, service, {"ID": "S00001"})
        assert "value" in outcome


class TestCrashRestart:
    def test_replica_restart_rejoins_group(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        victim = service.group.peers[0]
        victim.node.crash()
        system.settle(8.0)
        victim.node.restart()
        system.settle(12.0)
        # The restarted peer is a member again and knows the coordinator.
        assert victim.groups.is_member(victim.group_id)
        assert len(victim.groups.members(victim.group_id)) == 3

    def test_invocations_flow_after_restart(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        victim = service.group.coordinator_peer()
        victim.node.crash()
        client = system.add_client("restart-client")
        call_once(system, service, {"ID": "S00001"}, client=client)
        victim.node.restart()
        system.settle(12.0)
        outcome = call_once(system, service, {"ID": "S00002"}, client=client)
        assert "value" in outcome


class TestLoadSharing:
    def test_member_backend_outage_masked_under_load_sharing(self):
        """With load sharing on, a member whose backend is down chains to a
        healthy replica instead of bouncing cannot-serve to the proxy."""
        system = WhisperSystem(ScenarioConfig(seed=14, load_sharing=True))
        service = system.deploy_student_service(system.config.replace(replicas=4))
        system.settle(6.0)
        # Fail one *non-coordinator* member's backend.
        coordinator_id = service.group.coordinator_id()
        broken = next(
            peer for peer in service.group.peers
            if peer.peer_id != coordinator_id
        )
        broken.implementation.backend.fail()
        client = system.add_client("ls-outage-client")
        for index in range(8):  # round-robin will hit the broken member
            outcome = call_once(
                system, service, {"ID": f"S{index + 1:05d}"}, client=client
            )
            assert "value" in outcome, (index, outcome)
        assert broken.requests_delegated >= 1

    def test_round_robin_spreads_requests(self):
        system = WhisperSystem(ScenarioConfig(seed=13, load_sharing=True))
        service = system.deploy_student_service(system.config.replace(replicas=4))
        system.settle(6.0)
        client = system.add_client("spread-client")
        for index in range(12):
            outcome = call_once(
                system, service, {"ID": f"S{index + 1:05d}"}, client=client
            )
            assert "value" in outcome
        executors = [p.requests_executed for p in service.group.peers]
        assert sum(executors) == 12
        assert sum(1 for count in executors if count > 0) >= 3
