"""Unit tests for the pluggable dispatch policies."""

import pytest

from repro.core import ScenarioConfig, WhisperSystem
from repro.core.dispatch import (
    DISPATCH_POLICIES,
    DispatchPolicy,
    LeastOutstandingDispatch,
    MemberLoad,
    QosWeightedDispatch,
    RoundRobinDispatch,
    dispatch_policy,
)
from repro.p2p.ids import PeerId
from repro.qos.metrics import QosMetrics


def _peers(count):
    return [PeerId.from_name(f"member-{index}") for index in range(count)]


class TestRoundRobin:
    def test_cycles_over_sorted_identity(self):
        members = _peers(3)
        ordered = sorted(members, key=str)
        policy = RoundRobinDispatch()
        picks = [policy.choose(members, {}) for _ in range(6)]
        assert picks == ordered + ordered

    def test_rotation_independent_of_view_order(self):
        members = _peers(3)
        ordered = sorted(members, key=str)
        policy = RoundRobinDispatch()
        # Present the view in a different order each call: rotation is
        # over member identity, not list position.
        views = [members, list(reversed(members)), members[1:] + members[:1]]
        picks = [policy.choose(view, {}) for view in views]
        assert picks == ordered

    def test_empty_view_returns_none(self):
        assert RoundRobinDispatch().choose([], {}) is None

    def test_no_skip_or_double_serve_on_view_growth(self):
        members = _peers(2)
        ordered = sorted(members, key=str)
        policy = RoundRobinDispatch()
        assert policy.choose(members, {}) == ordered[0]
        grown = sorted(members + _peers(3)[2:], key=str)
        # The next pick is the next identity after the last-served one in
        # the grown view — nobody gets skipped or served twice.
        expected = next(m for m in grown if str(m) > str(ordered[0]))
        assert policy.choose(grown, {}) == expected

    def test_no_double_serve_when_member_departs(self):
        """Shrinking the view mid-rotation must not re-serve a member
        that was already served this cycle (the old positional-cursor
        bug)."""
        members = sorted(_peers(3), key=str)
        policy = RoundRobinDispatch()
        first = policy.choose(members, {})
        assert first == members[0]
        second = policy.choose(members, {})
        assert second == members[1]
        # members[1] departs; the rotation continues at members[2], it
        # does NOT wrap back and double-serve members[0].
        shrunk = [members[0], members[2]]
        assert policy.choose(shrunk, {}) == members[2]
        assert policy.choose(shrunk, {}) == members[0]

    def test_wraps_after_last_member(self):
        members = sorted(_peers(2), key=str)
        policy = RoundRobinDispatch()
        assert policy.choose(members, {}) == members[0]
        assert policy.choose(members, {}) == members[1]
        assert policy.choose(members, {}) == members[0]


class TestLeastOutstanding:
    def test_picks_least_loaded(self):
        members = _peers(3)
        load = {
            members[0]: MemberLoad(outstanding=2),
            members[1]: MemberLoad(outstanding=0),
            members[2]: MemberLoad(outstanding=5),
        }
        assert LeastOutstandingDispatch().choose(members, load) == members[1]

    def test_unseen_member_counts_as_idle(self):
        members = _peers(2)
        load = {members[0]: MemberLoad(outstanding=1)}
        assert LeastOutstandingDispatch().choose(members, load) == members[1]

    def test_tie_breaks_on_stable_id_order(self):
        members = _peers(4)
        load = {member: MemberLoad(outstanding=3) for member in members}
        expected = min(members, key=str)
        policy = LeastOutstandingDispatch()
        # Deterministic: the same tie resolves the same way every time,
        # regardless of the order the view presents the members in.
        assert policy.choose(members, load) == expected
        assert policy.choose(list(reversed(members)), load) == expected

    def test_empty_view_returns_none(self):
        assert LeastOutstandingDispatch().choose([], {}) is None


class TestQosWeighted:
    def test_prefers_reported_faster_member(self):
        members = _peers(2)
        load = {
            members[0]: MemberLoad(qos=QosMetrics(time=0.100, cost=1.0, reliability=1.0)),
            members[1]: MemberLoad(qos=QosMetrics(time=0.005, cost=1.0, reliability=1.0)),
        }
        assert QosWeightedDispatch().choose(members, load) == members[1]

    def test_backlog_inflates_effective_time(self):
        """A fast member with a deep queue loses to a slower idle one."""
        members = _peers(2)
        load = {
            members[0]: MemberLoad(
                outstanding=9, qos=QosMetrics(time=0.005, cost=1.0, reliability=1.0)
            ),
            members[1]: MemberLoad(
                outstanding=0, qos=QosMetrics(time=0.020, cost=1.0, reliability=1.0)
            ),
        }
        assert QosWeightedDispatch().choose(members, load) == members[1]

    def test_unreported_member_uses_default_prior(self):
        members = _peers(2)
        load = {
            members[0]: MemberLoad(qos=QosMetrics(time=5.0, cost=1.0, reliability=1.0)),
        }
        # The unreported member gets the (much better) default prior.
        assert QosWeightedDispatch().choose(members, load) == members[1]

    def test_empty_view_returns_none(self):
        assert QosWeightedDispatch().choose([], {}) is None

    def test_default_prior_is_immutable_and_shared_safely(self):
        import dataclasses

        policy = QosWeightedDispatch()
        with pytest.raises(dataclasses.FrozenInstanceError):
            policy.default_qos.time = 99.0  # type: ignore[misc]
        with pytest.raises(AttributeError):
            policy.default_qos = QosMetrics(time=1.0, cost=1.0, reliability=1.0)
        # A fresh instance still sees the pristine class default.
        assert QosWeightedDispatch().default_qos == QosWeightedDispatch.DEFAULT_QOS

    def test_default_prior_constructor_override(self):
        prior = QosMetrics(time=9.0, cost=1.0, reliability=1.0)
        policy = QosWeightedDispatch(default_qos=prior)
        assert policy.default_qos is prior
        members = _peers(2)
        load = {
            members[0]: MemberLoad(qos=QosMetrics(time=5.0, cost=1.0, reliability=1.0)),
        }
        # With a *worse* prior, the reported member wins (inverse of
        # test_unreported_member_uses_default_prior).
        assert policy.choose(members, load) == members[0]


class TestFactory:
    def test_none_defaults_to_round_robin(self):
        assert isinstance(dispatch_policy(None), RoundRobinDispatch)

    def test_instance_passes_through(self):
        policy = LeastOutstandingDispatch()
        assert dispatch_policy(policy) is policy

    def test_names_resolve_to_fresh_instances(self):
        for name, cls in DISPATCH_POLICIES.items():
            first, second = dispatch_policy(name), dispatch_policy(name)
            assert isinstance(first, cls)
            assert first is not second  # policies are stateful

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="least-outstanding"):
            dispatch_policy("fastest-first")

    def test_registry_names_match_policy_names(self):
        for name, cls in DISPATCH_POLICIES.items():
            assert cls.name == name
            assert issubclass(cls, DispatchPolicy)


class TestCrashedMemberSkip:
    def test_failed_coordinator_leaves_view_and_ledger(self):
        """When the coordinator crashes, the failure detector removes it
        from the surviving members' group view, so the new coordinator's
        dispatch never chooses it; any ledger entry for it (with in-flight
        counts it would otherwise leak) is dropped too."""
        system = WhisperSystem(
            ScenarioConfig(
                seed=1301,
                replicas=3,
                load_sharing=True,
                dispatch="least-outstanding",
                heartbeat_interval=0.5,
                miss_threshold=2,
            )
        )
        service = system.deploy_student_service()
        system.settle(6.0)
        old = service.group.coordinator_peer()
        survivor = next(
            peer for peer in service.group.peers if peer is not old
        )
        # Pretend the survivor had delegated work toward the doomed peer.
        survivor._load_for(old.peer_id).outstanding = 3
        old.node.crash()
        system.settle(4.0)  # detection (1s) + re-election with margin

        new = service.group.coordinator_peer()
        assert new is not old
        members = new._dispatch_members()
        assert old.peer_id not in members
        assert new.peer_id in members
        assert old.peer_id not in new._member_load
        # And the policy can only pick live members.
        for _ in range(6):
            assert new._dispatch_target() in members

    def test_follower_crash_is_masked_by_retry_not_detected(self):
        """Followers are not heartbeat-monitored (only the coordinator
        is), so a crashed follower stays in the view; the proxy's
        timeout-and-retry masks misdispatched requests instead."""
        system = WhisperSystem(
            ScenarioConfig(
                seed=1307,
                replicas=3,
                load_sharing=True,
                dispatch="round-robin",
                request_timeout=0.5,
            )
        )
        service = system.deploy_student_service()
        system.settle(6.0)
        coordinator = service.group.coordinator_peer()
        victim = next(
            peer for peer in service.group.peers if peer is not coordinator
        )
        victim.node.crash()
        system.settle(2.0)
        outcome = {}

        def runner():
            result = yield from service.proxy.invoke(
                "StudentInformation", {"ID": "S00001"}
            )
            outcome["result"] = result

        system.env.run(until=service.proxy.node.spawn(runner()))
        assert outcome["result"].value["studentId"] == "S00001"
