"""Unit tests for the deadline-budgeted retry primitives."""

import random

import pytest

from repro.core import Deadline, RetryPolicy, ScenarioConfig, WhisperSystem
from repro.core.errors import InvocationFailedError


class TestRetryPolicy:
    def test_without_jitter_delays_are_exact_exponential(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=2.0, jitter=0.0)
        rng = random.Random(1)
        delays = [policy.delay(attempt, rng) for attempt in range(6)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8, 1.6, 2.0])

    def test_max_delay_caps_the_raw_backoff(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=3.0, jitter=0.0)
        assert policy.delay(5, random.Random(1)) == 3.0

    def test_jitter_stays_within_fraction_of_raw(self):
        policy = RetryPolicy(base_delay=0.5, multiplier=1.0, max_delay=5.0, jitter=0.4)
        rng = random.Random(7)
        for _ in range(200):
            delay = policy.delay(0, rng)
            assert 0.5 * (1 - 0.4) <= delay <= 0.5 * (1 + 0.4)

    def test_seeded_rng_makes_delays_reproducible(self):
        policy = RetryPolicy()
        first = [policy.delay(i, random.Random(99)) for i in range(5)]
        second = [policy.delay(i, random.Random(99)) for i in range(5)]
        assert first == second


class TestDeadline:
    def test_remaining_counts_down_and_floors_at_zero(self):
        deadline = Deadline(at=10.0)
        assert deadline.remaining(4.0) == 6.0
        assert deadline.remaining(10.0) == 0.0
        assert deadline.remaining(15.0) == 0.0

    def test_expired_is_inclusive(self):
        deadline = Deadline(at=10.0)
        assert not deadline.expired(9.999)
        assert deadline.expired(10.0)
        assert deadline.expired(11.0)

    def test_clamp_caps_phase_timeouts_to_budget(self):
        deadline = Deadline(at=10.0)
        assert deadline.clamp(0.0, 3.0) == 3.0
        assert deadline.clamp(8.0, 3.0) == 2.0
        assert deadline.clamp(12.0, 3.0) == 0.0


class TestProxyDeadline:
    def test_invoke_fails_fast_when_budget_exhausted(self):
        """With every replica down, the proxy must give up once the
        request budget runs out — not after a fixed attempt count."""
        system = WhisperSystem(ScenarioConfig(seed=77, heartbeat_interval=0.5, miss_threshold=2))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        for peer in service.group.peers:
            peer.node.crash()
        proxy = service.proxy
        started = system.env.now
        outcome = {}

        def runner():
            try:
                result = yield from proxy.invoke(
                    "StudentInformation", {"ID": "S00001"}, budget=3.0
                )
                outcome["value"] = result.value
            except Exception as error:  # noqa: BLE001 - captured for assertions
                outcome["error"] = error

        system.env.run(until=proxy.node.spawn(runner()))
        elapsed = system.env.now - started
        assert isinstance(outcome["error"], InvocationFailedError)
        assert "deadline" in str(outcome["error"])
        assert proxy.stats.deadline_exhausted == 1
        # Gave up close to the budget, not after max_attempts * timeout.
        assert 2.0 <= elapsed <= 6.0
