"""Circuit breaker: transition table and live proxy integration.

The unit half drives :class:`~repro.core.breaker.CircuitBreaker`
directly through every edge of the closed/open/half-open state machine.
The integration half crashes a whole b-peer group under a breaker-armed
proxy and checks the breaker trips, rejects locally (or degrades via a
fallback handler), and heals through a half-open probe — across seeds.
"""

import pytest

from repro.core.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerSpec,
    CircuitBreaker,
)
from repro.check.invariants import breaker_violations
from repro.core.config import ScenarioConfig
from repro.core.errors import CircuitOpenError
from repro.core.result import InvokeOutcome
from repro.core.system import WhisperSystem

SPEC = BreakerSpec(window=8, min_calls=4, failure_threshold=0.5, open_duration=2.0)
#: Float roundoff guard: (t + open_duration) - t can land a hair under.
EPS = 1e-6


# -- spec validation -----------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(window=0),
        dict(min_calls=0),
        dict(window=4, min_calls=5),
        dict(failure_threshold=0.0),
        dict(failure_threshold=1.5),
        dict(open_duration=0.0),
        dict(half_open_probes=0),
    ],
)
def test_spec_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        BreakerSpec(**kwargs)


# -- closed --------------------------------------------------------------------------


def test_closed_allows_and_stays_closed_on_success():
    breaker = CircuitBreaker(SPEC)
    for t in range(20):
        assert breaker.allow(float(t))
        breaker.record_success(float(t))
    assert breaker.state == CLOSED
    assert breaker.transitions == []
    assert breaker.rejections == []


def test_no_trip_below_min_calls():
    breaker = CircuitBreaker(SPEC)
    for t in range(SPEC.min_calls - 1):
        breaker.record_failure(float(t))
    assert breaker.state == CLOSED, "tripped on thin evidence"


def test_trips_at_threshold_with_min_calls():
    breaker = CircuitBreaker(SPEC)
    for t in range(SPEC.min_calls):
        breaker.record_failure(float(t))
    assert breaker.state == OPEN
    trip = breaker.transitions[-1]
    assert (trip.source, trip.target) == (CLOSED, OPEN)
    assert trip.calls >= SPEC.min_calls
    assert trip.failures / trip.calls >= SPEC.failure_threshold


def test_no_trip_below_failure_threshold():
    breaker = CircuitBreaker(SPEC)
    # Failure rate stays below 0.5 at every sample: must stay closed.
    outcomes = [True, True, True, True, True, False, True, False]
    for t, ok in enumerate(outcomes):
        if ok:
            breaker.record_success(float(t))
        else:
            breaker.record_failure(float(t))
    assert breaker.state == CLOSED


def test_window_slides_old_failures_out():
    breaker = CircuitBreaker(SPEC)
    for t in range(3):
        breaker.record_failure(float(t))
    # A run of successes pushes the early failures out of the window;
    # one more failure then lands in a healthy window and must not trip.
    for t in range(3, 3 + SPEC.window):
        breaker.record_success(float(t))
    breaker.record_failure(99.0)
    assert breaker.state == CLOSED


# -- open ----------------------------------------------------------------------------


def trip(breaker: CircuitBreaker, at: float = 0.0) -> None:
    for i in range(breaker.spec.min_calls):
        breaker.record_failure(at + i * 0.01)
    assert breaker.state == OPEN


def test_open_rejects_until_duration_elapses():
    breaker = CircuitBreaker(SPEC)
    trip(breaker, at=0.0)
    opened = breaker.transitions[-1].at
    assert not breaker.allow(opened + SPEC.open_duration / 2)
    breaker.reject(opened + SPEC.open_duration / 2)
    assert breaker.rejections == [opened + SPEC.open_duration / 2]


def test_open_moves_to_half_open_when_ripe():
    breaker = CircuitBreaker(SPEC)
    trip(breaker, at=0.0)
    opened = breaker.transitions[-1].at
    assert breaker.allow(opened + SPEC.open_duration + EPS)
    assert breaker.state == HALF_OPEN
    assert breaker.transitions[-1].target == HALF_OPEN


# -- half-open -----------------------------------------------------------------------


def to_half_open(breaker: CircuitBreaker) -> float:
    trip(breaker, at=0.0)
    now = breaker.transitions[-1].at + breaker.spec.open_duration + EPS
    assert breaker.allow(now)
    return now


def test_half_open_probe_success_closes_and_resets_window():
    breaker = CircuitBreaker(SPEC)
    now = to_half_open(breaker)
    breaker.record_success(now + 0.1)
    assert breaker.state == CLOSED
    assert breaker.calls_in_window == 0, "window must reset on close"
    # A single fresh failure must not re-trip off stale evidence.
    breaker.record_failure(now + 0.2)
    assert breaker.state == CLOSED


def test_half_open_probe_failure_reopens():
    breaker = CircuitBreaker(SPEC)
    now = to_half_open(breaker)
    breaker.record_failure(now + 0.1)
    assert breaker.state == OPEN
    # ...and the new open interval runs a full open_duration again.
    assert not breaker.allow(now + 0.1 + SPEC.open_duration / 2)
    assert breaker.allow(now + 0.1 + SPEC.open_duration + EPS)


def test_half_open_caps_concurrent_probes():
    spec = BreakerSpec(window=8, min_calls=4, failure_threshold=0.5,
                       open_duration=2.0, half_open_probes=2)
    breaker = CircuitBreaker(spec)
    trip(breaker, at=0.0)
    now = breaker.transitions[-1].at + spec.open_duration + EPS
    assert breaker.allow(now)        # open -> half-open, probe #1
    assert breaker.allow(now)        # probe #2
    assert not breaker.allow(now)    # over the cap
    breaker.record_success(now + 0.1)
    assert breaker.state == CLOSED


def test_open_intervals_cover_rejections():
    breaker = CircuitBreaker(SPEC)
    trip(breaker, at=1.0)
    rejected_at = breaker.transitions[-1].at + 0.5
    breaker.reject(rejected_at)
    now = breaker.transitions[-1].at + SPEC.open_duration + EPS
    assert breaker.allow(now)
    breaker.record_success(now + 0.1)
    spans = breaker.open_intervals(horizon=100.0)
    assert len(spans) == 1
    start, end = spans[0]
    assert start <= rejected_at <= end
    assert end < 100.0, "interval closed by the probe success"


def test_open_intervals_caps_trailing_span_at_horizon():
    breaker = CircuitBreaker(SPEC)
    trip(breaker, at=1.0)
    spans = breaker.open_intervals(horizon=7.0)
    assert spans[-1][1] == 7.0


# -- live proxy integration ----------------------------------------------------------


def drill_system(seed: int):
    system = WhisperSystem(
        ScenarioConfig(
            seed=seed,
            replicas=2,
            load_sharing=True,
            circuit_breaker=BreakerSpec(
                window=8, min_calls=2, failure_threshold=0.5, open_duration=2.0
            ),
            request_timeout=0.5,
            deadline_budget=2.0,
        )
    )
    service = system.deploy_student_service()
    system.settle(6.0)
    return system, service


@pytest.mark.parametrize("seed", [7, 11, 42], indirect=True)
def test_breaker_trips_rejects_and_heals(seed):
    """Dead group trips the breaker; restart heals it through a probe."""
    system, service = drill_system(seed)
    node, _soap = system.add_client("drill-client")
    outcomes = []

    def invoke(count, gap):
        for _ in range(count):
            try:
                yield from service.invoke("StudentInformation", {"ID": "S00001"})
            except CircuitOpenError:
                outcomes.append("rejected")
            except Exception:
                outcomes.append("failed")
            else:
                outcomes.append("ok")
            yield system.env.timeout(gap)

    system.run_process(invoke(3, 0.2), node=node)
    assert outcomes == ["ok", "ok", "ok"]

    for peer in service.group.peers:
        peer.node.crash()
    system.run_process(invoke(6, 0.3), node=node)
    assert "rejected" in outcomes, "breaker never tripped on a dead group"
    # Once open, rejections are local: no further timeout-burning attempts.
    assert outcomes[-1] == "rejected"

    for peer in service.group.peers:
        peer.node.restart()
    system.settle(6.0)
    system.run_process(invoke(3, 0.3), node=node)
    assert outcomes[-1] == "ok", "breaker never healed after restart"

    breaker = next(iter(service.proxy._breakers.values()))
    assert breaker.state == CLOSED
    pairs = [(t.source, t.target) for t in breaker.transitions]
    assert (CLOSED, OPEN) in pairs
    assert (OPEN, HALF_OPEN) in pairs
    assert (HALF_OPEN, CLOSED) in pairs
    assert breaker_violations(service.proxy) == []


@pytest.mark.parametrize("seed", [7, 11, 42], indirect=True)
def test_breaker_fallback_degrades_instead_of_raising(seed):
    """A registered fallback answers rejected calls with DEGRADED results."""
    system, service = drill_system(seed)
    service.proxy.fallbacks["StudentInformation"] = (
        lambda operation, arguments: {"Name": "unavailable"}
    )
    node, _soap = system.add_client("fallback-client")
    results = []

    def invoke(count, gap):
        for _ in range(count):
            try:
                result = yield from service.invoke(
                    "StudentInformation", {"ID": "S00001"}
                )
            except Exception as exc:
                results.append(exc)
            else:
                results.append(result)
            yield system.env.timeout(gap)

    for peer in service.group.peers:
        peer.node.crash()
    system.run_process(invoke(6, 0.3), node=node)

    degraded = [
        r for r in results
        if not isinstance(r, Exception) and r.outcome is InvokeOutcome.DEGRADED
    ]
    assert degraded, "open breaker never routed to the fallback"
    assert all(r.value == {"Name": "unavailable"} for r in degraded)
    assert all(r.served_by == "fallback" for r in degraded)
    assert not any(isinstance(r, CircuitOpenError) for r in results)
    assert service.proxy.stats.breaker_fallbacks == len(degraded)
    assert breaker_violations(service.proxy) == []


def test_breaker_scope_is_per_advertisement():
    """One melted shard's breaker cannot blackhole a healthy sibling."""
    spec = BreakerSpec(window=8, min_calls=2, failure_threshold=0.5, open_duration=2.0)
    breaker_a = CircuitBreaker(spec, scope="svc/shard-0")
    breaker_b = CircuitBreaker(spec, scope="svc/shard-1")
    trip(breaker_a, at=0.0)
    assert breaker_a.state == OPEN
    assert breaker_b.state == CLOSED
    assert breaker_b.allow(1.0)
