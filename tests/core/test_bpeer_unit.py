"""Focused unit tests for b-peer behaviours."""

import pytest

from repro.core import ScenarioConfig, WhisperSystem
from repro.core.bpeer import COORD_HANDLER, PROTO_EXEC, ExecReply, ExecRequest


@pytest.fixture
def system():
    return WhisperSystem(ScenarioConfig(seed=61))


@pytest.fixture
def deployed(system):
    service = system.deploy_student_service(system.config.replace(replicas=3))
    system.settle(6.0)
    return service


def _send_exec(system, deployed, target_peer, operation="StudentInformation",
               arguments=None, request_id=1):
    """Send a raw ExecRequest from a scratch peer; returns replies seen."""
    from repro.p2p import Peer

    node = system.network.add_host(f"raw-client-{request_id}")
    requester = Peer(node)
    requester.attach_to(system.rendezvous)
    replies = []
    requester.endpoint.register_listener(
        "whisper:exec-reply", lambda message: replies.append(message.payload)
    )
    requester.learn_route_to(target_peer)
    request = ExecRequest(
        request_id=request_id,
        group_id=deployed.group.group_id,
        operation=operation,
        arguments=arguments if arguments is not None else {"ID": "S00001"},
        reply_to=requester.peer_id,
        reply_addr=requester.endpoint.address,
    )
    requester.endpoint.send(target_peer.peer_id, PROTO_EXEC, request)
    system.settle(1.0)
    return replies


class TestRequestHandling:
    def test_coordinator_executes(self, system, deployed):
        coordinator = deployed.group.coordinator_peer()
        replies = _send_exec(system, deployed, coordinator)
        assert len(replies) == 1
        assert replies[0].kind == "result"
        assert replies[0].value["studentId"] == "S00001"
        assert coordinator.requests_executed == 1

    def test_non_coordinator_redirects(self, system, deployed):
        coordinator_id = deployed.group.coordinator_id()
        follower = next(
            peer for peer in deployed.group.peers if peer.peer_id != coordinator_id
        )
        replies = _send_exec(system, deployed, follower, request_id=2)
        assert len(replies) == 1
        assert replies[0].kind == "not-coordinator"
        assert replies[0].coordinator[0] == coordinator_id
        assert follower.requests_redirected == 1

    def test_wrong_group_ignored(self, system, deployed):
        from repro.p2p import PeerGroupId

        coordinator = deployed.group.coordinator_peer()
        node = system.network.add_host("wrong-group-client")
        from repro.p2p import Peer

        requester = Peer(node)
        requester.learn_route_to(coordinator)
        replies = []
        requester.endpoint.register_listener(
            "whisper:exec-reply", lambda message: replies.append(message.payload)
        )
        request = ExecRequest(
            request_id=9,
            group_id=PeerGroupId.from_name("another-group"),
            operation="StudentInformation",
            arguments={"ID": "S00001"},
            reply_to=requester.peer_id,
            reply_addr=requester.endpoint.address,
        )
        requester.endpoint.send(coordinator.peer_id, PROTO_EXEC, request)
        system.settle(1.0)
        assert replies == []

    def test_unknown_record_is_client_fault_reply(self, system, deployed):
        coordinator = deployed.group.coordinator_peer()
        replies = _send_exec(
            system, deployed, coordinator, arguments={"ID": "S99999"}, request_id=3
        )
        assert replies[0].kind == "fault"
        assert replies[0].fault_code == "Client"

    def test_missing_argument_is_client_fault_reply(self, system, deployed):
        coordinator = deployed.group.coordinator_peer()
        replies = _send_exec(
            system, deployed, coordinator, arguments={}, request_id=4
        )
        assert replies[0].kind == "fault"
        assert replies[0].fault_code == "Client"

    def test_requests_serialised_by_worker(self, system, deployed):
        """The worker serves one request at a time (single-threaded peer):
        two simultaneous requests complete at distinct times separated by
        at least the service time."""
        coordinator = deployed.group.coordinator_peer()
        from repro.p2p import Peer

        node = system.network.add_host("burst-client")
        requester = Peer(node)
        requester.learn_route_to(coordinator)
        done_times = []
        requester.endpoint.register_listener(
            "whisper:exec-reply",
            lambda message: done_times.append(system.env.now),
        )
        for request_id in (11, 12):
            request = ExecRequest(
                request_id=request_id,
                group_id=deployed.group.group_id,
                operation="StudentInformation",
                arguments={"ID": "S00001"},
                reply_to=requester.peer_id,
                reply_addr=requester.endpoint.address,
            )
            requester.endpoint.send(coordinator.peer_id, PROTO_EXEC, request)
        system.settle(1.0)
        assert len(done_times) == 2
        service_time = coordinator.implementation.service_time
        assert done_times[1] - done_times[0] >= service_time * 0.9


class TestDelegation:
    def test_backend_down_delegates(self, system, deployed):
        coordinator = deployed.group.coordinator_peer()
        coordinator.implementation.backend.fail()
        replies = _send_exec(system, deployed, coordinator, request_id=5)
        assert replies[0].kind == "result"
        assert coordinator.requests_delegated == 1
        assert coordinator.requests_executed == 0

    def test_all_backends_down_cannot_serve(self, system, deployed):
        for peer in deployed.group.peers:
            peer.implementation.backend.fail()
        coordinator = deployed.group.coordinator_peer()
        replies = _send_exec(system, deployed, coordinator, request_id=6)
        assert replies[0].kind == "cannot-serve"

    def test_delegation_prefers_first_alive_member(self, system, deployed):
        coordinator = deployed.group.coordinator_peer()
        coordinator.implementation.backend.fail()
        _send_exec(system, deployed, coordinator, request_id=7)
        served = [
            peer for peer in deployed.group.peers
            if peer is not coordinator and peer.requests_executed > 0
        ]
        assert len(served) == 1


class TestCoordinatorQuery:
    def test_members_answer_coordinator_query(self, system, deployed):
        from repro.p2p import Peer

        node = system.network.add_host("coord-query-client")
        requester = Peer(node)
        requester.attach_to(system.rendezvous)
        system.settle(0.5)
        answers = []
        requester.resolver.send_query(
            COORD_HANDLER,
            deployed.group.group_id,
            on_response=lambda response: answers.append(response.payload),
        )
        system.settle(0.5)
        assert answers
        coordinator_ids = {peer_id for peer_id, _addr, _epoch in answers}
        assert coordinator_ids == {deployed.group.coordinator_id()}
        epochs = {epoch for _peer_id, _addr, epoch in answers}
        assert len(epochs) == 1  # every member answers with the same term
        assert epochs.pop().counter >= 1

    def test_other_groups_do_not_answer(self, system, deployed):
        from repro.p2p import Peer, PeerGroupId

        node = system.network.add_host("other-query-client")
        requester = Peer(node)
        requester.attach_to(system.rendezvous)
        system.settle(0.5)
        answers = []
        requester.resolver.send_query(
            COORD_HANDLER,
            PeerGroupId.from_name("nonexistent"),
            on_response=lambda response: answers.append(response.payload),
        )
        system.settle(0.5)
        assert answers == []
