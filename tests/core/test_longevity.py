"""Long-horizon behaviour: advertisement expiry, cache refresh, stability.

Advertisements carry lifetimes (JXTA default scaled to 3600 s here).  Over
a simulated multi-hour run, the proxy's cached semantic advertisement
expires; republication and re-discovery must keep the service invocable
without intervention, and coordination must stay stable (no spurious
elections) across the whole horizon.
"""

import pytest

from repro.core import ScenarioConfig, WhisperSystem
from repro.p2p.advertisement import DEFAULT_LIFETIME


class TestLongevity:
    def test_service_survives_advertisement_expiry(self):
        system = WhisperSystem(ScenarioConfig(seed=131))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        node, client = system.add_client("long-client")
        outcomes = []

        def call(student):
            def caller():
                value = yield from client.call(
                    service.address, service.path, "StudentInformation",
                    {"ID": student}, timeout=60.0,
                )
                outcomes.append(value["studentId"])

            system.env.run(until=node.spawn(caller()))

        call("S00001")
        # Jump past the advertisement lifetime: the proxy's cached semantic
        # advertisement (published once at bind time) has expired.
        system.run_until(system.env.now + DEFAULT_LIFETIME + 60.0)
        call("S00002")
        assert outcomes == ["S00001", "S00002"]
        # The b-peers' republication kept the rendezvous index warm, so at
        # most one extra remote discovery was needed.
        assert service.proxy.stats.remote_discoveries <= 2

    def test_coordination_stable_over_hours(self):
        system = WhisperSystem(ScenarioConfig(seed=132))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(10.0)
        baseline = [
            peer.coordinator_mgr.elector.stats.elections_started
            for peer in service.group.peers
        ]
        coordinator = service.group.coordinator_id()
        system.run_until(system.env.now + 2 * 3600.0)
        after = [
            peer.coordinator_mgr.elector.stats.elections_started
            for peer in service.group.peers
        ]
        assert after == baseline, "no elections should run without failures"
        assert service.group.coordinator_id() == coordinator

    def test_trace_counters_grow_linearly_with_time(self):
        """Maintenance traffic rate is constant: no leaks, no storms."""
        system = WhisperSystem(ScenarioConfig(seed=133))
        system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(10.0)
        system.reset_counters()
        system.run_until(system.env.now + 600.0)
        first_window = system.trace.sent_total
        system.reset_counters()
        system.run_until(system.env.now + 600.0)
        second_window = system.trace.sent_total
        assert first_window > 0
        assert abs(first_window - second_window) <= first_window * 0.05
