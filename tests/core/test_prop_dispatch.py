"""Property-based tests for the coordinator's dispatch policies.

Pure-policy properties (no simulator): drive the policies over random
member views and random dispatch/complete traces and check the two
guarantees the overload layer leans on:

* **least-outstanding respects the queue bound** — as long as the group
  as a whole has spare capacity (total in flight < bound x members), the
  policy's pick always has room; a shed can only ever be forced by the
  whole group being full, never by a skewed choice;
* **round-robin is fair within one cycle** — from any cursor position,
  ``n`` consecutive picks over a stable ``n``-member view visit every
  member exactly once.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dispatch import (
    LeastOutstandingDispatch,
    MemberLoad,
    RoundRobinDispatch,
)
from repro.p2p import PeerId

#: A stable pool of distinct member ids (properties draw prefixes of it).
MEMBERS = [PeerId.from_name(f"dispatch-prop-{index}") for index in range(8)]


def _view(size):
    return MEMBERS[:size]


@given(
    size=st.integers(min_value=1, max_value=8),
    bound=st.integers(min_value=1, max_value=6),
    events=st.lists(st.integers(min_value=0, max_value=9), max_size=120),
)
@settings(max_examples=150, deadline=None)
def test_least_outstanding_never_needs_to_exceed_bound(size, bound, events):
    """With group-wide spare capacity, the pick always has room.

    The trace interleaves dispatches and completions: an even event
    dispatches (if the group is not saturated), an odd event completes
    the oldest in-flight request on member ``event % size``.  After every
    admitted dispatch the chosen member must still be within the bound —
    i.e. the policy never concentrates load onto a full member while a
    sibling has room (pigeonhole over the least-loaded choice).
    """
    members = _view(size)
    policy = LeastOutstandingDispatch()
    load = {member: MemberLoad() for member in members}

    for event in events:
        total = sum(state.outstanding for state in load.values())
        if event % 2 == 0:
            if total >= bound * size:
                continue  # group saturated: a shed here is legitimate
            choice = policy.choose(members, load)
            assert choice in members
            assert load[choice].outstanding < bound, (
                f"least-outstanding picked a full member ({choice}) "
                f"while the group had spare capacity"
            )
            load[choice].outstanding += 1
        else:
            member = members[event % size]
            if load[member].outstanding > 0:
                load[member].outstanding -= 1


@given(
    size=st.integers(min_value=1, max_value=8),
    warmup=st.integers(min_value=0, max_value=25),
)
@settings(max_examples=100, deadline=None)
def test_round_robin_visits_every_member_each_cycle(size, warmup):
    """From any cursor position, one cycle covers the live view exactly."""
    members = _view(size)
    policy = RoundRobinDispatch()
    load = {member: MemberLoad() for member in members}
    for _ in range(warmup):
        policy.choose(members, load)
    cycle = [policy.choose(members, load) for _ in range(size)]
    assert sorted(cycle, key=str) == sorted(members, key=str)


@given(size=st.integers(min_value=1, max_value=8))
@settings(max_examples=25, deadline=None)
def test_round_robin_skips_departed_members(size):
    """A member pruned from the view is never picked again.

    The cursor is an index into the *current* view, so shrinking the view
    mid-rotation must neither raise nor resurrect the departed member.
    """
    members = _view(size)
    policy = RoundRobinDispatch()
    load = {member: MemberLoad() for member in members}
    for _ in range(size // 2 + 1):
        policy.choose(members, load)
    survivors = members[: max(1, size - 1)]
    picks = [policy.choose(survivors, load) for _ in range(3 * len(survivors))]
    assert all(pick in survivors for pick in picks)
    assert set(picks) == set(survivors)


@given(
    actions=st.lists(
        st.one_of(
            st.just(("pick",)),
            st.tuples(st.just("add"), st.integers(min_value=0, max_value=7)),
            st.tuples(st.just("remove"), st.integers(min_value=0, max_value=7)),
        ),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=150, deadline=None)
def test_round_robin_fair_under_view_churn(actions):
    """Between two consecutive serves of the same member, every member
    continuously present in the view must have been served.

    This is the identity-rotation guarantee the positional cursor broke:
    under add/remove churn the old implementation could double-serve a
    member while a continuously-live sibling starved.
    """
    policy = RoundRobinDispatch()
    view = {MEMBERS[0]}
    # For each member: the set of members served since *it* was last
    # served, plus everyone present at its last serve.  A repeat serve of
    # `m` is only fair if every member continuously present since m's
    # last serve got a turn in between.
    present_since_serve = {}  # member -> set of members continuously present
    served_since = {}  # member -> set of members served since its last serve

    for action in actions:
        if action[0] == "add":
            candidate = MEMBERS[action[1]]
            if candidate not in view:
                view.add(candidate)
                # A (re)joining member is not "continuously present" for
                # anyone's pending cycle.
                for present in present_since_serve.values():
                    present.discard(candidate)
        elif action[0] == "remove":
            candidate = MEMBERS[action[1]]
            if len(view) > 1 and candidate in view:
                view.discard(candidate)
                for present in present_since_serve.values():
                    present.discard(candidate)
        else:
            members = sorted(view, key=str)
            pick = policy.choose(members, {})
            assert pick in view
            if pick in served_since:
                stragglers = present_since_serve[pick] - served_since[pick] - {pick}
                assert not stragglers, (
                    f"{pick} served twice while continuously-present "
                    f"members {sorted(map(str, stragglers))} starved"
                )
            for member, served in served_since.items():
                if member is not pick:
                    served.add(pick)
            served_since[pick] = set()
            present_since_serve[pick] = set(view)
