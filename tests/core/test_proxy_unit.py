"""Focused unit tests for SWS-proxy behaviours."""

import pytest

from repro.core import NoMatchingGroupError, ScenarioConfig, WhisperSystem
from repro.core.bpeer import PROTO_EXEC, ExecReply
from repro.soap import SoapFault


@pytest.fixture
def system():
    return WhisperSystem(ScenarioConfig(seed=51))


@pytest.fixture
def deployed(system):
    service = system.deploy_student_service(system.config.replace(replicas=3))
    system.settle(6.0)
    return service


def _invoke(system, proxy, operation, arguments, **kwargs):
    outcome = {}

    def runner():
        try:
            result = yield from proxy.invoke(operation, arguments, **kwargs)
            outcome["result"] = result
            outcome["value"] = result.value
        except Exception as error:  # noqa: BLE001 - captured for assertions
            outcome["error"] = error

    system.env.run(until=proxy.node.spawn(runner()))
    return outcome


class TestDiscoveryPath:
    def test_find_peer_group_adv_returns_matches(self, system, deployed):
        proxy = deployed.proxy
        matches = {}

        def runner():
            matches["found"] = yield from proxy.find_peer_group_adv(
                "StudentInformation"
            )

        system.env.run(until=proxy.node.spawn(runner()))
        assert len(matches["found"]) == 1
        assert matches["found"][0].advertisement.name == deployed.group.name

    def test_local_cache_hit_skips_remote_discovery(self, system, deployed):
        proxy = deployed.proxy
        _invoke(system, proxy, "StudentInformation", {"ID": "S00001"})
        discoveries = proxy.stats.remote_discoveries
        _invoke(system, proxy, "StudentInformation", {"ID": "S00002"})
        assert proxy.stats.remote_discoveries == discoveries

    def test_no_group_raises_no_matching(self, system):
        # A service deployed with NO backing group.
        from repro.core import SemanticWebService, SwsProxy
        from repro.wsdl import bank_loans_wsdl

        node = system.network.add_host("lonely-web")
        sws = SemanticWebService(bank_loans_wsdl(), system.ontology)
        proxy = SwsProxy(node, sws, system.matcher, discovery_timeout=0.3)
        proxy.attach_to(system.rendezvous)
        system.settle(1.0)
        outcome = _invoke(system, proxy, "ApproveLoan", {"request": "L00001"})
        assert isinstance(outcome["error"], NoMatchingGroupError)


class TestBindingPath:
    def test_resolve_coordinator_returns_binding(self, system, deployed):
        proxy = deployed.proxy
        result = {}

        def runner():
            result["binding"] = yield from proxy.resolve_coordinator(
                deployed.group.group_id
            )

        system.env.run(until=proxy.node.spawn(runner()))
        assert result["binding"].coordinator == deployed.group.coordinator_id()

    def test_drop_binding_counts_rebinds(self, system, deployed):
        proxy = deployed.proxy
        _invoke(system, proxy, "StudentInformation", {"ID": "S00001"})
        proxy.drop_binding(deployed.group.group_id)
        assert proxy.stats.rebinds == 1
        proxy.drop_binding(deployed.group.group_id)  # already gone
        assert proxy.stats.rebinds == 1

    def test_redirect_updates_binding(self, system, deployed):
        """Sending to a non-coordinator member redirects the proxy."""
        proxy = deployed.proxy
        _invoke(system, proxy, "StudentInformation", {"ID": "S00001"})
        coordinator_id = deployed.group.coordinator_id()
        follower = next(
            peer for peer in deployed.group.peers
            if peer.peer_id != coordinator_id
        )
        # Poison the binding to point at the follower.
        from repro.core.proxy import _Binding

        proxy._bindings[deployed.group.group_id] = _Binding(
            deployed.group.group_id, follower.peer_id, follower.endpoint.address
        )
        proxy.endpoint.add_route(follower.peer_id, follower.endpoint.address)
        outcome = _invoke(system, proxy, "StudentInformation", {"ID": "S00002"})
        assert outcome["value"]["studentId"] == "S00002"
        assert proxy.stats.redirects >= 1

    def test_redirect_with_pointer_counts_rebind(self, system, deployed):
        """Regression: following a redirect's forward pointer is a
        failover and must count as a rebind.  The old code rewrote
        ``_bindings[group_id]`` in place, so redirect-driven failovers
        were invisible in ``ProxyStats.rebinds``."""
        proxy = deployed.proxy
        _invoke(system, proxy, "StudentInformation", {"ID": "S00001"})
        coordinator_id = deployed.group.coordinator_id()
        follower = next(
            peer for peer in deployed.group.peers
            if peer.peer_id != coordinator_id
        )
        from repro.core.proxy import _Binding

        proxy._bindings[deployed.group.group_id] = _Binding(
            deployed.group.group_id, follower.peer_id, follower.endpoint.address
        )
        proxy.endpoint.add_route(follower.peer_id, follower.endpoint.address)
        rebinds = proxy.stats.rebinds
        outcome = _invoke(system, proxy, "StudentInformation", {"ID": "S00002"})
        assert outcome["value"]["studentId"] == "S00002"
        assert proxy.stats.rebinds == rebinds + 1
        binding = proxy._bindings[deployed.group.group_id]
        assert binding.coordinator == coordinator_id
        assert binding.epoch is not None

    def test_successful_invoke_stamps_binding_epoch(self, system, deployed):
        proxy = deployed.proxy
        _invoke(system, proxy, "StudentInformation", {"ID": "S00001"})
        binding = proxy._bindings[deployed.group.group_id]
        coordinator = deployed.group.coordinator_peer()
        assert binding.epoch == coordinator.coordinator_mgr.epoch
        assert binding.epoch.counter >= 1


class TestReplyHandling:
    def test_fault_reply_raises_soap_fault(self, system, deployed):
        outcome = _invoke(
            system, deployed.proxy, "StudentInformation", {"ID": "S99999"}
        )
        assert isinstance(outcome["error"], SoapFault)
        assert deployed.proxy.stats.faults == 1

    def test_stale_reply_ignored(self, system, deployed):
        """A reply for an unknown request id must not crash the proxy."""
        proxy = deployed.proxy
        stale = ExecReply(request_id=987654, kind="result", value="ghost")
        coordinator = deployed.group.coordinator_peer()
        coordinator.endpoint.add_route(proxy.peer_id, proxy.endpoint.address)
        coordinator.endpoint.send(
            proxy.peer_id, "whisper:exec-reply", stale, category="bpeer-reply"
        )
        system.settle(0.5)
        outcome = _invoke(system, proxy, "StudentInformation", {"ID": "S00001"})
        assert "value" in outcome

    def test_translation_validates_against_schema(self, system, deployed):
        proxy = deployed.proxy
        value = proxy._translate(
            "StudentInformation",
            {"studentId": "S1", "name": "A", "degree": "D"},
        )
        assert value["studentId"] == "S1"
        assert proxy.stats.translation_failures == 0

    def test_translation_counts_schema_mismatch(self, system, deployed):
        proxy = deployed.proxy
        proxy._translate("StudentInformation", {"unexpected": True})
        assert proxy.stats.translation_failures == 1


class TestStatsBookkeeping:
    def test_success_recorded_in_profile(self, system, deployed):
        proxy = deployed.proxy
        _invoke(system, proxy, "StudentInformation", {"ID": "S00001"})
        key = deployed.group.advertisement.key()
        profile = proxy._profile_for(key)
        assert profile.observations == 1
        assert profile.successes == 1

    def test_invocation_counter(self, system, deployed):
        proxy = deployed.proxy
        for index in range(3):
            _invoke(system, proxy, "StudentInformation", {"ID": f"S{index + 1:05d}"})
        assert proxy.stats.invocations == 3
        assert proxy.stats.successes == 3
