"""End-to-end epoch fencing: stale coordinators cannot serve clients.

The acceptance scenario for the recovery-hardening layer: partition the
sitting coordinator away from its group (but not from the web host), let
the majority elect a successor under a higher epoch, heal, and show that
the deposed coordinator's stale term is fenced — the proxy's
epoch-stamped request is rejected with ``not-coordinator``/``stale-epoch``
and the retry lands under the fresh term.
"""

import pytest

from repro.core import ScenarioConfig, WhisperSystem
from repro.election import Epoch


@pytest.fixture
def system():
    return WhisperSystem(ScenarioConfig(seed=1106, heartbeat_interval=0.5, miss_threshold=2))


@pytest.fixture
def deployed(system):
    service = system.deploy_student_service(system.config.replace(replicas=4))
    system.settle(6.0)
    return service


def _quiesce_watchdogs(group):
    """Stop the peers' coordination watchdogs for the rest of the run.

    The watchdog's periodic re-affirmation actively heals split-brain, so
    tests that *forge* a split claimant (to probe the resolver's epoch
    preference in isolation) must silence it or the forged state unravels
    mid-resolve.
    """
    for peer in group.peers:
        mgr = peer.coordinator_mgr
        watchdog, mgr._watchdog = mgr._watchdog, None
        if watchdog is not None and watchdog.is_alive:
            watchdog.interrupt("quiesce")


def _invoke(system, proxy, operation, arguments, **kwargs):
    outcome = {}

    def runner():
        try:
            result = yield from proxy.invoke(operation, arguments, **kwargs)
            outcome["result"] = result
            outcome["value"] = result.value
        except Exception as error:  # noqa: BLE001 - captured for assertions
            outcome["error"] = error

    system.env.run(until=proxy.node.spawn(runner()))
    return outcome


class TestPartitionThenHeal:
    def test_stale_coordinator_rejected_via_epoch(self, system, deployed):
        """Seeded partition-then-heal: a request carried under a term the
        coordinator has since superseded is fenced, not served."""
        proxy = deployed.proxy
        group_id = deployed.group.group_id

        # Prime the binding under the first term.
        outcome = _invoke(system, proxy, "StudentInformation", {"ID": "S00001"})
        assert outcome["value"]["studentId"] == "S00001"
        old_coord = deployed.group.coordinator_peer()
        old_epoch = old_coord.coordinator_mgr.epoch
        assert old_epoch.counter >= 1
        binding = proxy._bindings[group_id]
        assert binding.coordinator == old_coord.peer_id
        assert binding.epoch == old_epoch

        # Isolate the coordinator from members + rendezvous.  The web
        # host stays connected to BOTH sides, so the proxy's binding to
        # the deposed coordinator stays usable throughout.
        member_side = [
            peer.node.name
            for peer in deployed.group.peers
            if peer is not old_coord
        ] + ["rdv0"]
        system.failures.partition_at(
            system.env.now + 0.5, [old_coord.node.name], member_side,
            duration=8.0,
        )
        system.settle(9.0)

        # The majority elected a successor under a higher term while the
        # deposed coordinator kept believing in its own.
        survivors = [
            peer for peer in deployed.group.peers if peer is not old_coord
        ]
        mid_epoch = max(peer.coordinator_mgr.epoch for peer in survivors)
        usurper = next(
            peer for peer in survivors if peer.coordinator_mgr.is_coordinator
        )
        assert mid_epoch > old_epoch
        assert old_coord.coordinator_mgr.epoch == old_epoch  # still stale

        # Heal, let rosters re-sync, then crash the successor.  The
        # re-election pulls the rejoined old coordinator back in: its
        # ELECTION traffic carries the majority's higher term, so the old
        # coordinator re-wins only by minting a fresh term above it.
        system.settle(7.0)
        usurper.node.crash()
        system.settle(15.0)
        final_epoch = old_coord.coordinator_mgr.epoch
        assert final_epoch > mid_epoch > old_epoch
        assert final_epoch.owner_hex == old_coord.peer_id.uuid_hex
        claimants = [
            peer
            for peer in deployed.group.peers
            if peer.node.up and peer.coordinator_mgr.is_coordinator
        ]
        assert claimants == [old_coord]

        # The proxy still holds the pre-partition binding.  Its next
        # request carries the stale epoch, gets fenced with a
        # ``stale-epoch`` redirect, and the forwarded pointer re-binds it
        # under the fresh term — the client never sees the failure.
        rejections = old_coord.stale_epoch_rejections
        outcome = _invoke(system, proxy, "StudentInformation", {"ID": "S00002"})
        assert outcome["value"]["studentId"] == "S00002"
        assert old_coord.stale_epoch_rejections == rejections + 1
        assert proxy.stats.stale_epoch_redirects >= 1
        assert proxy._bindings[group_id].epoch == final_epoch


class TestResolverEpochPreference:
    def test_highest_epoch_answer_wins_binding(self, system, deployed):
        """Conflicting resolver answers (split-brain) are decided by
        epoch: the freshest claim wins even if a stale one answers
        first."""
        proxy = deployed.proxy
        group_id = deployed.group.group_id
        coordinator_id = deployed.group.coordinator_id()
        real_epoch = deployed.group.coordinator_peer().coordinator_mgr.epoch
        follower = next(
            peer for peer in deployed.group.peers
            if peer.peer_id != coordinator_id
        )
        # Forge a split-brain claimant with a *higher* term.
        _quiesce_watchdogs(deployed.group)
        forged = Epoch(real_epoch.counter + 7, follower.peer_id.uuid_hex)
        follower.coordinator_mgr.elector.coordinator = follower.peer_id
        follower.coordinator_mgr.elector.epoch = forged
        proxy.resolve_grace = 0.1  # collect every racing answer
        proxy.drop_binding(group_id)

        result = {}

        def runner():
            result["binding"] = yield from proxy.resolve_coordinator(group_id)

        system.env.run(until=proxy.node.spawn(runner()))
        assert result["binding"].coordinator == follower.peer_id
        assert result["binding"].epoch == forged

    def test_stale_epoch_answer_loses_binding(self, system, deployed):
        """The mirror case: a claimant stuck on a *lower* term never
        steals the binding from the legitimate coordinator."""
        proxy = deployed.proxy
        group_id = deployed.group.group_id
        coordinator_id = deployed.group.coordinator_id()
        real_epoch = deployed.group.coordinator_peer().coordinator_mgr.epoch
        follower = next(
            peer for peer in deployed.group.peers
            if peer.peer_id != coordinator_id
        )
        follower.coordinator_mgr.elector.coordinator = follower.peer_id
        follower.coordinator_mgr.elector.epoch = Epoch(0, follower.peer_id.uuid_hex)
        proxy.resolve_grace = 0.1
        proxy.drop_binding(group_id)

        result = {}

        def runner():
            result["binding"] = yield from proxy.resolve_coordinator(group_id)

        system.env.run(until=proxy.node.spawn(runner()))
        assert result["binding"].coordinator == coordinator_id
        assert result["binding"].epoch == real_epoch
