"""Tests for the ScenarioConfig redesign and its legacy-kwargs shims."""

import dataclasses

import pytest

from repro.core import (
    InvokeOutcome,
    InvokeResult,
    ScenarioConfig,
    WhisperSystem,
)


class TestScenarioConfig:
    def test_replace_returns_modified_copy(self):
        base = ScenarioConfig(seed=7)
        tuned = base.replace(replicas=8, queue_bound=4)
        assert tuned.replicas == 8
        assert tuned.queue_bound == 4
        assert tuned.seed == 7
        assert base.replicas == 4  # original untouched

    def test_config_is_frozen(self):
        config = ScenarioConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.seed = 9

    def test_from_legacy_kwargs_overrides_base(self):
        base = ScenarioConfig(seed=3, replicas=2)
        with pytest.warns(DeprecationWarning, match="ScenarioConfig"):
            merged = ScenarioConfig.from_legacy_kwargs(
                base, {"replicas": 6, "load_sharing": True}, "test"
            )
        assert merged.replicas == 6
        assert merged.load_sharing is True
        assert merged.seed == 3

    def test_from_legacy_kwargs_filters_none(self):
        """None means "not supplied" for the old default-None kwargs."""
        base = ScenarioConfig(replicas=5)
        merged = ScenarioConfig.from_legacy_kwargs(
            base, {"replicas": None, "students": None}, "test"
        )
        assert merged is base  # nothing supplied, no warning, no copy

    def test_from_legacy_kwargs_rejects_unknown(self):
        with pytest.raises(TypeError, match="bogus_knob"):
            ScenarioConfig.from_legacy_kwargs(None, {"bogus_knob": 1}, "test")


class TestLegacyShims:
    def test_system_legacy_kwargs_warn_and_apply(self):
        with pytest.warns(DeprecationWarning, match="WhisperSystem"):
            system = WhisperSystem(seed=11, heartbeat_interval=0.25)
        assert system.config.seed == 11
        assert system.config.heartbeat_interval == 0.25
        assert system.heartbeat_interval == 0.25  # compat property

    def test_deploy_student_service_legacy_kwargs(self):
        system = WhisperSystem(ScenarioConfig(seed=61))
        with pytest.warns(DeprecationWarning, match="deploy_student_service"):
            service = system.deploy_student_service(replicas=2)
        assert len(service.group.peers) == 2

    def test_deploy_student_service_unknown_kwarg_raises(self):
        system = WhisperSystem(ScenarioConfig(seed=61))
        with pytest.raises(TypeError):
            system.deploy_student_service(replica_count=2)

    def test_config_object_is_the_new_path(self):
        """The redesigned API takes a config and emits no warnings."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            system = WhisperSystem(ScenarioConfig(seed=62, replicas=2))
            service = system.deploy_student_service()
        assert len(service.group.peers) == 2
        assert service.proxy.request_timeout == system.config.request_timeout

    def test_deploy_config_reaches_proxy_budgets(self):
        system = WhisperSystem(ScenarioConfig(seed=63))
        service = system.deploy_student_service(
            system.config.replace(
                replicas=2, request_timeout=0.7, max_attempts=3, deadline_budget=9.0
            )
        )
        proxy = service.proxy
        assert proxy.request_timeout == 0.7
        assert proxy.max_attempts == 3
        assert proxy.deadline_budget == 9.0

    def test_settle_default_comes_from_config(self):
        system = WhisperSystem(ScenarioConfig(seed=64, settle=1.5))
        before = system.env.now
        system.settle()
        assert system.env.now - before == pytest.approx(1.5)


class TestInvokeResult:
    def test_result_is_frozen(self):
        result = InvokeResult(
            value={"x": 1}, outcome=InvokeOutcome.OK, epoch=None,
            attempts=1, duration=0.01, trace_id=5,
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.attempts = 2

    def test_recovered_property_tracks_outcome(self):
        kwargs = dict(value=None, epoch=None, attempts=2, duration=0.1, trace_id=1)
        assert InvokeResult(outcome=InvokeOutcome.RECOVERED, **kwargs).recovered
        assert not InvokeResult(outcome=InvokeOutcome.OK, **kwargs).recovered
        assert not InvokeResult(
            outcome=InvokeOutcome.RETRIED_AFTER_SHED, **kwargs
        ).recovered

    def test_invoke_returns_typed_result(self):
        system = WhisperSystem(ScenarioConfig(seed=65, replicas=2))
        service = system.deploy_student_service()
        system.settle()
        outcome = {}

        def runner():
            outcome["result"] = yield from service.proxy.invoke(
                "StudentInformation", {"ID": "S00001"}
            )

        system.env.run(until=service.proxy.node.spawn(runner()))
        result = outcome["result"]
        assert isinstance(result, InvokeResult)
        assert result.value["studentId"] == "S00001"
        assert result.outcome is InvokeOutcome.OK
        assert result.attempts == 1
        assert result.shed_retries == 0
        assert result.epoch is not None
        assert result.duration > 0
        assert isinstance(result.trace_id, int)

    def test_deployed_service_invoke_wraps_proxy(self):
        system = WhisperSystem(ScenarioConfig(seed=66, replicas=2))
        service = system.deploy_student_service()
        system.settle()
        outcome = {}

        def runner():
            outcome["result"] = yield from service.invoke(
                "StudentInformation", {"ID": "S00002"}
            )

        system.env.run(until=service.proxy.node.spawn(runner()))
        assert outcome["result"].value["studentId"] == "S00002"
        assert outcome["result"].outcome is InvokeOutcome.OK
