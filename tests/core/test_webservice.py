"""Unit tests for the client-facing Web services."""

import pytest

from repro.backend import student_database, student_lookup_operational
from repro.core import PlainWebService, ScenarioConfig, WhisperSystem
from repro.soap import HttpRequest, RequestTimeout, SoapFault, http_request
from repro.wsdl import definitions_from_xml


@pytest.fixture
def system():
    return WhisperSystem(ScenarioConfig(seed=71))


class TestWhisperWebService:
    def test_wsdl_endpoint_serves_description(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=2))
        system.settle(6.0)
        node = system.network.add_host("wsdl-client")
        got = {}

        def fetch():
            got["response"] = yield from http_request(
                node, service.address,
                HttpRequest("GET", f"{service.path}?wsdl"),
                timeout=2.0,
            )

        system.env.run(until=node.spawn(fetch()))
        response = got["response"]
        assert response.status == 200
        parsed = definitions_from_xml(response.body)
        assert parsed.name == "StudentManagement"
        operation = parsed.single_interface().operation("StudentInformation")
        assert operation.is_annotated  # WSDL-S annotations survive

    def test_unknown_path_404(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=2))
        system.settle(6.0)
        node = system.network.add_host("nf-client")
        got = {}

        def fetch():
            got["response"] = yield from http_request(
                node, service.address, HttpRequest("GET", "/nothing"), timeout=2.0
            )

        system.env.run(until=node.spawn(fetch()))
        assert got["response"].status == 404

    def test_dispatch_rejects_unknown_operation(self, system):
        service = system.deploy_student_service(system.config.replace(replicas=2))
        system.settle(6.0)
        node, client = system.add_client("op-client")
        got = {}

        def caller():
            try:
                yield from client.call(service.address, service.path, "Nope", {})
            except SoapFault as fault:
                got["fault"] = fault

        system.env.run(until=node.spawn(caller()))
        assert got["fault"].faultcode == "Client"
        # The proxy was never bothered.
        assert service.proxy.stats.invocations == 0


class TestPlainWebService:
    @pytest.fixture
    def plain(self, system):
        implementation = student_lookup_operational(student_database())
        service = system.deploy_plain_service("Students", implementation)
        system.settle(1.0)
        return service

    def test_serves_requests(self, system, plain):
        node, client = system.add_client("plain-client")
        got = {}

        def caller():
            got["value"] = yield from client.call(
                plain.address, plain.path, "StudentInformation", {"ID": "S00001"}
            )

        system.env.run(until=node.spawn(caller()))
        assert got["value"]["studentId"] == "S00001"

    def test_host_crash_means_silence(self, system, plain):
        plain.node.crash()
        node, client = system.add_client("plain-client-2")
        got = {}

        def caller():
            try:
                yield from client.call(
                    plain.address, plain.path, "StudentInformation",
                    {"ID": "S00001"}, timeout=0.5,
                )
            except RequestTimeout as error:
                got["timeout"] = error

        system.env.run(until=node.spawn(caller()))
        assert "timeout" in got

    def test_backend_error_is_fault(self, system, plain):
        plain.implementation.backend.fail()
        node, client = system.add_client("plain-client-3")
        got = {}

        def caller():
            try:
                yield from client.call(
                    plain.address, plain.path, "StudentInformation", {"ID": "S00001"}
                )
            except SoapFault as fault:
                got["fault"] = fault

        system.env.run(until=node.spawn(caller()))
        assert got["fault"].faultcode == "Server"
