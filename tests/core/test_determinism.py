"""Whole-system determinism: identical seeds produce identical runs."""

import pytest

from repro.core import ScenarioConfig, WhisperSystem


def _run_scenario(seed):
    system = WhisperSystem(ScenarioConfig(seed=seed))
    service = system.deploy_student_service(system.config.replace(replicas=4))
    system.settle(6.0)
    node, client = system.add_client("det-client")
    latencies = []

    def loop():
        for index in range(5):
            started = system.env.now
            yield from client.call(
                service.address, service.path, "StudentInformation",
                {"ID": f"S{index + 1:05d}"}, timeout=60.0,
            )
            latencies.append(round(system.env.now - started, 12))
            yield system.env.timeout(0.1)

    # Crash the coordinator mid-run for a failure-path comparison too.
    victim = service.group.coordinator_peer()
    system.failures.crash_at(system.env.now + 0.25, victim.node.name)
    system.env.run(until=node.spawn(loop()))
    return {
        "latencies": latencies,
        "messages": system.trace.sent_total,
        "bytes": system.trace.bytes_total,
        "categories": dict(system.trace.sent_by_category),
        "coordinator": str(service.group.coordinator_id()),
        "final_time": round(system.env.now, 12),
    }


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        assert _run_scenario(seed=77) == _run_scenario(seed=77)

    def test_different_seeds_differ(self):
        a = _run_scenario(seed=77)
        b = _run_scenario(seed=78)
        # Latency draws come from the seeded LAN model.
        assert a["latencies"] != b["latencies"]

    def test_qos_profiles_populated(self):
        system = WhisperSystem(ScenarioConfig(seed=79))
        service = system.deploy_student_service(system.config.replace(replicas=2))
        system.settle(6.0)
        node, client = system.add_client("qos-prof-client")

        def loop():
            for index in range(3):
                yield from client.call(
                    service.address, service.path, "StudentInformation",
                    {"ID": f"S{index + 1:05d}"}, timeout=30.0,
                )

        system.env.run(until=node.spawn(loop()))
        coordinator = service.group.coordinator_peer()
        assert coordinator.qos_profile.observations == 3
        snapshot = coordinator.qos_profile.snapshot()
        # Equal up to float roundoff on the simulated clock.
        assert snapshot.time >= coordinator.implementation.service_time - 1e-9
        report = system.status_report()
        qos = report["services"]["StudentManagement"]["groups"][
            "StudentInformation"
        ]["replica_qos"]
        assert qos[coordinator.name]["executed"] == 3
