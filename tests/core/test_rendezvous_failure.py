"""Robustness of the whole system to rendezvous failure.

The rendezvous is Whisper's one privileged peer (leases, SRDI index,
propagation).  Its crash degrades discovery of *new* services, but bound
proxies keep working (routes are direct), and after a restart the edges'
lease renewals, membership renewals, and advertisement republication
rebuild the rendezvous state without operator intervention.
"""

import pytest

from repro.core import ScenarioConfig, WhisperSystem
from repro.soap import RequestTimeout, SoapFault


def _call(system, service, arguments, client, timeout=60.0):
    node, soap = client
    outcome = {}

    def caller():
        try:
            outcome["value"] = yield from soap.call(
                service.address, service.path, "StudentInformation", arguments,
                timeout=timeout,
            )
        except (SoapFault, RequestTimeout) as error:
            outcome["error"] = error

    system.env.run(until=node.spawn(caller()))
    return outcome


class TestRendezvousFailure:
    def test_bound_proxy_survives_rdv_outage(self):
        system = WhisperSystem(ScenarioConfig(seed=95))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        client = system.add_client("rdv-outage-client")
        _call(system, service, {"ID": "S00001"}, client)  # bind while healthy
        system.rendezvous.node.crash()
        outcome = _call(system, service, {"ID": "S00002"}, client)
        assert "value" in outcome  # direct proxy->coordinator route survives

    def test_rdv_restart_rebuilds_srdi(self):
        system = WhisperSystem(ScenarioConfig(seed=96))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        system.rendezvous.node.crash()
        assert len(system.rendezvous.rendezvous.srdi) == 0
        system.rendezvous.node.restart()
        # Lease renewals (≤15s) re-establish clients; republication (≤10s)
        # refills the SRDI index with the semantic advertisement.
        system.settle(30.0)
        from repro.p2p import SemanticAdvertisement

        semantic = system.rendezvous.rendezvous.srdi_lookup(
            lambda adv: isinstance(adv, SemanticAdvertisement)
        )
        assert any(
            adv.name == service.group.name for adv in semantic
        ), "semantic advertisement must be republished after rdv restart"

    def test_new_proxy_discovers_after_rdv_restart(self):
        """A proxy arriving *after* the outage still finds the group."""
        from repro.core import SemanticWebService, SwsProxy
        from repro.wsdl import student_management_wsdl

        system = WhisperSystem(ScenarioConfig(seed=97))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        system.rendezvous.node.crash()
        system.settle(5.0)
        system.rendezvous.node.restart()
        system.settle(30.0)

        node = system.network.add_host("late-web")
        sws = SemanticWebService(student_management_wsdl(), system.ontology)
        proxy = SwsProxy(node, sws, system.matcher)
        proxy.attach_to(system.rendezvous)
        system.settle(2.0)
        outcome = {}

        def runner():
            try:
                result = yield from proxy.invoke(
                    "StudentInformation", {"ID": "S00003"}
                )
                outcome["value"] = result.value
            except Exception as error:  # noqa: BLE001
                outcome["error"] = error

        system.env.run(until=node.spawn(runner()))
        assert outcome.get("value", {}).get("studentId") == "S00003", outcome

    def test_membership_registry_rebuilt_after_restart(self):
        from repro.p2p.peergroup import ANNOUNCE_PERIOD

        system = WhisperSystem(ScenarioConfig(seed=98))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        system.rendezvous.node.crash()
        system.rendezvous.node.restart()
        system.settle(ANNOUNCE_PERIOD * 2 + 2.0)
        registry = system.rendezvous.groups._registry.get(
            service.group.group_id, {}
        )
        now = system.env.now
        alive = [p for p, (_a, expiry) in registry.items() if expiry > now]
        assert len(alive) == 3
