"""Unit tests for admission control: queue bounds, shedding, retry-after."""

import pytest

from repro.core import InvokeOutcome, ScenarioConfig, WhisperSystem
from repro.soap import SoapFault


def _flood(system, proxy, count, **invoke_kwargs):
    """Fire ``count`` simultaneous invocations; collect per-call outcomes."""
    outcomes = [{} for _ in range(count)]
    processes = []
    for index in range(count):
        def runner(slot=outcomes[index], index=index):
            try:
                result = yield from proxy.invoke(
                    "StudentInformation",
                    {"ID": f"S{index % 20 + 1:05d}"},
                    **invoke_kwargs,
                )
                slot["result"] = result
            except Exception as error:  # noqa: BLE001 - captured for assertions
                slot["error"] = error

        processes.append(proxy.node.spawn(runner()))
    for process in processes:
        system.env.run(until=process)
    return outcomes


class TestQueueBoundShedding:
    def test_full_queue_sheds_with_busy_fault(self):
        """Admissions beyond the bound are refused with Server.Busy and a
        retry-after hint; with one attempt the proxy surfaces the fault."""
        system = WhisperSystem(
            ScenarioConfig(seed=2001, replicas=1, queue_bound=2, max_attempts=1)
        )
        service = system.deploy_student_service()
        system.settle(6.0)

        outcomes = _flood(system, service.proxy, 10)
        served = [o for o in outcomes if "result" in o]
        busy = [
            o["error"]
            for o in outcomes
            if isinstance(o.get("error"), SoapFault) and o["error"].is_busy
        ]
        assert served, "the bounded queue must still serve admitted work"
        assert busy, "overflow must surface as Server.Busy at the client"
        assert all(fault.retry_after is not None for fault in busy)
        assert all(fault.retry_after > 0 for fault in busy)
        assert service.group.total_requests_shed() == len(busy)
        assert service.proxy.stats.shed == len(busy)

    def test_unbounded_queue_never_sheds(self):
        system = WhisperSystem(ScenarioConfig(seed=2003, replicas=1))
        service = system.deploy_student_service()
        system.settle(6.0)

        outcomes = _flood(system, service.proxy, 10)
        assert all("result" in o for o in outcomes)
        assert service.group.total_requests_shed() == 0
        assert service.proxy.stats.shed == 0

    def test_shed_metrics_are_recorded(self):
        system = WhisperSystem(
            ScenarioConfig(seed=2005, replicas=1, queue_bound=1, max_attempts=1)
        )
        service = system.deploy_student_service()
        system.settle(6.0)
        _flood(system, service.proxy, 8)

        metrics = system.network.obs.metrics
        assert metrics.counter("bpeer.shed").value > 0
        assert metrics.counter("proxy.shed").value > 0
        depth = metrics.histograms.get("bpeer.queue_depth")
        assert depth is not None and depth.count > 0


class TestRetryAfterHonored:
    def test_busy_retry_waits_hint_and_succeeds(self):
        """A shed request retries after the coordinator's hint and ends
        with the RETRIED_AFTER_SHED outcome, not an error."""
        system = WhisperSystem(
            ScenarioConfig(seed=2011, replicas=1, queue_bound=1, max_attempts=8)
        )
        service = system.deploy_student_service()
        system.settle(6.0)

        outcomes = _flood(system, service.proxy, 6)
        assert all("result" in o for o in outcomes), outcomes
        results = [o["result"] for o in outcomes]
        retried = [r for r in results if r.outcome is InvokeOutcome.RETRIED_AFTER_SHED]
        assert retried, "contention must force at least one busy retry"
        assert all(r.shed_retries >= 1 for r in retried)
        assert all(r.attempts >= 2 for r in retried)
        assert service.proxy.stats.retry_after_honored >= len(retried)
        counter = system.network.obs.metrics.counter("proxy.retry_after_honored")
        assert counter.value > 0

    def test_deadline_clamps_busy_retry(self):
        """With a budget smaller than the backlog drain time the proxy
        gives up with a terminal Server.Busy that carries the last hint."""
        system = WhisperSystem(
            ScenarioConfig(seed=2013, replicas=1, queue_bound=1, max_attempts=8)
        )
        service = system.deploy_student_service()
        system.settle(6.0)
        _flood(system, service.proxy, 1)  # warm discovery + binding caches
        # Slow backend: one request occupies the worker for 100ms, far
        # beyond the 50ms budget of the victims queued behind it.
        for peer in service.group.peers:
            peer.implementation.service_time = 0.100

        outcomes = _flood(system, service.proxy, 5, budget=0.050)
        busy = [
            o["error"]
            for o in outcomes
            if isinstance(o.get("error"), SoapFault) and o["error"].is_busy
        ]
        assert busy, "expired budgets during busy backoff must fail terminally"
        assert all(fault.retry_after is not None for fault in busy)
        # Honored sleeps were clamped to the remaining budget, so no
        # victim overshot its deadline by a full hint.
        assert system.env.now < 7.0
