"""Graceful shutdown vs. crash: planned maintenance is fast."""

import pytest

from repro.core import ScenarioConfig, WhisperSystem
from repro.soap import RequestTimeout, SoapFault


def _timed_call(system, service, client, student):
    node, soap = client
    outcome = {}
    started = system.env.now

    def caller():
        try:
            outcome["value"] = yield from soap.call(
                service.address, service.path, "StudentInformation",
                {"ID": student}, timeout=120.0,
            )
        except (SoapFault, RequestTimeout) as error:
            outcome["error"] = error

    system.env.run(until=node.spawn(caller()))
    outcome["elapsed"] = system.env.now - started
    return outcome


class TestGracefulShutdown:
    def test_handoff_elects_successor_quickly(self):
        system = WhisperSystem(ScenarioConfig(seed=141))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        old = service.group.coordinator_peer()
        old.shutdown()
        system.settle(3.0)  # an election, not a detection period
        new = service.group.coordinator_peer()
        assert new is not None
        assert new is not old
        # Survivors agree.
        alive = [p for p in service.group.peers if p is not old]
        assert {p.coordinator for p in alive} == {new.peer_id}

    def test_shutdown_peer_no_longer_member(self):
        system = WhisperSystem(ScenarioConfig(seed=142))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        victim = service.group.coordinator_peer()
        victim.shutdown()
        system.settle(2.0)
        survivors = [p for p in service.group.peers if p is not victim]
        for peer in survivors:
            assert victim.peer_id not in peer.groups.members(peer.group_id)

    def test_graceful_much_faster_than_crash(self):
        def failover_elapsed(graceful: bool) -> float:
            system = WhisperSystem(ScenarioConfig(seed=143))
            service = system.deploy_student_service(system.config.replace(replicas=3))
            system.settle(6.0)
            client = system.add_client("maint-client")
            _timed_call(system, service, client, "S00001")  # bind
            victim = service.group.coordinator_peer()
            if graceful:
                victim.shutdown()
            else:
                victim.node.crash()
            outcome = _timed_call(system, service, client, "S00002")
            assert "value" in outcome, outcome
            return outcome["elapsed"]

        graceful = failover_elapsed(graceful=True)
        crash = failover_elapsed(graceful=False)
        assert graceful < 3.0, f"graceful handoff took {graceful}s"
        assert crash > 3.0, f"crash failover took only {crash}s"
        assert graceful < crash / 2

    def test_requests_flow_to_successor(self):
        system = WhisperSystem(ScenarioConfig(seed=144))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        client = system.add_client("flow-client")
        _timed_call(system, service, client, "S00001")
        old = service.group.coordinator_peer()
        old.shutdown()
        outcome = _timed_call(system, service, client, "S00002")
        assert outcome["value"]["studentId"] == "S00002"
        new = service.group.coordinator_peer()
        assert new.requests_executed >= 1
        # The departed peer served nothing after shutdown.
        executed_before = old.requests_executed
        _timed_call(system, service, client, "S00003")
        assert old.requests_executed == executed_before

    def test_rolling_maintenance_all_replicas(self):
        """Shut down and restart each replica in turn; service never lost."""
        system = WhisperSystem(ScenarioConfig(seed=145))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        client = system.add_client("rolling-client")
        for index, peer in enumerate(list(service.group.peers)):
            peer.shutdown()
            system.settle(3.0)
            outcome = _timed_call(system, service, client, f"S{index + 1:05d}")
            assert "value" in outcome, (index, outcome)
            # Bring it back (rejoin via start).
            peer.start(system.rendezvous)
            system.settle(3.0)
