"""Unit tests for semantic web services and group matching."""

import pytest

from repro.core import AnnotationError, SemanticGroupMatcher, SemanticWebService, SyntacticGroupMatcher
from repro.ontology import (
    B2B,
    LEGACY,
    SM,
    ConceptMatcher,
    DegreeOfMatch,
    Reasoner,
    b2b_ontology,
)
from repro.p2p import PeerGroupId, SemanticAdvertisement
from repro.wsdl import (
    Definitions,
    Interface,
    MessagePart,
    Operation,
    student_management_wsdl,
)
from repro.wsdl.annotations import SemanticAnnotation


@pytest.fixture(scope="module")
def ontology():
    return b2b_ontology()


@pytest.fixture(scope="module")
def matcher(ontology):
    return ConceptMatcher(Reasoner(ontology))


def _adv(name, action, inputs, outputs):
    return SemanticAdvertisement(
        group_id=PeerGroupId.from_name(name),
        name=name,
        action=action,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
    )


STUDENT_ANNOTATION = SemanticAnnotation(
    action=SM["StudentInformation"],
    inputs=(SM["StudentID"],),
    outputs=(SM["StudentInfo"],),
)


class TestSemanticWebService:
    def test_valid_service(self, ontology):
        sws = SemanticWebService(student_management_wsdl(), ontology)
        assert sws.operations() == ["StudentInformation"]
        assert sws.get_sem_action("StudentInformation") == SM["StudentInformation"]
        assert sws.get_sem_input("StudentInformation") == (SM["StudentID"],)
        assert sws.get_sem_output("StudentInformation") == (SM["StudentInfo"],)

    def test_unannotated_service_rejected(self, ontology):
        definitions = Definitions(name="Bare", target_namespace="http://t")
        interface = Interface(name="I")
        interface.add_operation(
            Operation(name="Op", inputs=[MessagePart("in", "tns:In")])
        )
        definitions.add_interface(interface)
        with pytest.raises(AnnotationError):
            SemanticWebService(definitions, ontology)

    def test_unknown_concepts_rejected(self, ontology):
        definitions = student_management_wsdl()
        operation = definitions.single_interface().operation("StudentInformation")
        operation.action = "http://ghost.org/onto#Nothing"
        with pytest.raises(AnnotationError, match="missing"):
            SemanticWebService(definitions, ontology)

    def test_unknown_operation_rejected(self, ontology):
        sws = SemanticWebService(student_management_wsdl(), ontology)
        with pytest.raises(AnnotationError):
            sws.annotation("Ghost")


class TestSemanticGroupMatcher:
    def test_exact_advertisement_matches(self, matcher):
        group_matcher = SemanticGroupMatcher(matcher)
        advertisement = _adv(
            "students", SM["StudentInformation"], [SM["StudentID"]], [SM["StudentInfo"]]
        )
        match = group_matcher.match(STUDENT_ANNOTATION, advertisement)
        assert match is not None
        assert match.degree is DegreeOfMatch.EXACT

    def test_synonym_advertisement_matches_exactly(self, matcher):
        """StudentNumber ≡ StudentID and StudentRecord ≡ StudentInfo."""
        group_matcher = SemanticGroupMatcher(matcher)
        advertisement = _adv(
            "students-syn",
            SM["StudentInformation"],
            [SM["StudentNumber"]],
            [SM["StudentRecord"]],
        )
        match = group_matcher.match(STUDENT_ANNOTATION, advertisement)
        assert match is not None
        assert match.degree is DegreeOfMatch.EXACT

    def test_homonym_advertisement_rejected(self, matcher):
        """legacy:StudentInformation has the same local name, different semantics."""
        group_matcher = SemanticGroupMatcher(matcher)
        advertisement = _adv(
            "marketing",
            LEGACY["StudentInformation"],
            [LEGACY["StudentID"]],
            [LEGACY["StudentInfo"]],
        )
        assert group_matcher.match(STUDENT_ANNOTATION, advertisement) is None

    def test_unrelated_advertisement_rejected(self, matcher):
        group_matcher = SemanticGroupMatcher(matcher)
        advertisement = _adv(
            "claims", B2B["ProcessClaim"], [B2B["ClaimID"]], [B2B["ClaimReport"]]
        )
        assert group_matcher.match(STUDENT_ANNOTATION, advertisement) is None

    def test_min_degree_gates_plugin(self, matcher):
        advertisement = _adv(
            "transcripts",
            SM["StudentTranscriptRetrieval"],  # more specific action
            [SM["StudentID"]],
            [SM["StudentTranscript"]],  # more specific output
        )
        exact_only = SemanticGroupMatcher(matcher, min_degree=DegreeOfMatch.EXACT)
        assert exact_only.match(STUDENT_ANNOTATION, advertisement) is None
        plugin_ok = SemanticGroupMatcher(matcher, min_degree=DegreeOfMatch.PLUGIN)
        match = plugin_ok.match(STUDENT_ANNOTATION, advertisement)
        assert match is not None
        assert match.degree is DegreeOfMatch.PLUGIN

    def test_find_all_orders_best_first(self, matcher):
        group_matcher = SemanticGroupMatcher(matcher, min_degree=DegreeOfMatch.PLUGIN)
        exact = _adv("exact", SM["StudentInformation"], [SM["StudentID"]], [SM["StudentInfo"]])
        plugin = _adv(
            "plugin",
            SM["StudentTranscriptRetrieval"],
            [SM["StudentID"]],
            [SM["StudentTranscript"]],
        )
        matches = group_matcher.find_all(STUDENT_ANNOTATION, [plugin, exact])
        assert [m.advertisement.name for m in matches] == ["exact", "plugin"]

    def test_find_best_none_when_empty(self, matcher):
        group_matcher = SemanticGroupMatcher(matcher)
        assert group_matcher.find_best(STUDENT_ANNOTATION, []) is None


class TestSyntacticBaseline:
    def test_homonym_false_positive(self):
        """The syntactic matcher is fooled by the legacy homonym — the
        behaviour §3.1 calls 'high recall and low precision'."""
        syntactic = SyntacticGroupMatcher()
        homonym = _adv(
            "marketing",
            LEGACY["StudentInformation"],
            [LEGACY["StudentID"]],
            [LEGACY["StudentInfo"]],
        )
        assert syntactic.match(STUDENT_ANNOTATION, homonym) is not None

    def test_synonym_false_negative(self):
        """...and misses the synonym advertisement semantics would accept."""
        syntactic = SyntacticGroupMatcher()
        synonym = _adv(
            "students-syn",
            SM["StudentInformation"],
            [SM["StudentNumber"]],
            [SM["StudentRecord"]],
        )
        assert syntactic.match(STUDENT_ANNOTATION, synonym) is None

    def test_true_positive_still_found(self):
        syntactic = SyntacticGroupMatcher()
        exact = _adv(
            "students", SM["StudentInformation"], [SM["StudentID"]], [SM["StudentInfo"]]
        )
        assert syntactic.match(STUDENT_ANNOTATION, exact) is not None

    def test_different_names_rejected(self):
        syntactic = SyntacticGroupMatcher()
        other = _adv("claims", B2B["ProcessClaim"], [B2B["ClaimID"]], [B2B["ClaimReport"]])
        assert syntactic.match(STUDENT_ANNOTATION, other) is None
