"""Tests for saga orchestration: commit, compensation, recovery, DLQ."""

import pytest

from repro.check.invariants import (
    effect_totals,
    exactly_once_violations,
    saga_atomicity_violations,
)
from repro.check.saga import build_loan_fleet, loan_saga, run_dlq_demo
from repro.core import ScenarioConfig, WhisperSystem
from repro.simnet.events import Interrupt
from repro.workflow import (
    CompensableTask,
    DeadLetterQueue,
    Saga,
    SagaLog,
    SagaOrchestrator,
    SagaState,
    StepState,
    WorkflowError,
)


def _deploy(seed=77, replicas=2):
    system = WhisperSystem(
        ScenarioConfig(
            seed=seed,
            replicas=replicas,
            heartbeat_interval=0.5,
            miss_threshold=2,
            request_timeout=1.5,
            deadline_budget=6.0,
        )
    )
    services, fleet = build_loan_fleet(system, replicas)
    system.settle(6.0)
    return system, services, fleet


def _orchestrator(system, name="saga-host", **kwargs):
    host = system.network.add_host(name)
    return host, SagaOrchestrator(host, **kwargs)


SOLVENT = {"loan_id": "LOAN-9001", "applicant": "APP-0001", "amount": 500.0}
INSOLVENT = {"loan_id": "LOAN-9002", "applicant": "APP-0000", "amount": 9_000.0}


class TestHappyPath:
    def test_all_steps_commit(self):
        system, services, fleet = _deploy()
        _host, orchestrator = _orchestrator(system)
        saga = loan_saga(services)
        record = orchestrator.run(saga, dict(SOLVENT))
        assert record.state == SagaState.COMMITTED
        assert [step.state for step in record.steps] == [StepState.COMMITTED] * 3
        assert record.context["registration"]["status"] == "registered"
        assert record.context["reservation"]["status"] == "reserved"
        assert record.context["booking"]["status"] == "booked"
        assert not saga_atomicity_violations(
            orchestrator.log, fleet.all_peers(), final=True
        )

    def test_step_invocation_ids_are_saga_scoped(self):
        system, services, _fleet = _deploy()
        _host, orchestrator = _orchestrator(system)
        record = orchestrator.run(
            loan_saga(services), dict(SOLVENT), saga_id="loan-keyed"
        )
        assert [step.invocation_id for step in record.steps] == [
            "saga:loan-keyed:register:fwd",
            "saga:loan-keyed:reserve:fwd",
            "saga:loan-keyed:book:fwd",
        ]


class TestCompensation:
    def test_insolvent_saga_compensates(self):
        system, services, fleet = _deploy()
        _host, orchestrator = _orchestrator(system)
        record = orchestrator.run(loan_saga(services), dict(INSOLVENT))
        assert record.state == SagaState.COMPENSATED
        register, reserve, book = record.steps
        assert register.state == StepState.COMPENSATED
        assert reserve.state == StepState.COMPENSATED
        assert book.state == StepState.PENDING
        loan_db = services["loan_desk"].all_peers()[0].implementation.backend
        row = loan_db.table("loan_applications").get(INSOLVENT["loan_id"])
        assert row["status"] == "cancelled"
        assert not saga_atomicity_violations(
            orchestrator.log, fleet.all_peers(), final=True
        )

    def test_compensations_run_in_reverse_commit_order(self):
        system, services, fleet = _deploy()
        # BookLoan's whole operation group goes down, so a solvent saga
        # commits register + reserve, fails at book, and must unwind.
        for peer in services["booking"].group_for("BookLoan").peers:
            system.failures.crash_at(system.env.now + 0.01, peer.node.name)
        _host, orchestrator = _orchestrator(system)
        saga = loan_saga(services, timeout=1.0, budget=3.0)
        record = orchestrator.run(saga, dict(SOLVENT))
        assert record.state == SagaState.COMPENSATED
        trace = [
            t for t in system.obs.recent_traces() if t.operation == "saga.loan"
        ][-1]
        comp_order = list(dict.fromkeys(
            span.name for span in trace.spans()
            if span.name.startswith("comp:")
        ))
        assert comp_order == ["comp:book", "comp:reserve", "comp:register"]
        solvency_db = services["solvency"].all_peers()[0].implementation.backend
        assert (
            solvency_db.table("reservations").get(SOLVENT["loan_id"])["status"]
            == "released"
        )
        assert not saga_atomicity_violations(
            orchestrator.log, fleet.all_peers(), final=True
        )

    def test_compensation_disabled_abandons(self):
        system, services, fleet = _deploy()
        _host, orchestrator = _orchestrator(
            system, compensation_enabled=False
        )
        record = orchestrator.run(loan_saga(services), dict(INSOLVENT))
        assert record.state == SagaState.ABANDONED
        violations = saga_atomicity_violations(
            orchestrator.log, fleet.all_peers()
        )
        assert violations and "stranded" in violations[0]


class TestRecovery:
    def test_crash_restart_resumes_exactly_once(self):
        system, services, fleet = _deploy(seed=78)
        env = system.env
        saga_log = SagaLog()
        dlq = DeadLetterQueue()
        host, orchestrator = _orchestrator(system, log=saga_log, dlq=dlq)
        saga = loan_saga(services)
        orchestrator.register(saga)

        def drive():
            try:
                yield from orchestrator.execute(
                    saga, dict(SOLVENT), saga_id="loan-crash"
                )
            except Interrupt:
                return

        host.spawn(drive(), name="saga-loan-crash")
        # Crash the orchestrator host mid-saga; the process dies with the
        # write-ahead log holding an in-doubt step.
        system.failures.crash_for(env.now + 0.012, host.name, 2.0)
        system.run_until(env.now + 4.0)
        record = saga_log.get("loan-crash")
        assert record.state not in (SagaState.COMMITTED, SagaState.COMPENSATED)
        # The restarted host runs a *fresh* orchestrator sharing only the
        # durable log + DLQ; recovery drives the saga to a terminal state.
        recovered = SagaOrchestrator(host, log=saga_log, dlq=dlq)
        recovered.register(saga)
        process = host.spawn(recovered.recover(), name="saga-recover")
        system.run_until(env.now + 10.0)
        assert not process.is_alive
        assert record.state == SagaState.COMMITTED
        peers = fleet.all_peers()
        # In-doubt steps re-issued under their original idempotency keys:
        # every saga-scoped effect applied exactly once.
        assert not exactly_once_violations(peers)
        assert not saga_atomicity_violations(saga_log, peers, final=True)
        totals = effect_totals(peers)
        assert totals["saga:loan-crash:register:fwd"] == 1
        assert totals["saga:loan-crash:book:fwd"] == 1

    def test_recover_honors_saga_id_filter(self):
        system, services, _fleet = _deploy(seed=79)
        saga_log = SagaLog()
        host, orchestrator = _orchestrator(system, log=saga_log)
        saga = loan_saga(services)
        orchestrator.register(saga)
        orchestrator.run(saga, dict(SOLVENT), saga_id="loan-done")
        # A filter naming no incomplete saga resumes nothing.
        process = host.spawn(orchestrator.recover(saga_ids=["loan-other"]))
        system.env.run(until=process)
        assert process.value == []


class TestDeadLetterQueue:
    def test_exhausted_compensation_parks(self):
        demo = run_dlq_demo(seed=5, sagas=2, requeue=False)
        assert demo["parked"] == 2
        assert demo["pending_after"] == 2
        assert all(state == "dead-lettered" for state in demo["states"].values())
        # Dead-lettered sagas are excused by the audit: their
        # incompleteness is explicitly parked, not silently stranded.
        assert demo["violations"] == []
        assert all("register" in entry for entry in demo["entries"])

    def test_requeue_finishes_the_rollback(self):
        demo = run_dlq_demo(seed=5, sagas=2, requeue=True)
        assert demo["parked"] == 2
        assert demo["pending_after"] == 0
        assert all(state == "compensated" for state in demo["states"].values())
        assert demo["violations"] == []

    def test_requeue_rejects_non_dead_lettered(self):
        system, services, _fleet = _deploy(seed=80)
        host, orchestrator = _orchestrator(system)
        saga = loan_saga(services)
        orchestrator.register(saga)
        orchestrator.run(saga, dict(SOLVENT), saga_id="loan-live")
        process = host.spawn(orchestrator.requeue("loan-live"))
        with pytest.raises(WorkflowError, match="not dead-lettered"):
            system.env.run(until=process)


class _FakeService:
    def invoke(self, *args, **kwargs):
        raise NotImplementedError


class TestDefinitions:
    def test_duplicate_step_names_rejected(self):
        task = CompensableTask(
            name="dup", service=_FakeService(), operation="Op",
            input_mapping=lambda ctx: {},
        )
        with pytest.raises(WorkflowError, match="duplicate step name"):
            Saga(name="bad", steps=[task, task]).validate()

    def test_non_proxy_service_rejected(self):
        task = CompensableTask(
            name="raw", service=None, operation="Op",
            input_mapping=lambda ctx: {},
        )
        with pytest.raises(WorkflowError, match="proxy-backed"):
            Saga(name="bad", steps=[task]).validate()

    def test_read_only_step_needs_no_compensation(self):
        task = CompensableTask(
            name="lookup", service=_FakeService(), operation="Op",
            input_mapping=lambda ctx: {},
        )
        assert not task.mutating
