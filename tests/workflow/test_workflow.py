"""Tests for workflow composition, execution, and QoS prediction."""

import pytest

from repro.backend import (
    claim_assessment,
    claims_database,
    loan_approval,
    loans_database,
)
from repro.core import ScenarioConfig, WhisperSystem
from repro.qos import QosMetrics
from repro.workflow import (
    ExclusiveChoice,
    LoopFlow,
    ParallelFlow,
    SequenceFlow,
    ServiceTask,
    WorkflowEngine,
    WorkflowError,
    predict_qos,
)
from repro.wsdl import bank_loans_wsdl, insurance_claims_wsdl


@pytest.fixture(scope="module")
def deployment():
    system = WhisperSystem(ScenarioConfig(seed=111))
    claims = system.deploy_service(
        insurance_claims_wsdl(),
        [claim_assessment(claims_database()) for _ in range(2)],
        group_name="wf-claims",
    )
    loans = system.deploy_service(
        bank_loans_wsdl(),
        [loan_approval(loans_database()) for _ in range(2)],
        group_name="wf-loans",
    )
    system.settle(6.0)
    return system, claims, loans


def _claim_task(claims, name="assess", output="assessment", claim_key="claim_id"):
    return ServiceTask(
        name=name,
        address=claims.address,
        path=claims.path,
        operation="ProcessClaim",
        input_mapping=lambda ctx: {"request": ctx[claim_key]},
        output_key=output,
    )


def _loan_task(loans, name="loan", output="decision"):
    return ServiceTask(
        name=name,
        address=loans.address,
        path=loans.path,
        operation="ApproveLoan",
        input_mapping=lambda ctx: {"request": ctx["loan_id"]},
        output_key=output,
    )


class TestExecution:
    def test_sequence_passes_context(self, deployment):
        system, claims, loans = deployment
        node = system.network.add_host(f"wf-host-{system.env.now}")
        engine = WorkflowEngine(node)
        workflow = SequenceFlow([_claim_task(claims), _loan_task(loans)])
        result = engine.run(workflow, {"claim_id": "C00001", "loan_id": "L00001"})
        assert result.succeeded, result.error
        assert result.context["assessment"]["claimId"] == "C00001"
        assert "approved" in result.context["decision"]
        assert [record.task for record in result.records] == ["assess", "loan"]

    def test_parallel_branches_concurrent(self, deployment):
        system, claims, loans = deployment
        node = system.network.add_host(f"wf-par-{system.env.now}")
        engine = WorkflowEngine(node)
        workflow = ParallelFlow([_claim_task(claims), _loan_task(loans)])
        result = engine.run(workflow, {"claim_id": "C00002", "loan_id": "L00002"})
        assert result.succeeded
        assert "assessment" in result.context
        assert "decision" in result.context
        # Concurrency: total elapsed is close to the slower branch, not the sum.
        assess = result.record_for("assess").elapsed
        loan = result.record_for("loan").elapsed
        assert result.elapsed < (assess + loan) * 0.95

    def test_choice_takes_matching_branch(self, deployment):
        system, claims, loans = deployment
        node = system.network.add_host(f"wf-choice-{system.env.now}")
        engine = WorkflowEngine(node)
        workflow = SequenceFlow([
            _claim_task(claims),
            ExclusiveChoice(
                branches=[
                    (
                        lambda ctx: ctx["assessment"]["assessment"] == "approve",
                        1.0,
                        _loan_task(loans, name="bridge-loan"),
                    ),
                ],
            ),
        ])
        result = engine.run(workflow, {"claim_id": "C00004", "loan_id": "L00004"})
        assert result.succeeded
        took_loan = result.record_for("bridge-loan") is not None
        approved = result.context["assessment"]["assessment"] == "approve"
        assert took_loan == approved

    def test_loop_runs_until_condition(self, deployment):
        system, claims, _loans = deployment
        node = system.network.add_host(f"wf-loop-{system.env.now}")
        engine = WorkflowEngine(node)
        state = {"count": 0}

        def bump(ctx):
            state["count"] += 1
            return {"request": ctx["claim_id"]}

        workflow = LoopFlow(
            body=ServiceTask(
                name="poll",
                address=claims.address,
                path=claims.path,
                operation="ProcessClaim",
                input_mapping=bump,
                output_key="assessment",
            ),
            condition=lambda ctx: state["count"] < 3,
            repeat_probability=0.5,
        )
        result = engine.run(workflow, {"claim_id": "C00005"})
        assert result.succeeded
        assert len(result.records) == 3

    def test_loop_bound_enforced(self, deployment):
        system, claims, _loans = deployment
        node = system.network.add_host(f"wf-bound-{system.env.now}")
        engine = WorkflowEngine(node)
        workflow = LoopFlow(
            body=_claim_task(claims, name="forever"),
            condition=lambda ctx: True,
            max_iterations=2,
        )
        result = engine.run(workflow, {"claim_id": "C00006"})
        assert not result.succeeded
        assert "iterations" in result.error

    def test_task_fault_fails_workflow(self, deployment):
        system, claims, _loans = deployment
        node = system.network.add_host(f"wf-fault-{system.env.now}")
        engine = WorkflowEngine(node)
        workflow = SequenceFlow([_claim_task(claims)])
        result = engine.run(workflow, {"claim_id": "C99999"})
        assert not result.succeeded
        assert "SoapFault" in result.error
        assert not result.record_for("assess").succeeded

    def test_parallel_failure_propagates(self, deployment):
        system, claims, loans = deployment
        node = system.network.add_host(f"wf-parfail-{system.env.now}")
        engine = WorkflowEngine(node)
        workflow = ParallelFlow([
            _claim_task(claims, name="good"),
            _claim_task(claims, name="bad", output="bad-out", claim_key="bad_claim"),
        ])
        result = engine.run(
            workflow, {"claim_id": "C00007", "bad_claim": "C99999"}
        )
        assert not result.succeeded


class TestValidation:
    def test_empty_sequence_rejected(self):
        with pytest.raises(WorkflowError):
            SequenceFlow([]).validate()

    def test_conflicting_parallel_outputs_rejected(self, deployment):
        _system, claims, _loans = deployment
        workflow = ParallelFlow([
            _claim_task(claims, name="a", output="same"),
            _claim_task(claims, name="b", output="same"),
        ])
        with pytest.raises(WorkflowError, match="both write"):
            workflow.validate()

    def test_choice_probabilities_must_cover(self, deployment):
        _system, claims, _loans = deployment
        choice = ExclusiveChoice(
            branches=[(lambda ctx: True, 0.5, _claim_task(claims))]
        )
        with pytest.raises(WorkflowError):
            choice.validate()

    def test_bad_loop_probability_rejected(self, deployment):
        _system, claims, _loans = deployment
        with pytest.raises(WorkflowError):
            LoopFlow(
                body=_claim_task(claims), condition=lambda ctx: False,
                repeat_probability=1.0,
            ).validate()


class TestParallelJoin:
    def test_runtime_conflicting_writes_fail_the_workflow(self, deployment):
        """Branches writing different values to one key is a data race
        the static output-key check cannot see — the join must refuse."""
        system, claims, _loans = deployment
        node = system.network.add_host(f"wf-join-{system.env.now}")
        engine = WorkflowEngine(node)

        def tagged_mapping(tag):
            def mapping(ctx):
                ctx["winner"] = tag
                return {"request": ctx["claim_id"]}
            return mapping

        workflow = ParallelFlow([
            ServiceTask(
                name="left", address=claims.address, path=claims.path,
                operation="ProcessClaim", input_mapping=tagged_mapping("L"),
                output_key="left-out",
            ),
            ServiceTask(
                name="right", address=claims.address, path=claims.path,
                operation="ProcessClaim", input_mapping=tagged_mapping("R"),
                output_key="right-out",
            ),
        ])
        result = engine.run(workflow, {"claim_id": "C00020"})
        assert not result.succeeded
        assert "conflicting values for 'winner'" in result.error

    def test_identical_writes_merge_cleanly(self, deployment):
        system, claims, _loans = deployment
        node = system.network.add_host(f"wf-merge-{system.env.now}")
        engine = WorkflowEngine(node)
        shared = {"note": "same object"}

        def write_shared(ctx):
            ctx["agreed"] = shared
            return {"request": ctx["claim_id"]}

        workflow = ParallelFlow([
            ServiceTask(
                name="left", address=claims.address, path=claims.path,
                operation="ProcessClaim", input_mapping=write_shared,
                output_key="left-out",
            ),
            ServiceTask(
                name="right", address=claims.address, path=claims.path,
                operation="ProcessClaim", input_mapping=write_shared,
                output_key="right-out",
            ),
        ])
        result = engine.run(workflow, {"claim_id": "C00021"})
        assert result.succeeded, result.error
        assert result.context["agreed"] is shared


class TestTaskRecords:
    def test_records_for_returns_every_occurrence(self, deployment):
        system, claims, _loans = deployment
        node = system.network.add_host(f"wf-records-{system.env.now}")
        engine = WorkflowEngine(node)
        state = {"count": 0}

        def bump(ctx):
            state["count"] += 1
            return {"request": ctx["claim_id"]}

        workflow = LoopFlow(
            body=ServiceTask(
                name="poll", address=claims.address, path=claims.path,
                operation="ProcessClaim", input_mapping=bump,
                output_key="assessment",
            ),
            condition=lambda ctx: state["count"] < 3,
            repeat_probability=0.5,
        )
        result = engine.run(workflow, {"claim_id": "C00022"})
        assert result.succeeded
        records = result.records_for("poll")
        assert len(records) == 3
        assert [record.attempt for record in records] == [1, 2, 3]
        # record_for keeps its documented first-match contract.
        assert result.record_for("poll") is records[0]
        assert result.records_for("missing") == []


class TestProxyBackedTasks:
    def test_task_runs_through_the_proxy_pipeline(self, deployment):
        system, claims, _loans = deployment
        node = system.network.add_host(f"wf-proxy-{system.env.now}")
        engine = WorkflowEngine(node)
        workflow = SequenceFlow([
            ServiceTask(
                name="assess", service=claims, operation="ProcessClaim",
                input_mapping=lambda ctx: {"request": ctx["claim_id"]},
                output_key="assessment", timeout=2.0, budget=8.0,
            ),
        ])
        result = engine.run(workflow, {"claim_id": "C00030"})
        assert result.succeeded, result.error
        record = result.record_for("assess")
        assert record.invocation_id is not None
        assert record.outcome == "ok"
        assert record.attempts == 1
        assert not record.deduped

    def test_terminal_fault_is_structured(self, deployment):
        system, claims, _loans = deployment
        node = system.network.add_host(f"wf-proxyfault-{system.env.now}")
        engine = WorkflowEngine(node)
        workflow = SequenceFlow([
            ServiceTask(
                name="assess", service=claims, operation="ProcessClaim",
                input_mapping=lambda ctx: {"request": "C99999"},
                output_key="assessment", timeout=2.0, budget=8.0,
            ),
        ])
        result = engine.run(workflow, {"claim_id": "C99999"})
        assert not result.succeeded
        assert result.error.startswith("SoapFault[")
        assert not result.record_for("assess").succeeded

    def test_deadline_exhaustion_is_structured(self):
        """A proxy-level terminal outcome (deadline exceeded against a
        dead group) lands in ``result.error``, not an escaped exception."""
        system = WhisperSystem(ScenarioConfig(seed=112, replicas=2))
        claims = system.deploy_service(
            insurance_claims_wsdl(),
            [claim_assessment(claims_database()) for _ in range(2)],
            group_name="wf-dead-claims",
        )
        system.settle(6.0)
        for peer in claims.group.peers:
            system.failures.crash_at(system.env.now + 0.01, peer.node.name)
        node = system.network.add_host("wf-deadline")
        engine = WorkflowEngine(node)
        workflow = SequenceFlow([
            ServiceTask(
                name="assess", service=claims, operation="ProcessClaim",
                input_mapping=lambda ctx: {"request": ctx["claim_id"]},
                output_key="assessment", timeout=0.5, budget=1.5,
            ),
        ])
        result = engine.run(workflow, {"claim_id": "C00031"})
        assert not result.succeeded
        assert "deadline exhausted" in result.error
        record = result.record_for("assess")
        assert record.error == result.error
        assert not record.succeeded


class TestPrediction:
    T1 = QosMetrics(time=1.0, cost=1.0, reliability=0.9)
    T2 = QosMetrics(time=2.0, cost=2.0, reliability=0.8)

    def _task(self, name):
        return ServiceTask(
            name=name, address=("h", 80), path="/s", operation="Op",
            input_mapping=lambda ctx: {},
        )

    def test_sequence_prediction(self):
        workflow = SequenceFlow([self._task("a"), self._task("b")])
        predicted = predict_qos(workflow, {"a": self.T1, "b": self.T2})
        assert predicted.time == 3.0
        assert predicted.reliability == pytest.approx(0.72)

    def test_parallel_prediction(self):
        workflow = ParallelFlow([self._task("a"), self._task("b")])
        predicted = predict_qos(workflow, {"a": self.T1, "b": self.T2})
        assert predicted.time == 2.0

    def test_choice_prediction_weighted(self):
        workflow = ExclusiveChoice(
            branches=[
                (lambda ctx: True, 0.25, self._task("a")),
                (lambda ctx: True, 0.75, self._task("b")),
            ]
        )
        predicted = predict_qos(workflow, {"a": self.T1, "b": self.T2})
        assert predicted.time == pytest.approx(0.25 * 1 + 0.75 * 2)

    def test_loop_prediction(self):
        workflow = LoopFlow(
            body=self._task("a"), condition=lambda ctx: False,
            repeat_probability=0.5,
        )
        predicted = predict_qos(workflow, {"a": self.T1})
        assert predicted.time == pytest.approx(2.0)

    def test_missing_metrics_rejected(self):
        with pytest.raises(WorkflowError, match="no QoS metrics"):
            predict_qos(self._task("ghost"), {})

    def test_prediction_tracks_measurement(self, deployment):
        """Predicted sequence time is of the same order as measured."""
        system, claims, loans = deployment
        node = system.network.add_host(f"wf-predict-{system.env.now}")
        engine = WorkflowEngine(node)
        workflow = SequenceFlow([_claim_task(claims), _loan_task(loans)])
        per_task = QosMetrics(time=0.01, cost=1.0, reliability=0.999)
        predicted = predict_qos(workflow, {"assess": per_task, "loan": per_task})
        result = engine.run(workflow, {"claim_id": "C00010", "loan_id": "L00010"})
        assert result.succeeded
        assert result.elapsed < predicted.time * 3
        assert result.elapsed > predicted.time * 0.1
