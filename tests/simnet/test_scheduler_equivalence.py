"""Determinism guard: the batched scheduler == the seed heap scheduler.

The PR-5 checker's replay files, every seeded benchmark, and the perf
record's baseline mode all assume one thing: swapping the scheduler
implementation never changes the event order.  This suite pins that on
seeds 7/11/42 at three levels:

* a mixed kernel workload (colliding timers, zero-delay chains, store
  handshakes, reverse-order interrupts) — byte-identical event orderings
  and process-visible logs, with and without each ``TiebreakPolicy``;
* full-stack checker runs (``run_schedule``) — identical
  ``RunResult.digest()`` fingerprints, the exact digests replay files
  verify;
* a full deployment's observability — byte-identical request-trace JSON
  and message counters.
"""

from __future__ import annotations

import hashlib
import json
import random

import pytest

from repro.bench import ClosedLoopWorkload
from repro.check import CheckScenario, Schedule, run_schedule
from repro.check.tiebreak import (
    AdversarialDelayTiebreak,
    FifoTiebreak,
    SeededShuffleTiebreak,
)
from repro.core import ScenarioConfig, WhisperSystem
from repro.simnet import Environment
from repro.simnet import environment as environment_module
from repro.simnet.events import Interrupt
from repro.simnet.queues import Store

SEEDS = (7, 11, 42)


def _digest(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _run_mixed_kernel(seed: int, scheduler: str, tiebreak=None):
    """A workload hitting every scheduling shape; returns (order, log).

    ``order`` is the scheduler's own event sequence (via ``on_event``);
    ``log`` is what the processes observed.  All randomness is drawn
    up-front from ``seed`` so the two runs compare apples to apples.
    """
    rng = random.Random(seed)
    delays = [
        [rng.choice((0.0, 0.001, 0.001, 0.002, 0.005)) for _ in range(30)]
        for _ in range(6)
    ]
    env = Environment(scheduler=scheduler, tiebreak=tiebreak)
    order = []
    env.on_event = lambda now, event: order.append(
        (round(now, 9), type(event).__name__)
    )
    log = []
    store_a, store_b = Store(env), Store(env)
    parking = Store(env)  # never filled: sleepers park here until the storm

    def ticker(index: int):
        for step, delay in enumerate(delays[index]):
            yield env.timeout(delay)
            log.append((env.now, f"tick{index}.{step}"))

    def producer():
        for step in range(20):
            store_a.put(("job", step))
            item = yield store_b.get()
            log.append((env.now, f"prod{step}:{item[1]}"))

    def consumer():
        for step in range(20):
            item = yield store_a.get()
            yield env.timeout(0.001 if step % 3 else 0.0)
            store_b.put(("ack", item[1]))
            log.append((env.now, f"cons{step}"))

    def sleeper(index: int):
        try:
            yield parking.get() if index % 2 else env.timeout(60.0)
            log.append((env.now, f"sleeper{index}:woke"))
        except Interrupt as interrupt:
            log.append((env.now, f"sleeper{index}:{interrupt.cause}"))

    def interrupter(victims):
        yield env.timeout(0.0131)
        # Reverse order on purpose: the adversarial order for waiter
        # cancellation, and interrupts take the priority (urgent) lane.
        for victim in reversed(victims):
            if victim.is_alive:
                victim.interrupt("storm")
        log.append((env.now, "storm-sent"))

    processes = [env.process(ticker(i)) for i in range(6)]
    processes += [env.process(producer()), env.process(consumer())]
    sleepers = [env.process(sleeper(i)) for i in range(8)]
    processes.append(env.process(interrupter(sleepers)))
    for process in processes + sleepers:
        env.run(until=process)
    env.run()  # drain orphaned timeouts deterministically
    return order, log


class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_event_order_and_log_identical(self, seed):
        heap_order, heap_log = _run_mixed_kernel(seed, "heap")
        batched_order, batched_log = _run_mixed_kernel(seed, "batched")
        assert _digest(heap_order) == _digest(batched_order)
        assert _digest(heap_log) == _digest(batched_log)
        assert heap_order == batched_order
        assert heap_log == batched_log

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda seed: FifoTiebreak(),
            lambda seed: SeededShuffleTiebreak(seed),
            lambda seed: AdversarialDelayTiebreak("sleeper"),
        ],
        ids=["fifo", "shuffle", "adversarial"],
    )
    def test_equivalent_under_every_tiebreak_policy(self, seed, policy_factory):
        # A policy may rank new events before drained peers, so the
        # batched environment must route everything through the heap —
        # and still produce the heap scheduler's exact order.
        heap_order, heap_log = _run_mixed_kernel(
            seed, "heap", tiebreak=policy_factory(seed)
        )
        batched_order, batched_log = _run_mixed_kernel(
            seed, "batched", tiebreak=policy_factory(seed)
        )
        assert heap_order == batched_order
        assert heap_log == batched_log

    def test_zero_underflow_delay_keeps_seed_order(self):
        # A positive delay tiny enough that now + delay == now must still
        # be processed in seq order with genuinely-zero delays (the seed
        # semantics), not fast-pathed ahead of or behind them.
        def run(scheduler):
            env = Environment(scheduler=scheduler)
            log = []

            def driver():
                yield env.timeout(1.0)
                for index in range(6):
                    delay = 1e-18 if index % 2 else 0.0
                    event = env.timeout(delay, value=index)
                    event.add_callback(
                        lambda ev: log.append((env.now, ev._value))
                    )
                yield env.timeout(1.0)

            env.run(until=env.process(driver()))
            return log

        assert run("heap") == run("batched")


class TestFullStackEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_checker_digest_identical(self, monkeypatch, seed):
        scenario = CheckScenario(
            seed=seed, settle=4.0, probe_duration=4.0, cooldown=4.0
        )
        schedules = [
            Schedule(label="baseline"),
            Schedule(
                tiebreak={"kind": "shuffle", "seed": seed}, label="shuffled"
            ),
        ]
        for schedule in schedules:
            digests = {}
            for scheduler in ("heap", "batched"):
                monkeypatch.setattr(
                    environment_module, "DEFAULT_SCHEDULER", scheduler
                )
                digests[scheduler] = run_schedule(scenario, schedule).digest()
            assert digests["heap"] == digests["batched"], schedule.label

    @pytest.mark.parametrize("seed", SEEDS)
    def test_obs_traces_byte_identical(self, monkeypatch, seed):
        def run(scheduler):
            monkeypatch.setattr(
                environment_module, "DEFAULT_SCHEDULER", scheduler
            )
            system = WhisperSystem(ScenarioConfig(seed=seed, replicas=2, students=20))
            service = system.deploy_student_service()
            system.settle()
            ClosedLoopWorkload(
                system, service.address, service.path, "StudentInformation",
                clients=2, think_time=0.05, requests_per_client=4,
            ).run()
            return (
                system.obs.traces_to_json(),
                system.obs.to_json(),
                system.trace.snapshot(),
            )

        assert run("heap") == run("batched")
