"""Unit tests for the event primitives."""

import pytest

from repro.simnet import Environment
from repro.simnet.events import AllOf, AnyOf, Event, SimulationError, Timeout


@pytest.fixture
def env():
    return Environment()


class TestEventLifecycle:
    def test_new_event_is_untriggered(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_before_trigger(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_fail_sets_exception(self, env):
        event = env.event()
        error = RuntimeError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.value is error

    def test_double_succeed_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_succeed_after_fail_raises(self, env):
        event = env.event()
        event.fail(ValueError("x"))
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_callbacks_run_on_processing(self, env):
        event = env.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed("hello")
        env.run()
        assert seen == ["hello"]
        assert event.processed

    def test_add_callback_after_processing_raises(self, env):
        event = env.event()
        event.succeed()
        env.run()
        with pytest.raises(SimulationError):
            event.add_callback(lambda e: None)


class TestTimeout:
    def test_fires_at_deadline(self, env):
        timeout = env.timeout(5.0, value="done")
        result = env.run(until=timeout)
        assert result == "done"
        assert env.now == 5.0

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_zero_delay_fires_immediately(self, env):
        timeout = env.timeout(0.0, value=1)
        env.run(until=timeout)
        assert env.now == 0.0

    def test_timeouts_fire_in_order(self, env):
        order = []
        for delay in (3.0, 1.0, 2.0):
            t = env.timeout(delay, value=delay)
            t.add_callback(lambda e: order.append(e.value))
        env.run()
        assert order == [1.0, 2.0, 3.0]


class TestConditions:
    def test_anyof_fires_on_first(self, env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(5.0, value="slow")
        any_of = AnyOf(env, [fast, slow])
        result = env.run(until=any_of)
        assert fast in result
        assert slow not in result
        assert env.now == 1.0

    def test_allof_waits_for_all(self, env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(5.0, value="slow")
        all_of = AllOf(env, [fast, slow])
        result = env.run(until=all_of)
        assert result[fast] == "fast"
        assert result[slow] == "slow"
        assert env.now == 5.0

    def test_or_operator(self, env):
        composite = env.timeout(1.0) | env.timeout(9.0)
        env.run(until=composite)
        assert env.now == 1.0

    def test_and_operator(self, env):
        composite = env.timeout(1.0) & env.timeout(2.0)
        env.run(until=composite)
        assert env.now == 2.0

    def test_empty_condition_fires_immediately(self, env):
        condition = AllOf(env, [])
        assert condition.triggered

    def test_condition_with_failed_event_fails(self, env):
        event = env.event()
        any_of = AnyOf(env, [event, env.timeout(10.0)])
        event.fail(RuntimeError("inner"))
        with pytest.raises(RuntimeError, match="inner"):
            env.run(until=any_of)

    def test_condition_over_already_processed_event(self, env):
        done = env.timeout(1.0, value="x")
        env.run(until=done)
        any_of = AnyOf(env, [done, env.timeout(10.0)])
        env.run(until=any_of)
        # The processed event satisfies the condition without waiting.
        assert env.now == 1.0

    def test_mixing_environments_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            AnyOf(env, [env.timeout(1), other.timeout(1)])
