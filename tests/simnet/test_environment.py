"""Unit tests for the environment / run loop."""

import pytest

from repro.simnet import Environment, SimulationError
from repro.simnet.environment import EmptySchedule


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        env = Environment(initial_time=100.0)
        assert env.now == 100.0

    def test_run_until_time_advances_clock(self, env):
        env.timeout(50.0)
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_raises(self, env):
        env.timeout(5.0)
        env.run(until=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_clock_does_not_advance_past_queue_end(self, env):
        env.timeout(3.0)
        env.run()  # queue drains at t=3
        assert env.now == 3.0


class TestRun:
    def test_run_empty_queue_returns_none(self, env):
        assert env.run() is None

    def test_run_until_event_returns_value(self, env):
        assert env.run(until=env.timeout(2.0, value="v")) == "v"

    def test_run_until_failed_event_raises(self, env):
        event = env.event()
        event.fail(KeyError("k"))
        with pytest.raises(KeyError):
            env.run(until=event)

    def test_run_until_already_processed_event(self, env):
        timeout = env.timeout(1.0, value=7)
        env.run()
        assert env.run(until=timeout) == 7

    def test_run_until_event_that_never_fires_raises(self, env):
        pending = env.event()
        env.timeout(1.0)
        with pytest.raises(SimulationError):
            env.run(until=pending)

    def test_step_empty_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek_reports_next_event_time(self, env):
        env.timeout(4.0)
        env.timeout(2.0)
        assert env.peek() == 2.0

    def test_peek_empty_is_infinite(self, env):
        assert env.peek() == float("inf")

    def test_negative_schedule_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.schedule(env.event(), delay=-0.1)


class TestDeterminism:
    def test_same_time_events_fifo(self, env):
        order = []
        for tag in range(10):
            t = env.timeout(1.0, value=tag)
            t.add_callback(lambda e: order.append(e.value))
        env.run()
        assert order == list(range(10))

    def test_urgent_events_processed_first(self, env):
        order = []
        normal = env.event()
        normal._ok, normal._value = True, "normal"
        normal.add_callback(lambda e: order.append(e.value))
        env.schedule(normal, delay=1.0)
        urgent = env.event()
        urgent._ok, urgent._value = True, "urgent"
        urgent.add_callback(lambda e: order.append(e.value))
        env.schedule(urgent, delay=1.0, priority=True)
        env.run()
        assert order == ["urgent", "normal"]

    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            env = Environment()
            seen = []

            def proc():
                for _ in range(5):
                    yield env.timeout(0.5)
                    seen.append(env.now)

            env.process(proc())
            env.run()
            return seen

        assert run_once() == run_once()
