"""Unit tests for the failure injector."""

import pytest

from repro.simnet import FailureInjector


@pytest.fixture
def injector(network):
    return FailureInjector(network)


class TestCrashRestart:
    def test_crash_at(self, env, network, injector):
        host = network.add_host("h")
        injector.crash_at(5.0, "h")
        env.run(until=4.9)
        assert host.up
        env.run(until=5.1)
        assert not host.up

    def test_restart_at(self, env, network, injector):
        host = network.add_host("h")
        injector.crash_at(1.0, "h")
        injector.restart_at(3.0, "h")
        env.run(until=2.0)
        assert not host.up
        env.run(until=3.5)
        assert host.up

    def test_crash_for(self, env, network, injector):
        host = network.add_host("h")
        injector.crash_for(1.0, "h", downtime=2.0)
        env.run(until=2.0)
        assert not host.up
        env.run(until=3.5)
        assert host.up
        assert host.crash_count == 1

    def test_past_schedule_rejected(self, env, network, injector):
        network.add_host("h")
        env.timeout(10.0)
        env.run(until=5.0)
        with pytest.raises(ValueError):
            injector.crash_at(1.0, "h")

    def test_log_records_events(self, env, network, injector):
        network.add_host("h")
        injector.crash_for(1.0, "h", downtime=1.0)
        env.run(until=5.0)
        kinds = [event.kind for event in injector.log]
        assert kinds == ["crash", "restart"]
        assert injector.crash_times() == [(1.0, "h")]

    def test_crash_already_down_host_not_logged_twice(self, env, network, injector):
        network.add_host("h")
        injector.crash_at(1.0, "h")
        injector.crash_at(2.0, "h")
        env.run(until=3.0)
        assert len(injector.crash_times()) == 1


class TestPartitions:
    def test_partition_with_duration_heals(self, env, network, injector):
        network.add_host("a")
        network.add_host("b")
        injector.partition_at(1.0, ["a"], ["b"], duration=2.0)
        env.run(until=1.5)
        assert network.partitioned("a", "b")
        env.run(until=3.5)
        assert not network.partitioned("a", "b")

    def test_partition_without_duration_persists(self, env, network, injector):
        network.add_host("a")
        network.add_host("b")
        injector.partition_at(1.0, ["a"], ["b"])
        env.run(until=100.0)
        assert network.partitioned("a", "b")

    def test_overlapping_partitions_heal_independently(
        self, env, network, injector
    ):
        """Regression: each timed partition heals only *itself*.  The old
        timer called heal-everything, so the first expiry ended every
        overlapping split early."""
        for name in ("a", "b", "c"):
            network.add_host(name)
        injector.partition_at(1.0, ["a"], ["b"], duration=2.0)
        injector.partition_at(1.5, ["a"], ["c"], duration=10.0)
        env.run(until=4.0)  # first split healed at t=3
        assert not network.partitioned("a", "b")
        assert network.partitioned("a", "c")  # must survive the first heal
        env.run(until=12.0)
        assert not network.partitioned("a", "c")
        heals = [event for event in injector.log if event.kind == "heal"]
        assert len(heals) == 2
        assert "'b'" in heals[0].target and "'c'" in heals[1].target


class TestChurn:
    def test_churn_generates_crashes_and_recoveries(self, env, network, injector):
        for index in range(3):
            network.add_host(f"h{index}")
        injector.churn(["h0", "h1", "h2"], mtbf=5.0, mttr=1.0, until=60.0)
        env.run(until=60.0)
        crashes = [e for e in injector.log if e.kind == "crash"]
        restarts = [e for e in injector.log if e.kind == "restart"]
        assert len(crashes) > 5
        # Every host that crashed eventually restarts within the window.
        assert len(restarts) >= len(crashes) - 3

    def test_churn_is_deterministic_per_seed(self, env):
        from repro.simnet import Environment, Network, RngRegistry

        def run_once():
            env = Environment()
            network = Network(env, rng=RngRegistry(99))
            injector = FailureInjector(network)
            network.add_host("h0")
            injector.churn(["h0"], mtbf=3.0, mttr=0.5, until=30.0)
            env.run(until=30.0)
            return [(round(e.time, 9), e.kind) for e in injector.log]

        assert run_once() == run_once()

    def test_churn_never_schedules_past_until(self, env, network, injector):
        network.add_host("h0")
        injector.churn(["h0"], mtbf=1.0, mttr=0.5, until=20.0)
        env.run()
        assert all(event.time <= 20.0 + 1e-9 for event in injector.log)

    def test_churn_schedule_pairs_never_overlap(self, env, network, injector):
        """Regression: the next crash must be sampled from the *repair*
        time.  The old scheduler sampled it from the crash time, so with
        MTTR >> MTBF a host was routinely re-crashed while still down and
        an earlier pending restart truncated the later outage."""
        network.add_host("h0")
        schedule = injector.churn(["h0"], mtbf=2.0, mttr=10.0, until=200.0)
        assert schedule  # harsh regime still produces outages
        previous_restart = None
        for crash, restart, host in schedule:
            assert host == "h0"
            assert crash < restart
            if previous_restart is not None:
                assert crash > previous_restart  # next outage starts after repair
            previous_restart = restart

    def test_churn_log_strictly_alternates_per_host(self, env, network, injector):
        """Each host's injected events go crash, restart, crash, restart…
        — the observable symptom of the old overlap bug was a crash
        logged while the host was already down (or silently dropped)."""
        for index in range(3):
            network.add_host(f"h{index}")
        injector.churn(["h0", "h1", "h2"], mtbf=2.0, mttr=6.0, until=120.0)
        env.run()
        assert injector.alternation_violations() == []
        for host in ("h0", "h1", "h2"):
            kinds = [
                e.kind for e in injector.log
                if e.target == host and e.kind in ("crash", "restart")
            ]
            assert kinds, f"{host} never crashed under harsh churn"
            expected = ["crash", "restart"] * (len(kinds) // 2 + 1)
            assert kinds == expected[: len(kinds)]

    def test_churn_delivers_nominal_downtime(self, env, network, injector):
        """Regression (behavioral): with MTTR >> MTBF the host should be
        down ~MTTR/(MTBF+MTTR) of the time (~0.83 here).  The old
        scheduler's overlapping outages were truncated by earlier pending
        restarts, delivering only ~0.45."""
        host = network.add_host("h0")
        observer = network.add_host("observer")  # never crashed, keeps sampling
        until = 200.0
        injector.churn(["h0"], mtbf=2.0, mttr=10.0, until=until)
        samples = []

        def sampler():
            while env.now < until:
                samples.append(host.up)
                yield env.timeout(0.1)

        observer.spawn(sampler())
        env.run(until=until)
        down_fraction = samples.count(False) / len(samples)
        assert down_fraction > 0.65

    def test_alternation_violations_flags_double_crash(
        self, env, network, injector
    ):
        from repro.simnet.failure import FailureEvent

        injector.log.append(FailureEvent(1.0, "crash", "h"))
        injector.log.append(FailureEvent(2.0, "crash", "h"))
        violations = injector.alternation_violations()
        assert len(violations) == 1
        assert "h" in violations[0] and "crash" in violations[0]
