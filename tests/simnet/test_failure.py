"""Unit tests for the failure injector."""

import pytest

from repro.simnet import FailureInjector


@pytest.fixture
def injector(network):
    return FailureInjector(network)


class TestCrashRestart:
    def test_crash_at(self, env, network, injector):
        host = network.add_host("h")
        injector.crash_at(5.0, "h")
        env.run(until=4.9)
        assert host.up
        env.run(until=5.1)
        assert not host.up

    def test_restart_at(self, env, network, injector):
        host = network.add_host("h")
        injector.crash_at(1.0, "h")
        injector.restart_at(3.0, "h")
        env.run(until=2.0)
        assert not host.up
        env.run(until=3.5)
        assert host.up

    def test_crash_for(self, env, network, injector):
        host = network.add_host("h")
        injector.crash_for(1.0, "h", downtime=2.0)
        env.run(until=2.0)
        assert not host.up
        env.run(until=3.5)
        assert host.up
        assert host.crash_count == 1

    def test_past_schedule_rejected(self, env, network, injector):
        network.add_host("h")
        env.timeout(10.0)
        env.run(until=5.0)
        with pytest.raises(ValueError):
            injector.crash_at(1.0, "h")

    def test_log_records_events(self, env, network, injector):
        network.add_host("h")
        injector.crash_for(1.0, "h", downtime=1.0)
        env.run(until=5.0)
        kinds = [event.kind for event in injector.log]
        assert kinds == ["crash", "restart"]
        assert injector.crash_times() == [(1.0, "h")]

    def test_crash_already_down_host_not_logged_twice(self, env, network, injector):
        network.add_host("h")
        injector.crash_at(1.0, "h")
        injector.crash_at(2.0, "h")
        env.run(until=3.0)
        assert len(injector.crash_times()) == 1


class TestPartitions:
    def test_partition_with_duration_heals(self, env, network, injector):
        network.add_host("a")
        network.add_host("b")
        injector.partition_at(1.0, ["a"], ["b"], duration=2.0)
        env.run(until=1.5)
        assert network.partitioned("a", "b")
        env.run(until=3.5)
        assert not network.partitioned("a", "b")

    def test_partition_without_duration_persists(self, env, network, injector):
        network.add_host("a")
        network.add_host("b")
        injector.partition_at(1.0, ["a"], ["b"])
        env.run(until=100.0)
        assert network.partitioned("a", "b")


class TestChurn:
    def test_churn_generates_crashes_and_recoveries(self, env, network, injector):
        for index in range(3):
            network.add_host(f"h{index}")
        injector.churn(["h0", "h1", "h2"], mtbf=5.0, mttr=1.0, until=60.0)
        env.run(until=60.0)
        crashes = [e for e in injector.log if e.kind == "crash"]
        restarts = [e for e in injector.log if e.kind == "restart"]
        assert len(crashes) > 5
        # Every host that crashed eventually restarts within the window.
        assert len(restarts) >= len(crashes) - 3

    def test_churn_is_deterministic_per_seed(self, env):
        from repro.simnet import Environment, Network, RngRegistry

        def run_once():
            env = Environment()
            network = Network(env, rng=RngRegistry(99))
            injector = FailureInjector(network)
            network.add_host("h0")
            injector.churn(["h0"], mtbf=3.0, mttr=0.5, until=30.0)
            env.run(until=30.0)
            return [(round(e.time, 9), e.kind) for e in injector.log]

        assert run_once() == run_once()

    def test_churn_never_schedules_past_until(self, env, network, injector):
        network.add_host("h0")
        injector.churn(["h0"], mtbf=1.0, mttr=0.5, until=20.0)
        env.run()
        assert all(event.time <= 20.0 + 1e-9 for event in injector.log)
