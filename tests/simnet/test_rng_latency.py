"""Unit tests for RNG streams and latency models."""

import random

import pytest

from repro.simnet import (
    ConstantLatency,
    LogNormalLatency,
    RngRegistry,
    UniformLatency,
    lan_latency,
)


class TestRngRegistry:
    def test_same_name_same_stream(self):
        registry = RngRegistry(1)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(1).stream("net")
        b = RngRegistry(1).stream("net")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_independent_of_creation_order(self):
        first = RngRegistry(1)
        first.stream("alpha")
        alpha_then_beta = first.stream("beta").random()
        second = RngRegistry(1)
        beta_only = second.stream("beta").random()
        assert alpha_then_beta == beta_only

    def test_different_seeds_differ(self):
        assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()

    def test_fork_produces_distinct_but_deterministic_child(self):
        child_a = RngRegistry(1).fork("host1")
        child_b = RngRegistry(1).fork("host1")
        assert child_a.seed == child_b.seed
        assert child_a.seed != RngRegistry(1).seed


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(0.001)
        assert model(random.Random(0)) == 0.001

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_within_bounds(self):
        model = UniformLatency(0.001, 0.002)
        rng = random.Random(0)
        for _ in range(100):
            assert 0.001 <= model(rng) <= 0.002

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformLatency(0.002, 0.001)

    def test_lognormal_respects_floor(self):
        model = LogNormalLatency(median=0.0001, sigma=2.0, floor=0.00009)
        rng = random.Random(0)
        assert all(model(rng) >= 0.00009 for _ in range(200))

    def test_lognormal_median_roughly_correct(self):
        model = LogNormalLatency(median=0.001, sigma=0.3)
        rng = random.Random(42)
        samples = sorted(model(rng) for _ in range(2001))
        median = samples[1000]
        assert 0.0008 < median < 0.0012

    def test_lognormal_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median=0)
        with pytest.raises(ValueError):
            LogNormalLatency(median=1, sigma=-1)

    def test_lan_model_produces_sub_millisecond_delays(self):
        model = lan_latency()
        rng = random.Random(7)
        samples = [model(rng) for _ in range(1000)]
        mean = sum(samples) / len(samples)
        assert 0.0001 < mean < 0.0005
