"""Unit tests for Store and PriorityStore."""

import pytest

from repro.simnet import Environment, PriorityStore, Store


@pytest.fixture
def env():
    return Environment()


class TestStore:
    def test_put_then_get_fifo(self, env):
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)
        got = []

        def consumer():
            for _ in range(3):
                got.append((yield store.get()))

        env.run(until=env.process(consumer()))
        assert got == [1, 2, 3]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def consumer():
            got.append((yield store.get()))
            got.append(env.now)

        def producer():
            yield env.timeout(3.0)
            store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == ["late", 3.0]

    def test_multiple_waiters_served_in_order(self, env):
        store = Store(env)
        got = []

        def consumer(tag):
            item = yield store.get()
            got.append((tag, item))

        env.process(consumer("first"))
        env.process(consumer("second"))

        def producer():
            yield env.timeout(1.0)
            store.put("a")
            store.put("b")

        env.process(producer())
        env.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put("x")
            log.append(("x-in", env.now))
            yield store.put("y")
            log.append(("y-in", env.now))

        def consumer():
            yield env.timeout(5.0)
            item = yield store.get()
            log.append((item, env.now))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert ("x-in", 0.0) in log
        assert ("y-in", 5.0) in log

    def test_invalid_capacity_rejected(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_len_reports_queued_items(self, env):
        store = Store(env)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        env.run()
        assert len(store) == 2


class TestTombstoneCancellation:
    """Cancellation is an O(1) tombstone, skipped in ``Store._trigger``."""

    def test_cancelled_get_never_served(self, env):
        store = Store(env)
        first, second = store.get(), store.get()
        first.cancel()
        got = []

        def consumer():
            got.append((yield second))

        env.process(consumer())
        store.put("item")
        env.run()
        assert got == ["item"]
        assert not first.triggered

    def test_cancel_is_flag_not_removal(self, env):
        store = Store(env)
        events = [store.get() for _ in range(4)]
        events[1].cancel()
        events[2].cancel()
        # Tombstones stay queued until they surface at the head...
        assert len(store._get_waiters) == 4
        assert events[1].cancelled and events[2].cancelled
        store.put("a")
        store.put("b")
        env.run()
        # ...then the head scan drops them without serving them.
        assert events[0].value == "a" and events[3].value == "b"
        assert not events[1].triggered and not events[2].triggered
        assert len(store._get_waiters) == 0

    def test_cancelled_put_never_lands(self, env):
        store = Store(env, capacity=1)
        store.put("fills")
        blocked = store.put("withdrawn")
        env.run()
        assert not blocked.triggered
        blocked.cancel()
        got = []

        def drain():
            item = yield store.get()
            got.append(item)

        env.process(drain())
        env.run()
        # The withdrawn put must not slip into the freed capacity.
        assert got == ["fills"]
        assert len(store) == 0

    def test_cancel_after_trigger_is_noop(self, env):
        store = Store(env)
        store.put("item")
        getter = store.get()
        env.run()
        assert getter.triggered
        getter.cancel()
        assert not getter.cancelled
        assert getter.value == "item"

    def test_interrupted_waiter_leaves_item_for_live_waiter(self, env):
        # The orphaned-getter semantics the seed's cancel protected:
        # interrupting a parked process must not let a later put vanish
        # into its abandoned getter.
        from repro.simnet.events import Interrupt

        store = Store(env)
        got = []

        def doomed():
            try:
                yield store.get()
            except Interrupt:
                pass

        def survivor():
            got.append((yield store.get()))

        doomed_process = env.process(doomed())

        def driver():
            yield env.timeout(1.0)
            env.process(survivor())
            yield env.timeout(1.0)
            doomed_process.interrupt("crash")
            yield env.timeout(1.0)
            store.put("payload")

        env.process(driver())
        env.run()
        assert got == ["payload"]


class TestPriorityStore:
    def test_smallest_first(self, env):
        store = PriorityStore(env)
        for item in (5, 1, 3):
            store.put(item)
        got = []

        def consumer():
            for _ in range(3):
                got.append((yield store.get()))

        env.run(until=env.process(consumer()))
        assert got == [1, 3, 5]

    def test_key_function(self, env):
        store = PriorityStore(env, key=lambda item: item["priority"])
        store.put({"priority": 2, "name": "b"})
        store.put({"priority": 1, "name": "a"})
        got = []

        def consumer():
            got.append((yield store.get()))

        env.run(until=env.process(consumer()))
        assert got[0]["name"] == "a"

    def test_ties_are_fifo(self, env):
        store = PriorityStore(env, key=lambda item: 0)
        for name in ("first", "second", "third"):
            store.put(name)
        got = []

        def consumer():
            for _ in range(3):
                got.append((yield store.get()))

        env.run(until=env.process(consumer()))
        assert got == ["first", "second", "third"]
