"""Unit tests for generator-based processes."""

import pytest

from repro.simnet import Environment, Interrupt, SimulationError


@pytest.fixture
def env():
    return Environment()


class TestBasics:
    def test_process_runs_to_completion(self, env):
        log = []

        def worker():
            yield env.timeout(1.0)
            log.append(env.now)
            yield env.timeout(2.0)
            log.append(env.now)

        env.process(worker())
        env.run()
        assert log == [1.0, 3.0]

    def test_process_return_value(self, env):
        def worker():
            yield env.timeout(1.0)
            return "result"

        assert env.run(until=env.process(worker())) == "result"

    def test_yield_value_passes_through(self, env):
        def worker():
            got = yield env.timeout(1.0, value="payload")
            return got

        assert env.run(until=env.process(worker())) == "payload"

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yielding_non_event_raises(self, env):
        def worker():
            yield 42

        process = env.process(worker())
        with pytest.raises(SimulationError):
            env.run(until=process)

    def test_is_alive_transitions(self, env):
        def worker():
            yield env.timeout(1.0)

        process = env.process(worker())
        assert process.is_alive
        env.run()
        assert not process.is_alive


class TestExceptions:
    def test_uncaught_exception_propagates_to_run(self, env):
        def worker():
            yield env.timeout(1.0)
            raise ValueError("inside")

        with pytest.raises(ValueError, match="inside"):
            env.run(until=env.process(worker()))

    def test_failed_event_raises_inside_process(self, env):
        event = env.event()
        caught = []

        def worker():
            try:
                yield event
            except RuntimeError as error:
                caught.append(str(error))

        env.process(worker())
        event.fail(RuntimeError("bad event"))
        env.run()
        assert caught == ["bad event"]

    def test_waiting_on_failed_process_reraises(self, env):
        def inner():
            yield env.timeout(1.0)
            raise KeyError("inner-bug")

        def outer():
            yield env.process(inner())

        with pytest.raises(KeyError):
            env.run(until=env.process(outer()))


class TestProcessComposition:
    def test_wait_for_other_process(self, env):
        def inner():
            yield env.timeout(2.0)
            return "inner-done"

        def outer():
            result = yield env.process(inner())
            return f"outer saw {result}"

        assert env.run(until=env.process(outer())) == "outer saw inner-done"

    def test_yield_from_subroutine(self, env):
        def subroutine():
            yield env.timeout(1.0)
            return 10

        def main():
            a = yield from subroutine()
            b = yield from subroutine()
            return a + b

        assert env.run(until=env.process(main())) == 20
        assert env.now == 2.0


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        caught = []

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                caught.append(interrupt.cause)

        victim = env.process(sleeper())

        def killer():
            yield env.timeout(1.0)
            victim.interrupt("die")

        env.process(killer())
        env.run()
        assert caught == ["die"]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                log.append(("interrupted", env.now))
            yield env.timeout(1.0)
            log.append(("done", env.now))

        victim = env.process(sleeper())

        def killer():
            yield env.timeout(2.0)
            victim.interrupt()

        env.process(killer())
        env.run()
        assert log == [("interrupted", 2.0), ("done", 3.0)]

    def test_old_target_does_not_resume_interrupted_process(self, env):
        resumes = []

        def sleeper():
            try:
                yield env.timeout(5.0)
                resumes.append("timeout")
            except Interrupt:
                resumes.append("interrupt")
            yield env.timeout(100.0)

        victim = env.process(sleeper())

        def killer():
            yield env.timeout(1.0)
            victim.interrupt()

        env.process(killer())
        env.run(until=20.0)
        # The original 5s timeout still fires but must not re-enter sleeper.
        assert resumes == ["interrupt"]

    def test_interrupt_dead_process_raises(self, env):
        def quick():
            yield env.timeout(1.0)

        process = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_self_interrupt_rejected(self, env):
        def worker():
            yield env.timeout(0.1)
            env.active_process.interrupt()

        with pytest.raises(SimulationError):
            env.run(until=env.process(worker()))
