"""Unit tests for the network layer: delivery, partitions, loss, links."""

import pytest

from repro.simnet import (
    ConstantLatency,
    Environment,
    Message,
    Network,
    UnknownHostError,
)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def network(env):
    return Network(env)


def _exchange(env, network, count=1, size_bytes=512):
    """Send ``count`` messages a->b, return arrival payloads and times."""
    a = network.host("a") if "a" in network.hosts else network.add_host("a")
    b = network.host("b") if "b" in network.hosts else network.add_host("b")
    sa = a.transport.bind()
    sb = b.transport.bind(700)
    arrivals = []

    def receiver():
        for _ in range(count):
            message = yield sb.recv()
            arrivals.append((env.now, message.payload))

    process = b.spawn(receiver())
    for index in range(count):
        sa.send(("b", 700), payload=index, size_bytes=size_bytes)
    env.run(until=min(env.peek() + 10.0, 10.0))
    return arrivals


class TestDelivery:
    def test_message_arrives_with_positive_delay(self, env, network):
        arrivals = _exchange(env, network)
        assert len(arrivals) == 1
        assert arrivals[0][0] > 0

    def test_lan_latency_sub_millisecond(self, env, network):
        """The paper's LAN shows ~0.5 ms RTTs; one-way must be well under 1 ms."""
        arrivals = _exchange(env, network, count=20)
        assert len(arrivals) == 20
        assert all(time < 0.002 for time, _payload in arrivals)

    def test_transmission_delay_scales_with_size(self, env):
        network = Network(env, default_latency=ConstantLatency(0.0))
        a, b = network.add_host("a"), network.add_host("b")
        sa = a.transport.bind()
        sb = b.transport.bind(700)
        times = []

        def receiver():
            for _ in range(2):
                yield sb.recv()
                times.append(env.now)

        b.spawn(receiver())
        sa.send(("b", 700), payload="small", size_bytes=125)  # 1000 bits
        env.run(until=1.0)
        start = env.now
        sa.send(("b", 700), payload="big", size_bytes=125000)  # 1e6 bits
        env.run(until=2.0)
        small_delay = times[0]
        big_delay = times[1] - start
        assert big_delay == pytest.approx(small_delay * 1000, rel=0.01)

    def test_egress_serialisation_same_host(self, env):
        """Back-to-back sends from one host serialise on its NIC."""
        network = Network(env, default_latency=ConstantLatency(0.0))
        a, b = network.add_host("a"), network.add_host("b")
        sa = a.transport.bind()
        sb = b.transport.bind(700)
        times = []

        def receiver():
            for _ in range(2):
                yield sb.recv()
                times.append(env.now)

        b.spawn(receiver())
        # 1 Mbit each at 100 Mbit/s => 10 ms transmission per message.
        sa.send(("b", 700), payload="first", size_bytes=125000)
        sa.send(("b", 700), payload="second", size_bytes=125000)
        env.run()
        assert times[0] == pytest.approx(0.01, rel=0.01)
        assert times[1] == pytest.approx(0.02, rel=0.01)

    def test_no_serialisation_across_hosts(self, env):
        """Different hosts' NICs transmit concurrently."""
        network = Network(env, default_latency=ConstantLatency(0.0))
        a, b, c = network.add_host("a"), network.add_host("b"), network.add_host("c")
        sa, sc = a.transport.bind(), c.transport.bind()
        sb = b.transport.bind(700)
        times = []

        def receiver():
            for _ in range(2):
                yield sb.recv()
                times.append(env.now)

        b.spawn(receiver())
        sa.send(("b", 700), payload="from-a", size_bytes=125000)
        sc.send(("b", 700), payload="from-c", size_bytes=125000)
        env.run()
        assert times[0] == pytest.approx(0.01, rel=0.01)
        assert times[1] == pytest.approx(0.01, rel=0.01)

    def test_loopback_delivery(self, env, network):
        a = network.add_host("a")
        sender = a.transport.bind()
        receiver_socket = a.transport.bind(700)
        got = []

        def receiver():
            message = yield receiver_socket.recv()
            got.append(message.payload)

        a.spawn(receiver())
        sender.send(("a", 700), payload="self")
        env.run()
        assert got == ["self"]

    def test_unknown_destination_raises(self, env, network):
        a = network.add_host("a")
        socket = a.transport.bind()
        with pytest.raises(UnknownHostError):
            socket.send(("ghost", 1), payload="x")

    def test_unknown_source_raises(self, env, network):
        network.add_host("b")
        with pytest.raises(UnknownHostError) as excinfo:
            network.send(Message(src=("ghost", 1), dst=("b", 700), payload="x"))
        assert "ghost" in str(excinfo.value)

    def test_duplicate_host_rejected(self, network):
        network.add_host("dup")
        with pytest.raises(ValueError):
            network.add_host("dup")


class TestFailureModes:
    def test_down_destination_drops(self, env, network):
        a, b = network.add_host("a"), network.add_host("b")
        sa = a.transport.bind()
        b.transport.bind(700)
        b.crash()
        sa.send(("b", 700), payload="x")
        env.run()
        assert network.trace.dropped_total == 1
        assert network.trace.delivered_total == 0

    def test_down_source_drops(self, env, network):
        a, b = network.add_host("a"), network.add_host("b")
        sa = a.transport.bind()
        b.transport.bind(700)
        a.up = False  # direct flag, bypassing crash() socket teardown
        sa.send(("b", 700), payload="x")
        env.run()
        assert network.trace.dropped_total == 1

    def test_unbound_port_drops(self, env, network):
        a, b = network.add_host("a"), network.add_host("b")
        sa = a.transport.bind()
        sa.send(("b", 999), payload="x")
        env.run()
        assert network.trace.dropped_total == 1

    def test_partition_blocks_both_directions(self, env, network):
        a, b = network.add_host("a"), network.add_host("b")
        sa, sb = a.transport.bind(), b.transport.bind(700)
        sa2 = a.transport.bind(700)
        network.partition(["a"], ["b"])
        sa.send(("b", 700), payload="x")
        sb.send(("a", 700), payload="y")
        env.run()
        assert network.trace.dropped_total == 2
        assert network.partitioned("a", "b")
        assert network.partitioned("b", "a")

    def test_heal_partitions_restores_traffic(self, env, network):
        a, b = network.add_host("a"), network.add_host("b")
        sa = a.transport.bind()
        sb = b.transport.bind(700)
        network.partition(["a"], ["b"])
        network.heal_partitions()
        got = []

        def receiver():
            message = yield sb.recv()
            got.append(message.payload)

        b.spawn(receiver())
        sa.send(("b", 700), payload="after-heal")
        env.run()
        assert got == ["after-heal"]

    def test_heal_partition_removes_only_that_split(self, env, network):
        for name in ("a", "b", "c"):
            network.add_host(name)
        first = network.partition(["a"], ["b"])
        second = network.partition(["a"], ["c"])
        assert network.heal_partition(first)
        assert not network.partitioned("a", "b")
        assert network.partitioned("a", "c")  # overlapping split still active
        assert network.heal_partition(second)
        assert not network.heal_partition(second)  # already healed

    def test_message_in_flight_to_crashing_host_dropped(self, env, network):
        a, b = network.add_host("a"), network.add_host("b")
        sa = a.transport.bind()
        b.transport.bind(700)
        sa.send(("b", 700), payload="x")
        b.crash()  # crashes before the (delayed) delivery
        env.run()
        assert network.trace.dropped_total == 1

    def test_full_loss_rate_drops_everything(self, env, network):
        network.loss_rate = 1.0
        a, b = network.add_host("a"), network.add_host("b")
        sa = a.transport.bind()
        b.transport.bind(700)
        for _ in range(10):
            sa.send(("b", 700), payload="x")
        env.run()
        assert network.trace.dropped_total == 10


class TestLinks:
    def test_link_override_changes_latency(self, env, network):
        a, b = network.add_host("a"), network.add_host("b")
        network.connect("a", "b", latency=ConstantLatency(0.5))
        sa = a.transport.bind()
        sb = b.transport.bind(700)
        times = []

        def receiver():
            yield sb.recv()
            times.append(env.now)

        b.spawn(receiver())
        sa.send(("b", 700), payload="x", size_bytes=0)
        env.run()
        assert times[0] == pytest.approx(0.5, abs=1e-6)

    def test_link_between_defaults_without_override(self, network):
        network.add_host("a")
        network.add_host("b")
        link = network.link_between("a", "b")
        assert link.bandwidth_bps == network.default_bandwidth_bps

    def test_connect_unknown_host_rejected(self, network):
        network.add_host("a")
        with pytest.raises(UnknownHostError):
            network.connect("a", "ghost")


class TestMessageObject:
    def test_reply_to_swaps_addresses(self):
        message = Message(src=("a", 1), dst=("b", 2), payload="req")
        reply = message.reply_to("resp")
        assert reply.src == ("b", 2)
        assert reply.dst == ("a", 1)
        assert reply.correlation_id == message.msg_id

    def test_message_ids_unique(self):
        first = Message(src=("a", 1), dst=("b", 2), payload=None)
        second = Message(src=("a", 1), dst=("b", 2), payload=None)
        assert first.msg_id != second.msg_id

    def test_reply_to_propagates_headers_copy(self):
        # Regression: piggybacked metadata (epoch gossip, journal hints)
        # used to be silently dropped from every reply.
        message = Message(
            src=("a", 1), dst=("b", 2), payload="req",
            headers={"epoch": 7, "hint": "retry-after"},
        )
        reply = message.reply_to("resp")
        assert reply.headers == {"epoch": 7, "hint": "retry-after"}
        # A *copy*: mutating the reply's headers must not alias back.
        reply.headers["epoch"] = 8
        assert message.headers["epoch"] == 7

    def test_reply_to_explicit_headers_override(self):
        message = Message(
            src=("a", 1), dst=("b", 2), payload="req", headers={"epoch": 7}
        )
        reply = message.reply_to("resp", headers={"fresh": True})
        assert reply.headers == {"fresh": True}

    def test_message_is_slotted(self):
        message = Message(src=("a", 1), dst=("b", 2), payload=None)
        assert not hasattr(message, "__dict__")
        with pytest.raises(AttributeError):
            message.unexpected_attribute = 1
