"""Region-aware networking: qualified names, WAN routing, region faults.

The regression this file guards: the seed assumed a *flat* host
namespace, so partitions and sends addressed hosts by bare name.  Once
two regions may both contain a host called ``web0``, a bare name must
resolve only when unambiguous — and raise, never silently match neither
key, when it is not.
"""

import pytest

from repro.simnet import Environment, MessageTrace, Network, RngRegistry
from repro.simnet.latency import ConstantLatency
from repro.simnet.network import UnknownHostError


def _network(seed=12345):
    env = Environment()
    return env, Network(
        env,
        trace=MessageTrace(),
        rng=RngRegistry(seed),
        default_latency=ConstantLatency(0.001),
    )


def _ping(env, network, src, dst):
    """Send one datagram src -> dst; return the delivered payload (or None)."""
    inbox = []
    dst_node = network.host(dst)
    socket = dst_node.transport.bind(7)

    def receiver():
        message = yield socket.recv()
        inbox.append(message.payload)

    dst_node.spawn(receiver())
    out = network.host(src).transport.bind()
    out.send((dst, 7), payload="ping", size_bytes=64)
    env.run(until=env.now + 5.0)
    out.close()
    socket.close()
    return inbox[0] if inbox else None


class TestQualifiedNames:
    def test_region_hosts_live_under_qualified_keys(self):
        _env, network = _network()
        network.add_region("eu")
        node = network.add_host("web0", region="eu")
        assert node.name == "eu/web0"
        assert network.region_of("eu/web0") == "eu"

    def test_bare_name_resolves_when_unique(self):
        _env, network = _network()
        network.add_region("eu")
        network.add_host("web0", region="eu")
        assert network.resolve_host_name("web0") == "eu/web0"
        assert network.host("web0").name == "eu/web0"

    def test_same_name_in_two_regions_is_ambiguous(self):
        _env, network = _network()
        network.add_region("eu")
        network.add_region("us")
        network.add_host("web0", region="eu")
        network.add_host("web0", region="us")
        with pytest.raises(UnknownHostError, match="ambiguous"):
            network.resolve_host_name("web0")
        # Qualified names still resolve each host exactly.
        assert network.host("eu/web0").name == "eu/web0"
        assert network.host("us/web0").name == "us/web0"

    def test_partition_rejects_ambiguous_bare_names(self):
        _env, network = _network()
        network.add_region("eu")
        network.add_region("us")
        network.add_host("web0", region="eu")
        network.add_host("web0", region="us")
        network.add_host("other", region="eu")
        with pytest.raises(UnknownHostError, match="ambiguous"):
            network.partition({"web0"}, {"other"})

    def test_unknown_region_rejected(self):
        _env, network = _network()
        with pytest.raises(ValueError):
            network.add_host("web0", region="nowhere")

    def test_duplicate_region_rejected(self):
        _env, network = _network()
        network.add_region("eu")
        with pytest.raises(ValueError):
            network.add_region("eu")


class TestWanRouting:
    def test_cross_region_without_wan_link_drops(self):
        env, network = _network()
        network.add_region("eu")
        network.add_region("us")
        network.add_host("a", region="eu")
        network.add_host("b", region="us")
        assert _ping(env, network, "eu/a", "us/b") is None
        assert network.trace.dropped_total >= 1

    def test_cross_region_with_wan_link_delivers(self):
        env, network = _network()
        network.add_region("eu")
        network.add_region("us")
        network.connect_regions("eu", "us", latency=ConstantLatency(0.050))
        network.add_host("a", region="eu")
        network.add_host("b", region="us")
        assert _ping(env, network, "eu/a", "us/b") == "ping"

    def test_asymmetric_wan_latency(self):
        _env, network = _network()
        network.add_region("eu")
        network.add_region("us")
        network.connect_regions(
            "eu",
            "us",
            latency=ConstantLatency(0.040),
            latency_back=ConstantLatency(0.120),
        )
        up = network._wan_links[("eu", "us")].latency(None)
        down = network._wan_links[("us", "eu")].latency(None)
        assert up == pytest.approx(0.040)
        assert down == pytest.approx(0.120)

    def test_intra_region_uses_region_link(self):
        env, network = _network()
        network.add_region("eu", latency=ConstantLatency(0.002))
        network.add_host("a", region="eu")
        network.add_host("b", region="eu")
        assert _ping(env, network, "eu/a", "eu/b") == "ping"

    def test_flat_hosts_keep_the_seed_default_link(self):
        env, network = _network()
        network.add_host("a")
        network.add_host("b")
        assert _ping(env, network, "a", "b") == "ping"


class TestRegionFaults:
    def test_isolate_region_cuts_and_heals(self):
        env, network = _network()
        network.add_region("eu")
        network.add_region("us")
        network.connect_regions("eu", "us", latency=ConstantLatency(0.040))
        network.add_host("a", region="eu")
        network.add_host("b", region="us")
        handle = network.isolate_region("eu")
        assert _ping(env, network, "eu/a", "us/b") is None
        assert network.heal_partition(handle)
        assert _ping(env, network, "eu/a", "us/b") == "ping"

    def test_partition_regions_is_pairwise(self):
        env, network = _network()
        for name in ("eu", "us", "ap"):
            network.add_region(name)
        network.connect_regions("eu", "us", latency=ConstantLatency(0.040))
        network.connect_regions("eu", "ap", latency=ConstantLatency(0.040))
        network.add_host("a", region="eu")
        network.add_host("b", region="us")
        network.add_host("c", region="ap")
        network.partition_regions("eu", "us")
        assert _ping(env, network, "eu/a", "us/b") is None
        # The eu<->ap path is untouched by the eu|us cut.
        assert _ping(env, network, "eu/a", "ap/c") == "ping"
