"""The latency-spec grammar: one string form for every latency model."""

import pytest

from repro.simnet.latency import (
    ConstantLatency,
    LogNormalLatency,
    UniformLatency,
    lan_latency,
    parse_latency_spec,
)


class TestParseLatencySpec:
    def test_lan_matches_the_paper_calibration(self):
        model = parse_latency_spec("lan")
        reference = lan_latency()
        assert isinstance(model, LogNormalLatency)
        assert model.median == reference.median
        assert model.sigma == reference.sigma
        assert model.floor == reference.floor

    def test_constant(self):
        model = parse_latency_spec("constant:2ms")
        assert isinstance(model, ConstantLatency)
        assert model.seconds == pytest.approx(0.002)

    def test_constant_units(self):
        assert parse_latency_spec("constant:1s").seconds == pytest.approx(1.0)
        assert parse_latency_spec("constant:200us").seconds == pytest.approx(2e-4)

    def test_uniform(self):
        model = parse_latency_spec("uniform:1ms-5ms")
        assert isinstance(model, UniformLatency)
        assert model.low == pytest.approx(0.001)
        assert model.high == pytest.approx(0.005)

    def test_lognormal_with_spread(self):
        model = parse_latency_spec("lognormal:40ms±15ms")
        assert isinstance(model, LogNormalLatency)
        assert model.median == pytest.approx(0.040)
        assert model.sigma > 0

    def test_ascii_spread_alias_and_unit_inheritance(self):
        with_unit = parse_latency_spec("lognormal:40ms±15ms")
        ascii_alias = parse_latency_spec("lognormal:40ms+-15ms")
        bare_spread = parse_latency_spec("lognormal:40ms±15")
        assert ascii_alias.median == with_unit.median
        assert ascii_alias.sigma == with_unit.sigma
        assert bare_spread.sigma == with_unit.sigma

    def test_lognormal_without_spread(self):
        model = parse_latency_spec("lognormal:10ms")
        assert isinstance(model, LogNormalLatency)
        assert model.median == pytest.approx(0.010)

    def test_model_passthrough(self):
        model = ConstantLatency(0.003)
        assert parse_latency_spec(model) is model

    def test_whitespace_is_tolerated(self):
        model = parse_latency_spec("  constant: 2ms ")
        assert model.seconds == pytest.approx(0.002)

    @pytest.mark.parametrize(
        "bad",
        [
            "constant:2",  # missing unit
            "warp:9ms",  # unknown kind
            "uniform:3ms",  # missing high bound
            "lognormal:10ms±500ms",  # spread out of range
            "constant:",  # missing params
            "constant",  # missing separator
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_latency_spec(bad)

    def test_rejects_non_string_non_model(self):
        with pytest.raises(TypeError):
            parse_latency_spec(42)
