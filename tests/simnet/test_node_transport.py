"""Unit tests for hosts and the datagram transport."""

import pytest

from repro.simnet import Interrupt, PortInUseError


class TestNode:
    def test_spawn_process_dies_on_crash(self, env, network):
        host = network.add_host("h")
        log = []

        def looper():
            try:
                while True:
                    yield env.timeout(1.0)
                    log.append(env.now)
            except Interrupt as interrupt:
                log.append(("killed", interrupt.cause))

        host.spawn(looper())

        def killer():
            yield env.timeout(2.5)
            host.crash()

        env.process(killer())
        env.run(until=10.0)
        assert log == [1.0, 2.0, ("killed", "crash")]

    def test_crash_is_idempotent(self, network):
        host = network.add_host("h")
        host.crash()
        host.crash()
        assert host.crash_count == 1

    def test_restart_runs_hooks(self, network):
        host = network.add_host("h")
        events = []
        host.on_crash(lambda node: events.append("crash"))
        host.on_restart(lambda node: events.append("restart"))
        host.crash()
        host.restart()
        assert events == ["crash", "restart"]

    def test_restart_without_crash_is_noop(self, network):
        host = network.add_host("h")
        events = []
        host.on_restart(lambda node: events.append("restart"))
        host.restart()
        assert events == []


class TestTransport:
    def test_bind_specific_port(self, network):
        host = network.add_host("h")
        socket = host.transport.bind(8080)
        assert socket.address == ("h", 8080)

    def test_bind_duplicate_port_rejected(self, network):
        host = network.add_host("h")
        host.transport.bind(8080)
        with pytest.raises(PortInUseError):
            host.transport.bind(8080)

    def test_ephemeral_ports_are_distinct(self, network):
        host = network.add_host("h")
        first = host.transport.bind()
        second = host.transport.bind()
        assert first.port != second.port
        assert first.port >= 49152

    def test_rebind_after_close(self, network):
        host = network.add_host("h")
        socket = host.transport.bind(8080)
        socket.close()
        host.transport.bind(8080)  # must not raise

    def test_send_message_requires_matching_src(self, env, network):
        from repro.simnet import Message

        a, b = network.add_host("a"), network.add_host("b")
        socket = a.transport.bind(100)
        bad = Message(src=("a", 999), dst=("b", 1), payload=None)
        with pytest.raises(ValueError):
            socket.send_message(bad)

    def test_crash_flushes_queued_inbound(self, env, network):
        a, b = network.add_host("a"), network.add_host("b")
        sa = a.transport.bind()
        sb = b.transport.bind(700)
        sa.send(("b", 700), payload="x")
        env.run()  # message sits in b's inbox, nobody reading
        assert len(sb.inbox) == 1
        b.crash()
        assert len(sb.inbox) == 0

    def test_closed_socket_drops_traffic(self, env, network):
        a, b = network.add_host("a"), network.add_host("b")
        sa = a.transport.bind()
        sb = b.transport.bind(700)
        sb.close()
        sa.send(("b", 700), payload="x")
        env.run()
        assert network.trace.dropped_total == 1
