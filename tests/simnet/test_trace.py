"""Unit tests for the message trace / RTT monitor."""

from repro.simnet import MessageTrace, Message


def _msg(category="data", size=100):
    return Message(src=("a", 1), dst=("b", 2), payload=None,
                   category=category, size_bytes=size)


class TestCounters:
    def test_send_deliver_counts(self):
        trace = MessageTrace()
        message = _msg()
        trace.on_send(0.0, message)
        trace.on_deliver(0.001, message)
        snapshot = trace.snapshot()
        assert snapshot["sent"] == 1
        assert snapshot["delivered"] == 1
        assert snapshot["dropped"] == 0
        assert snapshot["bytes"] == 100

    def test_category_breakdown(self):
        trace = MessageTrace()
        for category in ("election", "election", "heartbeat"):
            trace.on_send(0.0, _msg(category))
        assert trace.category_breakdown() == {"election": 2, "heartbeat": 1}

    def test_per_host_counts(self):
        trace = MessageTrace()
        trace.on_send(0.0, _msg())
        assert trace.sent_by_host["a"] == 1

    def test_reset_zeroes_counters_and_completed_samples(self):
        trace = MessageTrace()
        trace.on_send(0.0, _msg())
        trace.stamp_request(1, 0.0)
        trace.stamp_reply(1, 0.5)
        trace.reset()
        assert trace.snapshot() == {"sent": 0, "delivered": 0, "dropped": 0, "bytes": 0}
        assert trace.rtts() == []

    def test_reset_preserves_inflight_rtt_stamps(self):
        """A request in flight across a warm-up reset still yields its
        RTT sample — reset() only clears *completed* observations."""
        trace = MessageTrace()
        trace.stamp_request(1, 10.0)
        trace.reset()
        trace.stamp_reply(1, 11.5)
        assert trace.rtts() == [1.5]
        samples = trace.rtt_samples
        assert samples[0].request_at == 10.0 and samples[0].reply_at == 11.5

    def test_detailed_records_opt_in(self):
        detailed = MessageTrace(record_details=True)
        lean = MessageTrace(record_details=False)
        message = _msg()
        for trace in (detailed, lean):
            trace.on_send(0.0, message)
            trace.on_drop(0.1, message, reason="test")
        assert len(detailed.records) == 2
        assert detailed.records[1].event == "drop"
        assert lean.records == []


class TestRttMonitor:
    def test_stamps_pair_into_sample(self):
        trace = MessageTrace()
        trace.stamp_request(7, 1.0)
        trace.stamp_reply(7, 1.0005)
        rtts = trace.rtts()
        assert len(rtts) == 1
        assert abs(rtts[0] - 0.0005) < 1e-12

    def test_reply_without_request_ignored(self):
        trace = MessageTrace()
        trace.stamp_reply(9, 5.0)
        assert trace.rtts() == []

    def test_interleaved_correlations(self):
        trace = MessageTrace()
        trace.stamp_request(1, 0.0)
        trace.stamp_request(2, 0.1)
        trace.stamp_reply(2, 0.3)
        trace.stamp_reply(1, 0.5)
        samples = {s.correlation_id: s.rtt for s in trace.rtt_samples}
        assert samples[1] == 0.5
        assert abs(samples[2] - 0.2) < 1e-12

    def test_duplicate_reply_not_double_counted(self):
        trace = MessageTrace()
        trace.stamp_request(1, 0.0)
        trace.stamp_reply(1, 0.1)
        trace.stamp_reply(1, 0.2)
        assert len(trace.rtts()) == 1
