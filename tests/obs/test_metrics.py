"""Unit tests for counters, histogram bucketing, and the registry."""

import json

import pytest

from repro.obs import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry, RingBuffer


class TestHistogramBucketing:
    def test_bucket_assignment_at_and_between_bounds(self):
        histogram = Histogram("h", bounds=(0.001, 0.01, 0.1))
        histogram.observe(0.001)   # == bound: first bucket (le semantics)
        histogram.observe(0.0005)  # below first bound
        histogram.observe(0.05)    # third bucket
        histogram.observe(5.0)     # overflow
        assert histogram.bucket_counts == [2, 0, 1, 1]
        assert histogram.count == 4

    def test_min_max_mean_tracked_exactly(self):
        histogram = Histogram("h")
        for value in (0.002, 0.004, 0.006):
            histogram.observe(value)
        assert histogram.min == 0.002
        assert histogram.max == 0.006
        assert histogram.mean == pytest.approx(0.004)

    def test_quantiles_interpolate_within_bucket(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (1.2, 1.4, 1.6, 1.8):  # all in the (1, 2] bucket
            histogram.observe(value)
        p50 = histogram.quantile(0.5)
        assert 1.2 <= p50 <= 1.8  # inside the bucket, clamped to observed

    def test_quantile_overflow_bucket_reports_observed_max(self):
        histogram = Histogram("h", bounds=(0.001,))
        histogram.observe(7.5)
        assert histogram.quantile(0.99) == 7.5

    def test_quantile_empty_histogram_is_none(self):
        histogram = Histogram("h")
        assert histogram.quantile(0.5) is None
        assert histogram.mean is None

    def test_quantile_rejects_out_of_range(self):
        histogram = Histogram("h")
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_bounds_must_be_sorted(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(0.1, 0.01))

    def test_to_dict_exports_per_bucket_counts(self):
        histogram = Histogram("h", bounds=(0.01, 0.1))
        histogram.observe(0.05)
        data = histogram.to_dict()
        assert data["buckets"] == [
            {"le": 0.01, "count": 0},
            {"le": 0.1, "count": 1},
            {"le": None, "count": 0},
        ]

    def test_default_buckets_span_sub_ms_to_multi_second(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.0005
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("proxy.timeouts")
        registry.inc("proxy.timeouts", 2)
        assert registry.counters["proxy.timeouts"].value == 3

    def test_histograms_accumulate(self):
        registry = MetricsRegistry()
        registry.observe("phase.bind", 0.002)
        registry.observe("phase.bind", 0.004)
        assert registry.histograms["phase.bind"].count == 2

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("x")
        registry.observe("y", 1.0)
        assert registry.counters == {}
        assert registry.histograms == {}

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("x", -1)

    def test_snapshot_and_json_roundtrip(self):
        registry = MetricsRegistry()
        registry.inc("a", 5)
        registry.observe("lat", 0.003)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 5}
        assert snapshot["histograms"]["lat"]["count"] == 1
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["a"] == 5
        assert parsed["histograms"]["lat"]["buckets"][-1]["le"] is None

    def test_csv_exports(self):
        registry = MetricsRegistry()
        registry.inc("a", 2)
        registry.observe("lat", 0.003)
        assert "a,2" in registry.counters_to_csv()
        lines = registry.histograms_to_csv().splitlines()
        assert lines[0].startswith("name,count,mean")
        assert lines[1].startswith("lat,1,")

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.observe("b", 1.0)
        registry.record("c", 1.0)
        registry.reset()
        assert registry.counters == {} and registry.histograms == {}
        assert registry.rings == {}


class TestRingBuffer:
    def test_window_before_wraparound_is_insertion_order(self):
        ring = RingBuffer("r", capacity=4)
        for value in (1.0, 2.0, 3.0):
            ring.record(value)
        assert ring.window() == [1.0, 2.0, 3.0]
        assert ring.count == 3

    def test_wraparound_overwrites_oldest(self):
        ring = RingBuffer("r", capacity=3)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            ring.record(value)
        assert ring.window() == [3.0, 4.0, 5.0]
        assert ring.count == 5           # lifetime count survives eviction
        assert ring.total == 15.0        # lifetime sum too

    def test_snapshot_exact_over_window_only(self):
        ring = RingBuffer("r", capacity=2)
        for value in (100.0, 1.0, 3.0):  # 100.0 evicted
            ring.record(value)
        stats = ring.snapshot()
        assert stats["window"] == 2
        assert stats["count"] == 3
        assert stats["min"] == 1.0 and stats["max"] == 3.0
        assert stats["mean"] == pytest.approx(2.0)

    def test_empty_snapshot_is_all_none(self):
        stats = RingBuffer("r", capacity=8).snapshot()
        assert stats["count"] == 0 and stats["mean"] is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBuffer("r", capacity=0)

    def test_registry_record_creates_and_reuses_ring(self):
        registry = MetricsRegistry()
        registry.record("lat", 1.0, capacity=4)
        registry.record("lat", 2.0, capacity=4)
        assert registry.ring("lat").window() == [1.0, 2.0]
        snapshot = registry.snapshot()
        assert snapshot["rings"]["lat"]["window"] == 2

    def test_disabled_registry_record_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        registry.record("lat", 1.0)
        assert registry.rings == {}
