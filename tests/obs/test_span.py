"""Unit tests for Span / RequestTrace nesting and aggregation."""

from repro.obs import NULL_SPAN, NULL_TRACE, RequestTrace, Span


class TestSpan:
    def test_duration_only_after_finish(self):
        span = Span("bind", start=1.0)
        assert not span.finished
        assert span.duration is None
        span.finish(1.5)
        assert span.finished
        assert span.duration == 0.5

    def test_finish_is_idempotent(self):
        span = Span("invoke", start=0.0)
        span.finish(2.0)
        span.finish(99.0)
        assert span.end == 2.0

    def test_finish_merges_tags(self):
        span = Span("invoke", start=0.0, tags={"attempt": 1})
        span.finish(1.0, outcome="ok")
        assert span.tags == {"attempt": 1, "outcome": "ok"}

    def test_child_nesting(self):
        root = Span("request", start=0.0)
        recover = root.child("recover", 1.0)
        retry_bind = recover.child("bind", 1.1)
        assert retry_bind.parent is recover
        assert recover.parent is root
        assert recover in root.children
        assert retry_bind in recover.children

    def test_walk_depth_first(self):
        root = Span("request", start=0.0)
        a = root.child("discover", 0.0)
        b = root.child("invoke", 1.0)
        a_child = a.child("bind", 0.5)
        assert [s.name for s in root.walk()] == [
            "request", "discover", "bind", "invoke",
        ]
        assert a_child in list(root.walk())
        assert b in list(root.walk())

    def test_to_dict_nests_children(self):
        root = Span("request", start=0.0)
        root.child("discover", 0.0).finish(0.2)
        root.finish(1.0)
        data = root.to_dict()
        assert data["duration"] == 1.0
        assert data["children"][0]["name"] == "discover"
        assert data["children"][0]["duration"] == 0.2

    def test_format_indents_children(self):
        root = Span("request", start=0.0)
        root.child("bind", 0.1).finish(0.2)
        root.finish(1.0)
        lines = root.format().splitlines()
        assert lines[0].startswith("request")
        assert lines[1].startswith("  bind")


class TestRequestTrace:
    def test_phase_durations_sum_per_phase(self):
        trace = RequestTrace("Svc.Op", request_id=1, now=0.0)
        trace.begin("invoke", 0.0).finish(2.0)   # timed-out attempt
        trace.begin("bind", 2.0).finish(2.5)
        trace.begin("invoke", 2.5).finish(3.0)   # successful retry
        trace.finish(3.0)
        durations = trace.phase_durations()
        assert durations["invoke"] == 2.5
        assert durations["bind"] == 0.5
        assert "request" not in durations  # root excluded

    def test_nested_spans_counted_in_phase_durations(self):
        trace = RequestTrace("Svc.Op", request_id=2, now=0.0)
        recover = trace.begin("recover", 1.0)
        trace.begin("bind", 1.1, parent=recover).finish(1.6)
        recover.finish(3.0)
        trace.finish(3.0)
        durations = trace.phase_durations()
        assert durations["recover"] == 2.0
        assert durations["bind"] == 0.5

    def test_finish_closes_open_spans_and_stamps_status(self):
        trace = RequestTrace("Svc.Op", request_id=3, now=0.0)
        dangling = trace.begin("invoke", 0.5)
        trace.finish(4.0, status="SoapFault")
        assert trace.status == "SoapFault"
        assert trace.root.tags["status"] == "SoapFault"
        assert dangling.finished and dangling.end == 4.0
        assert trace.duration == 4.0

    def test_to_dict_roundtrips_identity(self):
        trace = RequestTrace("Svc.Op", request_id=7, now=1.0)
        trace.begin("discover", 1.0).finish(1.1)
        trace.finish(2.0)
        data = trace.to_dict()
        assert data["operation"] == "Svc.Op"
        assert data["request_id"] == 7
        assert data["status"] == "ok"
        assert data["root"]["children"][0]["name"] == "discover"


class TestNullObjects:
    def test_null_trace_is_inert(self):
        span = NULL_TRACE.begin("bind", 1.0)
        assert span is NULL_SPAN
        assert span.child("x", 2.0) is NULL_SPAN
        assert span.finish(3.0) is NULL_SPAN
        NULL_TRACE.finish(5.0)
        assert NULL_TRACE.phase_durations() == {}
        assert NULL_TRACE.to_dict() == {}

    def test_null_span_singletons_shared(self):
        assert NULL_SPAN.child("a", 0.0) is NULL_SPAN.child("b", 1.0)

    def test_null_span_state_cannot_be_mutated(self):
        # Regression: ``tags = {}`` / ``children = []`` were shared
        # mutable class attributes — one write through the singleton
        # polluted every disabled-tracing call site forever.
        import pytest

        with pytest.raises(TypeError):
            NULL_SPAN.tags["leak"] = 1
        with pytest.raises((TypeError, AttributeError)):
            NULL_SPAN.children.append("leak")  # tuple: no append
        assert dict(NULL_SPAN.tags) == {}
        assert tuple(NULL_SPAN.children) == ()
