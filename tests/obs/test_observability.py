"""Integration tests: the observability layer threaded through the system."""

import json

import pytest

from repro.core import ScenarioConfig, WhisperSystem
from repro.obs import NULL_TRACE, Observability


def _run_requests(system, service, count, host="obs-client"):
    node, soap = system.add_client(host)

    def loop():
        for index in range(count):
            yield from soap.call(
                service.address, service.path, "StudentInformation",
                {"ID": f"S{(index % 200) + 1:05d}"}, timeout=60.0,
            )
            yield system.env.timeout(0.05)

    system.env.run(until=node.spawn(loop()))


class TestObservabilityFacade:
    def test_disabled_returns_null_trace_and_retains_nothing(self):
        obs = Observability(enabled=False)
        trace = obs.request_trace("Svc.Op", 1, 0.0)
        assert trace is NULL_TRACE
        obs.finish_request(trace, 1.0)
        obs.observe_phase("elect", 0.5)
        assert len(obs.traces) == 0
        assert obs.metrics.histograms == {}

    def test_finish_request_feeds_phase_histograms(self):
        obs = Observability()
        trace = obs.request_trace("Svc.Op", 1, 0.0)
        trace.begin("discover", 0.0).finish(0.1)
        trace.begin("invoke", 0.1).finish(0.4)
        obs.finish_request(trace, 0.4)
        summary = obs.phase_summary()
        assert summary["discover"]["count"] == 1
        assert summary["invoke"]["count"] == 1
        assert summary["invoke"]["max"] == pytest.approx(0.3)
        assert obs.metrics.counters["requests.ok"].value == 1

    def test_phase_summary_always_has_canonical_phases(self):
        summary = Observability().phase_summary()
        for phase in ("discover", "bind", "invoke", "recover", "elect", "execute"):
            assert summary[phase]["count"] == 0

    def test_trace_ring_is_bounded(self):
        obs = Observability(max_traces=3)
        for index in range(10):
            obs.request_trace("Svc.Op", index, float(index))
        assert len(obs.traces) == 3
        assert obs.traces[0].request_id == 7

    def test_sampling_traces_every_nth_request_exactly(self):
        obs = Observability(sample_rate=0.25)
        sampled = 0
        for index in range(40):
            trace = obs.request_trace("Svc.Op", index, float(index))
            if trace is not NULL_TRACE:
                sampled += 1
            obs.finish_request(trace, float(index) + 0.1)
        # Systematic sampling: the accumulator is primed so the first
        # request is always traced, then exactly every 1/rate-th after.
        assert sampled == 11
        assert len(obs.traces) == 11

    def test_unsampled_requests_still_counted(self):
        obs = Observability(sample_rate=0.1)
        for index in range(20):
            trace = obs.request_trace("Svc.Op", index, 0.0)
            obs.finish_request(trace, 0.5, status="ok" if index % 2 else "failed")
        assert obs.metrics.counters["requests.total"].value == 20
        assert obs.metrics.counters["requests.ok"].value == 10
        assert obs.metrics.counters["requests.failed"].value == 10

    def test_sample_rate_one_traces_everything(self):
        obs = Observability(sample_rate=1.0)
        traces = [obs.request_trace("Svc.Op", i, 0.0) for i in range(5)]
        assert all(trace is not NULL_TRACE for trace in traces)

    def test_sample_rate_zero_traces_nothing(self):
        obs = Observability(sample_rate=0.0)
        traces = [obs.request_trace("Svc.Op", i, 0.0) for i in range(5)]
        assert all(trace is NULL_TRACE for trace in traces)

    def test_sample_rate_validated(self):
        with pytest.raises(ValueError):
            Observability(sample_rate=1.5)
        with pytest.raises(ValueError):
            Observability(sample_rate=-0.1)

    def test_sampled_durations_land_in_recent_ring(self):
        obs = Observability()
        trace = obs.request_trace("Svc.Op", 1, 0.0)
        obs.finish_request(trace, 0.25)
        ring = obs.metrics.ring("request.duration.recent")
        assert ring.window() == [pytest.approx(0.25)]

    def test_reset_drops_cached_phase_histogram_handles(self):
        # Regression: reset() clears the registry's histograms; stale
        # cached handles would keep folding into orphaned objects.
        obs = Observability()
        trace = obs.request_trace("Svc.Op", 1, 0.0)
        trace.begin("invoke", 0.0).finish(0.2)
        obs.finish_request(trace, 0.2)
        obs.reset()
        trace = obs.request_trace("Svc.Op", 2, 1.0)
        trace.begin("invoke", 1.0).finish(1.3)
        obs.finish_request(trace, 1.3)
        assert obs.phase_summary()["invoke"]["count"] == 1
        assert obs.metrics.histograms["phase.invoke"].count == 1

    def test_config_sample_rate_reaches_system_observability(self):
        system = WhisperSystem(ScenarioConfig(seed=1, obs_sample_rate=0.5))
        assert system.obs.sample_rate == 0.5

    def test_exports_parse(self):
        obs = Observability()
        trace = obs.request_trace("Svc.Op", 1, 0.0)
        trace.begin("invoke", 0.0).finish(0.2)
        obs.finish_request(trace, 0.2)
        assert json.loads(obs.traces_to_json())[0]["operation"] == "Svc.Op"
        assert json.loads(obs.to_json())["phases"]["invoke"]["count"] == 1
        assert obs.phases_to_csv().splitlines()[0].startswith("phase,count")


class TestSystemIntegration:
    def test_failure_free_requests_record_phase_spans(self):
        system = WhisperSystem(ScenarioConfig(seed=11))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        _run_requests(system, service, 4)
        report = system.status_report()
        phases = report["phases"]
        assert report["observability"]["enabled"] is True
        assert phases["discover"]["count"] == 4
        assert phases["invoke"]["count"] == 4
        assert phases["execute"]["count"] == 4
        assert phases["bind"]["count"] == 1   # bound once, then cached
        assert phases["recover"]["count"] == 0
        assert phases["elect"]["count"] >= 1  # the bootstrap election
        trace = system.obs.traces[-1]
        assert trace.status == "ok"
        assert [span.name for span in trace.spans()] == ["discover", "invoke"]

    def test_coordinator_crash_shows_up_as_recover_phase(self):
        system = WhisperSystem(ScenarioConfig(seed=13))
        service = system.deploy_student_service(system.config.replace(replicas=3))
        system.settle(6.0)
        victim = service.group.coordinator_peer()
        system.failures.crash_at(system.env.now + 0.3, victim.node.name)
        node, soap = system.add_client("crash-client")

        def loop():
            for index in range(4):
                yield from soap.call(
                    service.address, service.path, "StudentInformation",
                    {"ID": f"S{index + 1:05d}"}, timeout=120.0,
                )
                yield system.env.timeout(0.5)

        system.env.run(until=node.spawn(loop()))
        phases = system.status_report()["phases"]
        assert phases["recover"]["count"] >= 1
        # Recovery (detection + re-bind) dominates the failure story,
        # exactly the paper's multi-second worst case.
        assert phases["recover"]["max"] > phases["execute"]["max"]
        recovered = [
            trace for trace in system.obs.traces
            if "recover" in trace.phase_durations()
        ]
        assert recovered
        assert any(
            span.name == "invoke" and span.tags.get("outcome") == "timeout"
            for span in recovered[0].spans()
        )

    def test_message_trace_mirrors_into_metrics(self):
        system = WhisperSystem(ScenarioConfig(seed=17))
        service = system.deploy_student_service(system.config.replace(replicas=2))
        system.settle(6.0)
        _run_requests(system, service, 2)
        counters = system.obs.metrics.counters
        assert counters["net.sent"].value == system.trace.sent_total
        assert counters["net.delivered"].value == system.trace.delivered_total

    def test_disabled_observability_is_inert_and_equivalent(self):
        reports = {}
        for enabled in (True, False):
            system = WhisperSystem(ScenarioConfig(seed=23, observability=enabled))
            service = system.deploy_student_service(system.config.replace(replicas=3))
            system.settle(6.0)
            _run_requests(system, service, 3)
            reports[enabled] = (system.trace.snapshot(), system)
        disabled_system = reports[False][1]
        assert len(disabled_system.obs.traces) == 0
        assert disabled_system.obs.metrics.histograms == {}
        phases = disabled_system.status_report()["phases"]
        assert all(stats["count"] == 0 for stats in phases.values())
        # Same seed, same workload: the message flow must be identical
        # whether or not the instrumentation records it.
        assert reports[True][0] == reports[False][0]

    def test_reset_counters_can_include_observability(self):
        system = WhisperSystem(ScenarioConfig(seed=29))
        service = system.deploy_student_service(system.config.replace(replicas=2))
        system.settle(6.0)
        _run_requests(system, service, 2)
        system.reset_counters()
        assert len(system.obs.traces) > 0  # default: obs preserved
        system.reset_counters(include_observability=True)
        assert len(system.obs.traces) == 0
        assert system.status_report()["phases"]["invoke"]["count"] == 0
