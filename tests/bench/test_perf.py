"""Unit tests for the perf harness: scenarios, summaries, the CI gate."""

import pytest

from repro.bench import perf
from repro.cli import build_parser

MICRO_SCALE = dict(
    timer_procs=4, timer_events=40,
    chain_procs=2, chain_events=100,
    pingpong_pairs=2, pingpong_rounds=40,
    cancel_waiters=150, cancel_rounds=1,
    discovery_ads=4, discovery_queries=2,
    whisper_clients=1, whisper_requests=2,
    repeats=1,
)


@pytest.fixture
def micro(monkeypatch):
    monkeypatch.setitem(perf.SCALES, "micro", MICRO_SCALE)
    return "micro"


class TestRunMode:
    def test_current_mode_records_every_scenario(self, micro):
        record = perf.run_mode("current", micro, seed=7)
        names = [s["name"] for s in record["scenarios"]]
        assert names == [
            "timer-dense", "ready-chain", "store-pingpong",
            "cancel-storm", "discovery-flood", "whisper-loop",
        ]
        for scenario in record["scenarios"]:
            assert scenario["events"] > 0
            assert scenario["events_per_sec"] > 0
        assert record["config"]["scheduler"] == "batched"
        assert record["config"]["cache_xml"] is True
        assert record["totals"]["events"] == sum(
            s["events"] for s in record["scenarios"]
        )
        # Full-stack scenarios carry real network traffic.
        by_name = {s["name"]: s for s in record["scenarios"]}
        assert by_name["discovery-flood"]["messages"] > 0
        assert by_name["whisper-loop"]["messages"] > 0

    def test_baseline_mode_restores_globals(self, micro):
        from repro.p2p import advertisement as advertisement_module
        from repro.simnet import environment as environment_module

        record = perf.run_mode("baseline", micro, seed=7)
        assert record["config"]["scheduler"] == "heap"
        assert record["config"]["legacy_store_cancel"] is True
        assert environment_module.DEFAULT_SCHEDULER == "batched"
        assert advertisement_module.CACHE_XML is True

    def test_unknown_mode_rejected(self, micro):
        with pytest.raises(ValueError):
            perf.run_mode("turbo", micro)


def _record(aggregate, headline, scale="smoke"):
    return {
        "runs": {
            scale: {
                "speedup": {"events_per_sec": aggregate},
                "headline": {
                    "scenario": perf.HEADLINE_SCENARIO, "speedup": headline
                },
            }
        }
    }


class TestCheckRecord:
    def test_matching_speedups_pass(self):
        assert perf.check_record(_record(2.0, 5.0), _record(2.0, 5.0)) == []

    def test_small_regression_within_tolerance_passes(self):
        failures = perf.check_record(
            _record(1.6, 4.0), _record(2.0, 5.0), tolerance=0.25
        )
        assert failures == []

    def test_large_regression_fails(self):
        failures = perf.check_record(
            _record(1.0, 2.0), _record(2.0, 5.0), tolerance=0.25
        )
        assert len(failures) == 2
        assert any("aggregate" in failure for failure in failures)
        assert any("headline" in failure for failure in failures)

    def test_slower_than_baseline_always_fails(self):
        failures = perf.check_record(
            _record(0.9, 1.0), _record(1.0, 1.0), tolerance=0.5
        )
        assert any("slower than the seed baseline" in f for f in failures)

    def test_unmatched_scales_are_skipped(self):
        new = _record(1.0, 1.0, scale="smoke")
        committed = _record(9.0, 9.0, scale="full")
        assert perf.check_record(new, committed) == []


class TestCli:
    def test_perf_subcommand_parses(self):
        args = build_parser().parse_args(
            ["perf", "--smoke", "--out", "x.json",
             "--check", "BENCH_simnet.json", "--tolerance", "0.3"]
        )
        assert args.func.__name__ == "_cmd_perf"
        assert args.smoke and args.out == "x.json"
        assert args.tolerance == 0.3
