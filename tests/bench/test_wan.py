"""The WAN benchmark record: smoke tier, assertions, gating."""

import pytest

from repro.bench.wan import check_record, format_record, run_wan


@pytest.fixture(scope="module")
def record():
    return run_wan(scale="smoke", seed=42)


class TestWanRecord:
    def test_schema_and_tier(self, record):
        assert record["schema"] == "repro-wan/1"
        assert record["scale"] == "smoke"
        assert record["seed"] == 42

    def test_all_assertions_hold(self, record):
        assert record["assertions"]["gossip_converges_in_log_rounds"]
        assert record["assertions"]["all_points_converged"]
        assert record["assertions"]["gossip_beats_flood"]
        assert record["assertions"]["nearest_region_faster"]
        assert record["assertions"]["fig4_byte_identical"]
        assert record["ok"]

    def test_convergence_points_carry_the_bound(self, record):
        for point in record["convergence"]:
            assert point["rounds"] <= point["round_bound"]
            assert point["converged"]

    def test_economy_is_strictly_less_than_flood(self, record):
        economy = record["economy"]
        assert economy["regions"] >= 3
        assert economy["gossip"]["messages"] < economy["flood"]["messages"]

    def test_check_record_passes_and_catches_tampering(self, record):
        assert check_record(record) == []
        tampered = dict(record, assertions=dict(record["assertions"]))
        tampered["assertions"]["gossip_beats_flood"] = False
        tampered["ok"] = False
        assert check_record(tampered)

    def test_format_record_renders(self, record):
        text = format_record(record)
        assert "convergence" in text
        assert "figure-4 guard" in text
