"""Tests for the saga benchmark record."""

import json

from repro.bench.saga import check_record, format_record, run_saga_bench


def test_smoke_record_passes_all_assertions():
    record = run_saga_bench(scale="smoke")
    assert record["schema"] == "repro-saga/1"
    assert record["ok"], record["assertions"]
    assert check_record(record) == []
    assert record["seeds"] == [7]
    (result,) = record["results"]
    # Compensation on: the atomicity audit is silent under faults...
    assert result["faulted"]["violations"] == []
    assert result["faulted"]["recoveries"] >= 1
    # ...and off: the same schedule strands partial effects.
    assert result["baseline"]["stranded_violations"]
    json.dumps(record)  # the record must be JSON-serializable as-is


def test_check_record_reports_failed_assertions():
    record = {"assertions": {"good": True, "bad": False}}
    assert check_record(record) == ["saga assertion failed: bad"]


def test_format_record_renders_tables():
    record = run_saga_bench(scale="smoke")
    text = format_record(record)
    assert "saga bench" in text
    assert "faulted" in text and "baseline" in text
    assert "assertions:" in text
