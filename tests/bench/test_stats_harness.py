"""Unit tests for benchmark statistics, sweeps, and reporting."""

import pytest

from repro.bench import (
    Sweep,
    SweepPoint,
    ascii_plot,
    format_sweep,
    format_table,
    linear_fit,
    percentile,
    run_sweep,
    summarize,
)


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        values = list(range(100))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 99

    def test_single_value(self):
        assert percentile([7], 99) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummary:
    def test_basic_summary(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == 2.5

    def test_single_sample_stdev_zero(self):
        assert summarize([5.0]).stdev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestLinearFit:
    def test_perfect_line(self):
        fit = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_fit([0, 1], [0, 2])
        assert fit.predict(5) == pytest.approx(10.0)

    def test_noisy_line_high_r2(self):
        xs = list(range(20))
        ys = [2 * x + 1 + (0.1 if x % 2 else -0.1) for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.r_squared > 0.99

    def test_flat_line(self):
        fit = linear_fit([1, 2, 3], [5, 5, 5])
        assert fit.slope == 0.0
        assert fit.r_squared == 1.0

    def test_degenerate_x_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1, 1], [1, 2])

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])


class TestSweep:
    def test_run_sweep_collects_points(self):
        sweep = run_sweep("demo", "n", [1, 2, 3], lambda n: {"square": n * n})
        assert sweep.parameters() == [1, 2, 3]
        assert sweep.series("square") == [1, 4, 9]
        assert sweep.columns() == ["square"]

    def test_repeats_mean_reduce(self):
        calls = {"count": 0}

        def measure(n):
            calls["count"] += 1
            return {"value": calls["count"]}

        sweep = run_sweep("demo", "n", [10], measure, repeats=4)
        assert sweep.points[0]["value"] == 2.5  # mean of 1..4

    def test_custom_reduce(self):
        sweep = run_sweep(
            "demo", "n", [1],
            lambda n: {"v": n},
            repeats=3,
            reduce=lambda runs: {"v": max(r["v"] for r in runs)},
        )
        assert sweep.points[0]["v"] == 1

    def test_non_numeric_columns_survive_reduce(self):
        sweep = run_sweep(
            "demo", "n", [1], lambda n: {"label": "x", "v": 2}, repeats=2
        )
        assert sweep.points[0]["label"] == "x"
        assert sweep.points[0]["v"] == 2

    def test_sweep_point_row(self):
        point = SweepPoint(parameter=5, measurements={"a": 1, "b": 2})
        assert point.row(["b", "a"]) == [5, 2, 1]


class TestCsvExport:
    def test_sweep_to_csv(self):
        sweep = run_sweep("demo", "n", [1, 2], lambda n: {"sq": n * n, "name": "x"})
        csv = sweep.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "n,sq,name"
        assert lines[1] == "1,1,x"
        assert lines[2] == "2,4,x"

    def test_csv_quotes_special_characters(self):
        sweep = run_sweep("demo", "n", [1], lambda n: {"label": 'has,comma "q"'})
        csv = sweep.to_csv()
        assert '"has,comma ""q"""' in csv

    def test_csv_parses_back(self):
        import csv as csv_module
        import io

        sweep = run_sweep("demo", "peers", [2, 4, 8], lambda n: {"msgs": 10 * n})
        rows = list(csv_module.DictReader(io.StringIO(sweep.to_csv())))
        assert [int(r["msgs"]) for r in rows] == [20, 40, 80]


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["n", "value"], [[1, 10.5], [100, 2]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "n" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_sweep(self):
        sweep = run_sweep("messages", "peers", [2, 4], lambda n: {"msgs": 10 * n})
        text = format_sweep(sweep)
        assert "peers" in text
        assert "msgs" in text
        assert "40" in text

    def test_ascii_plot_renders(self):
        text = ascii_plot([1, 2, 3, 4], [10, 20, 30, 40], width=20, height=5)
        assert text.count("*") == 4

    def test_ascii_plot_flat_series(self):
        text = ascii_plot([1, 2, 3], [5, 5, 5], width=10, height=4)
        assert text.count("*") == 3  # degenerate y-range still renders

    def test_ascii_plot_rejects_bad_input(self):
        with pytest.raises(ValueError):
            ascii_plot([1], [1, 2])
        with pytest.raises(ValueError):
            ascii_plot([], [])

    def test_bool_and_float_formatting(self):
        text = format_table(["x"], [[True], [0.12345], [12345.6]])
        assert "yes" in text
        assert "0.1235" in text or "0.1234" in text
        assert "12,346" in text
