"""The adaptive-capacity benchmark record: smoke tier, assertions, gating."""

import pytest

from repro.bench.capacity import (
    check_record,
    diurnal_phases,
    format_record,
    run_breaker_drill,
    run_capacity,
    run_fig4_guard,
)
from repro.bench.workload import PoissonWorkload
from repro.check.invariants import (
    autoscale_violations,
    breaker_violations,
    rescache_violations,
    retirement_violations,
)


@pytest.fixture(scope="module")
def record():
    return run_capacity(scale="smoke", seed=42)


class TestCapacityRecord:
    def test_schema_and_tier(self, record):
        assert record["schema"] == "repro-capacity/1"
        assert record["scale"] == "smoke"
        assert record["seed"] == 42

    def test_all_assertions_hold(self, record):
        assert record["ok"], record["assertions"]
        assert record["assertions"]["replica_hours_economical"]
        assert record["assertions"]["availability_parity"]
        assert record["assertions"]["p99_within_band"]
        assert record["assertions"]["scaled_up_and_down"]
        assert record["assertions"]["cache_hot_phase_hits"]
        assert record["assertions"]["zero_stale_epoch_serves"]
        assert record["assertions"]["capacity_invariants_clean"]
        assert record["assertions"]["breaker_trips_and_heals"]
        assert record["assertions"]["fig4_byte_identical"]

    def test_autoscaled_is_cheaper_than_static(self, record):
        assert record["replica_seconds_ratio"] <= 0.6
        assert (
            record["autoscaled"]["replica_seconds"]
            < record["static_max"]["replica_seconds"]
        )

    def test_elasticity_follows_the_diurnal_shape(self, record):
        events = record["autoscaled"]["scale_events"]
        ups = [e for e in events if e["direction"] == "up"]
        downs = [e for e in events if e["direction"] == "down"]
        assert ups and downs
        # The first move of the day is a scale-up (the ramp), and the
        # group is back at the floor by end of trace.
        assert events[0]["direction"] == "up"
        assert record["autoscaled"]["phases"][-1]["replicas_after"] == 2

    def test_check_record_passes_and_catches_tampering(self, record):
        assert check_record(record) == []
        tampered = dict(record, assertions=dict(record["assertions"]))
        tampered["assertions"]["replica_hours_economical"] = False
        assert check_record(tampered) == [
            "capacity assertion failed: replica_hours_economical"
        ]

    def test_format_record_renders(self, record):
        text = format_record(record)
        assert "diurnal trace: autoscaled" in text
        assert "replica-hours" in text
        assert "breaker drill" in text
        assert "figure-4 guard" in text


class TestStandaloneProbes:
    def test_breaker_drill_trips_and_heals(self):
        drill = run_breaker_drill(seed=7)
        assert drill["tripped"]
        assert drill["healed"]
        assert drill["unjustified_trips"] == []
        assert ("closed", "open") in drill["transitions"]
        assert ("half-open", "closed") in drill["transitions"]

    def test_fig4_guard_is_byte_identical(self):
        guard = run_fig4_guard(seed=7)
        assert guard["identical"], guard

    def test_diurnal_phases_smoke_keeps_ramp_and_quiet_full_length(self):
        smoke = {p.name: p for p in diurnal_phases("smoke")}
        full = {p.name: p for p in diurnal_phases("full")}
        # Shrinking the ramp or the quiet valleys would distort the
        # transient (ramp) and the elastic-floor economics (quiet).
        for name in ("quiet-am", "ramp-1", "ramp-2", "ramp-3", "quiet-pm"):
            assert smoke[name].duration == full[name].duration
        assert smoke["peak"].duration < full["peak"].duration


@pytest.mark.parametrize("seed", [7, 42], indirect=True)
def test_capacity_scenario_survives_a_burst_clean(capacity_scenario, seed):
    """The shared fixture under a burst: every capacity invariant holds."""
    system, service = capacity_scenario
    workload = PoissonWorkload(
        system,
        service.address,
        service.path,
        "StudentInformation",
        rate=150.0,
        duration=4.0,
        call_timeout=10.0,
    )
    result = workload.run()
    system.settle(4.0)
    assert result.requests > 0
    assert result.accepted_availability >= 0.9
    assert autoscale_violations(service.autoscalers) == []
    assert retirement_violations(service.autoscalers) == []
    assert breaker_violations(service.proxy) == []
    assert rescache_violations(service.proxy) == []
