"""Tests for the workload generators against a live Whisper deployment."""

import pytest

from repro.bench import ClosedLoopWorkload, PoissonWorkload
from repro.core import ScenarioConfig, WhisperSystem


@pytest.fixture
def deployment():
    system = WhisperSystem(ScenarioConfig(seed=21))
    service = system.deploy_student_service(system.config.replace(replicas=3))
    system.settle(6.0)
    return system, service


class TestClosedLoop:
    def test_all_requests_complete(self, deployment):
        system, service = deployment
        workload = ClosedLoopWorkload(
            system, service.address, service.path, "StudentInformation",
            clients=2, think_time=0.02, requests_per_client=5,
        )
        result = workload.run()
        assert result.requests == 10
        assert result.availability == 1.0
        assert len(result.latencies) == 10

    def test_latency_summary(self, deployment):
        system, service = deployment
        workload = ClosedLoopWorkload(
            system, service.address, service.path, "StudentInformation",
            clients=1, think_time=0.0, requests_per_client=5,
        )
        result = workload.run()
        summary = result.latency_summary()
        assert 0 < summary.mean < 0.1
        assert summary.count == 5

    def test_throughput_positive(self, deployment):
        system, service = deployment
        workload = ClosedLoopWorkload(
            system, service.address, service.path, "StudentInformation",
            clients=2, think_time=0.01, requests_per_client=5,
        )
        result = workload.run()
        assert result.throughput > 0
        assert result.duration > 0

    def test_faults_counted_not_raised(self, deployment):
        system, service = deployment
        workload = ClosedLoopWorkload(
            system, service.address, service.path, "StudentInformation",
            clients=1, think_time=0.0, requests_per_client=4,
            arguments=lambda index: {"ID": "S99999"},  # unknown student
        )
        result = workload.run()
        assert result.faults == 4
        assert result.availability == 0.0


class TestPoisson:
    def test_open_loop_generates_load(self, deployment):
        system, service = deployment
        workload = PoissonWorkload(
            system, service.address, service.path, "StudentInformation",
            rate=100.0, duration=2.0,
        )
        result = workload.run()
        # ~200 expected; loose bounds for the Poisson draw.
        assert 120 < result.requests < 300
        assert result.availability == 1.0

    def test_rate_zero_rejected(self, deployment):
        system, service = deployment
        with pytest.raises(ValueError):
            PoissonWorkload(
                system, service.address, service.path, "StudentInformation",
                rate=0.0,
            )

    def test_deterministic_given_seed(self):
        def run_once():
            system = WhisperSystem(ScenarioConfig(seed=33))
            service = system.deploy_student_service(system.config.replace(replicas=2))
            system.settle(6.0)
            workload = PoissonWorkload(
                system, service.address, service.path, "StudentInformation",
                rate=50.0, duration=1.0,
            )
            result = workload.run()
            return result.requests, round(sum(result.latencies), 9)

        assert run_once() == run_once()
