"""Unit tests for the ontology container and validation."""

import pytest

from repro.ontology import Ontology, OntologyBuilder, OntologyError


@pytest.fixture
def ontology():
    onto = Ontology("http://t.org/o", label="Test")
    onto.add_concept("http://t.org/o#Thing")
    onto.add_concept("http://t.org/o#Animal", parents=["http://t.org/o#Thing"])
    onto.add_concept("http://t.org/o#Dog", parents=["http://t.org/o#Animal"])
    return onto


T = "http://t.org/o#"


class TestMutation:
    def test_add_concept_idempotent_extends(self, ontology):
        ontology.add_concept(T + "Dog", parents=[T + "Thing"])
        assert ontology.concept(T + "Dog").parents == {T + "Animal", T + "Thing"}

    def test_add_subclass_creates_both_sides(self):
        onto = Ontology("http://t.org/o")
        onto.add_subclass(T + "A", T + "B")
        assert onto.has_concept(T + "A")
        assert onto.has_concept(T + "B")

    def test_equivalence_is_symmetric(self, ontology):
        ontology.add_equivalence(T + "Dog", T + "Canine")
        assert T + "Canine" in ontology.concept(T + "Dog").equivalents
        assert T + "Dog" in ontology.concept(T + "Canine").equivalents

    def test_unknown_concept_raises(self, ontology):
        with pytest.raises(OntologyError):
            ontology.concept(T + "Ghost")

    def test_individuals(self, ontology):
        ontology.add_individual(T + "rex", types=[T + "Dog"])
        individuals = ontology.individuals_of(T + "Dog")
        assert [i.uri for i in individuals] == [T + "rex"]

    def test_individual_property_values(self, ontology):
        individual = ontology.add_individual(T + "rex", types=[T + "Dog"])
        individual.add_value(T + "hasName", "Rex")
        individual.add_value(T + "hasName", "Rexy")
        assert individual.get_values(T + "hasName") == ["Rex", "Rexy"]
        assert individual.get_values(T + "missing") == []


class TestQueries:
    def test_roots(self, ontology):
        assert ontology.roots() == [T + "Thing"]

    def test_direct_children(self, ontology):
        assert ontology.direct_children(T + "Animal") == {T + "Dog"}

    def test_direct_parents(self, ontology):
        assert ontology.direct_parents(T + "Dog") == {T + "Animal"}

    def test_len_counts_concepts(self, ontology):
        assert len(ontology) == 3


class TestMerge:
    def test_merge_brings_concepts_and_axioms(self, ontology):
        other = Ontology("http://o.org/2")
        other.add_concept(T + "Cat", parents=[T + "Animal"])
        other.add_concept(T + "Animal")
        other.add_equivalence(T + "Cat", T + "Feline")
        ontology.merge(other)
        assert ontology.has_concept(T + "Cat")
        assert T + "Feline" in ontology.concept(T + "Cat").equivalents

    def test_merge_preserves_existing_parents(self, ontology):
        other = Ontology("http://o.org/2")
        other.add_concept(T + "Dog")  # no parents declared there
        ontology.merge(other)
        assert T + "Animal" in ontology.concept(T + "Dog").parents


class TestValidation:
    def test_valid_ontology_reports_nothing(self, ontology):
        assert ontology.validate() == []

    def test_undefined_parent_reported(self, ontology):
        ontology.concept(T + "Dog").parents.add(T + "Ghost")
        problems = ontology.validate()
        assert any("Ghost" in p for p in problems)

    def test_undefined_equivalent_reported(self, ontology):
        ontology.concept(T + "Dog").equivalents.add(T + "Ghost")
        assert any("Ghost" in p for p in ontology.validate())

    def test_cycle_without_equivalence_reported(self, ontology):
        ontology.add_subclass(T + "Animal", T + "Dog")  # Dog <-> Animal cycle
        problems = ontology.validate()
        assert any("cycle" in p for p in problems)

    def test_cycle_with_equivalence_accepted(self, ontology):
        ontology.add_subclass(T + "Animal", T + "Dog")
        ontology.add_equivalence(T + "Animal", T + "Dog")
        assert not any("cycle" in p for p in ontology.validate())

    def test_undefined_property_domain_reported(self, ontology):
        ontology.add_property(T + "hasTail", domain=T + "Ghost")
        assert any("domain" in p for p in ontology.validate())

    def test_undefined_individual_type_reported(self, ontology):
        ontology.add_individual(T + "x", types=[T + "Ghost"])
        assert any("individual" in p for p in ontology.validate())


class TestBuilder:
    def test_builder_resolves_curies(self):
        builder = OntologyBuilder("http://t.org/o")
        builder.namespace("t", T)
        builder.concept("t:A")
        builder.concept("t:B", parents=["t:A"])
        onto = builder.build()
        assert onto.concept(T + "B").parents == {T + "A"}

    def test_builder_rejects_invalid(self):
        builder = OntologyBuilder("http://t.org/o")
        builder.namespace("t", T)
        builder.concept("t:B", parents=["t:Missing"])
        with pytest.raises(ValueError):
            builder.build()

    def test_builder_validate_opt_out(self):
        builder = OntologyBuilder("http://t.org/o")
        builder.namespace("t", T)
        builder.concept("t:B", parents=["t:Missing"])
        onto = builder.build(validate=False)
        assert onto.has_concept(T + "B")
