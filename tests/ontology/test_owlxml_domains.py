"""Unit tests for OWL XML round-tripping and the sample domain ontologies."""

import pytest

from repro.ontology import (
    B2B,
    LEGACY,
    SM,
    ConceptMatcher,
    DegreeOfMatch,
    OwlParseError,
    Reasoner,
    b2b_ontology,
    enterprise_ontology,
    ontology_from_xml,
    ontology_to_xml,
    university_ontology,
)


class TestOwlXml:
    def test_roundtrip_preserves_structure(self):
        original = b2b_ontology()
        parsed = ontology_from_xml(ontology_to_xml(original))
        assert set(parsed.concepts) == set(original.concepts)
        for uri, concept in original.concepts.items():
            assert parsed.concepts[uri].parents == concept.parents
            assert parsed.concepts[uri].equivalents == concept.equivalents
        assert set(parsed.properties) == set(original.properties)

    def test_roundtrip_preserves_labels(self):
        original = university_ontology()
        parsed = ontology_from_xml(ontology_to_xml(original))
        assert parsed.concepts[SM["StudentID"]].label == "Student ID"

    def test_individuals_roundtrip(self):
        original = university_ontology()
        original.add_individual(SM["s-123"], types=[SM["Student"]])
        parsed = ontology_from_xml(ontology_to_xml(original))
        assert SM["Student"] in parsed.individuals[SM["s-123"]].types

    def test_malformed_xml_rejected(self):
        with pytest.raises(OwlParseError):
            ontology_from_xml("<not-closed")

    def test_wrong_root_rejected(self):
        with pytest.raises(OwlParseError):
            ontology_from_xml("<html/>")

    def test_missing_header_rejected(self):
        document = (
            '<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"/>'
        )
        with pytest.raises(OwlParseError):
            ontology_from_xml(document)


class TestDomains:
    def test_university_valid(self):
        assert university_ontology().validate() == []

    def test_enterprise_valid(self):
        assert enterprise_ontology().validate() == []

    def test_merged_valid(self):
        assert b2b_ontology().validate() == []

    def test_paper_scenario_concepts_present(self):
        onto = university_ontology()
        for concept in ("StudentInformation", "StudentID", "StudentInfo"):
            assert onto.has_concept(SM[concept])

    def test_studentid_studentnumber_synonyms(self):
        reasoner = Reasoner(university_ontology())
        assert reasoner.equivalent(SM["StudentID"], SM["StudentNumber"])

    def test_homonyms_do_not_match_semantically(self):
        """legacy:StudentInformation shares only the local name."""
        matcher = ConceptMatcher(Reasoner(b2b_ontology()))
        match = matcher.match_concepts(
            SM["StudentInformation"], LEGACY["StudentInformation"]
        )
        assert match.degree is DegreeOfMatch.FAIL

    def test_b2b_claim_concepts(self):
        reasoner = Reasoner(enterprise_ontology())
        assert reasoner.is_subsumed_by(B2B["FileClaim"], B2B["ClaimProcessing"])
        assert reasoner.equivalent(B2B["ProcessClaim"], B2B["AssessClaim"])

    def test_namespaces_bound_in_merged(self):
        onto = b2b_ontology()
        assert onto.namespaces.resolve("sm:Student") == SM["Student"]
        assert onto.namespaces.resolve("legacy:Payload") == LEGACY["Payload"]
