"""Unit tests for Turtle serialisation."""

import pytest

from repro.ontology import (
    SM,
    Ontology,
    Reasoner,
    TurtleParseError,
    b2b_ontology,
    ontology_from_turtle,
    ontology_to_turtle,
    university_ontology,
)


class TestWriter:
    def test_prefix_directives_emitted(self):
        text = ontology_to_turtle(university_ontology())
        assert "@prefix sm: <http://uma.pt/ontologies/student#> ." in text
        assert "@prefix owl:" in text

    def test_classes_use_curies(self):
        text = ontology_to_turtle(university_ontology())
        assert "sm:StudentID a owl:Class" in text
        assert "rdfs:subClassOf sm:Identifier" in text

    def test_equivalence_emitted(self):
        text = ontology_to_turtle(university_ontology())
        assert "owl:equivalentClass sm:StudentNumber" in text

    def test_labels_escaped(self):
        onto = Ontology("http://t.org/o", label='Has "quotes" and\nnewline')
        onto.add_concept("http://t.org/o#A")
        text = ontology_to_turtle(onto)
        assert '\\"quotes\\"' in text
        assert "\\n" in text

    def test_unprefixed_uris_use_angle_brackets(self):
        onto = Ontology("http://t.org/o", label="T")
        onto.add_concept("http://elsewhere.org/deep/Thing")
        text = ontology_to_turtle(onto)
        assert "<http://elsewhere.org/deep/Thing> a owl:Class" in text


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [university_ontology, b2b_ontology])
    def test_structure_survives(self, factory):
        original = factory()
        parsed = ontology_from_turtle(ontology_to_turtle(original))
        assert parsed.uri == original.uri
        assert set(parsed.concepts) == set(original.concepts)
        for uri, concept in original.concepts.items():
            assert parsed.concepts[uri].parents == concept.parents, uri
            assert parsed.concepts[uri].equivalents >= concept.equivalents, uri
        assert set(parsed.properties) == set(original.properties)

    def test_reasoning_survives(self):
        original = university_ontology()
        parsed = ontology_from_turtle(ontology_to_turtle(original))
        original_reasoner = Reasoner(original)
        parsed_reasoner = Reasoner(parsed)
        for uri in original.concepts:
            assert original_reasoner.ancestors(uri) == parsed_reasoner.ancestors(uri)
        assert parsed_reasoner.equivalent(SM["StudentID"], SM["StudentNumber"])

    def test_labels_and_comments_survive(self):
        parsed = ontology_from_turtle(ontology_to_turtle(university_ontology()))
        assert parsed.concepts[SM["StudentID"]].label == "Student ID"
        assert parsed.concepts[SM["StudentInfo"]].comment

    def test_individuals_survive(self):
        onto = university_ontology()
        onto.add_individual(SM["s-42"], types=[SM["Student"]])
        parsed = ontology_from_turtle(ontology_to_turtle(onto))
        assert SM["Student"] in parsed.individuals[SM["s-42"]].types

    def test_datatype_range_keeps_compact_form(self):
        parsed = ontology_from_turtle(ontology_to_turtle(university_ontology()))
        assert parsed.properties[SM["hasID"]].range == "xsd:string"


class TestParser:
    def test_handwritten_document(self):
        document = """
        @prefix ex: <http://example.org/o#> .
        @prefix owl: <http://www.w3.org/2002/07/owl#> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

        <http://example.org/o> a owl:Ontology ;
            rdfs:label "Example" .

        ex:Animal a owl:Class .
        ex:Dog a owl:Class ;
            rdfs:subClassOf ex:Animal ;   # a comment after a triple
            rdfs:label "Dog" .
        """
        onto = ontology_from_turtle(document)
        assert onto.label == "Example"
        assert onto.concepts["http://example.org/o#Dog"].parents == {
            "http://example.org/o#Animal"
        }

    def test_comma_separated_objects(self):
        document = """
        @prefix ex: <http://example.org/o#> .
        @prefix owl: <http://www.w3.org/2002/07/owl#> .
        <http://example.org/o> a owl:Ontology .
        ex:A a owl:Class .
        ex:B a owl:Class .
        ex:C a owl:Class ;
            rdfs:subClassOf ex:A, ex:B .
        """
        # rdfs prefix must be declared for the subClassOf term.
        document = document.replace(
            "@prefix owl:",
            "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n@prefix owl:",
        )
        onto = ontology_from_turtle(document)
        assert onto.concepts["http://example.org/o#C"].parents == {
            "http://example.org/o#A",
            "http://example.org/o#B",
        }

    def test_hash_inside_iri_not_a_comment(self):
        document = """
        @prefix owl: <http://www.w3.org/2002/07/owl#> .
        <http://example.org/o> a owl:Ontology .
        <http://example.org/o#Thing> a owl:Class .
        """
        onto = ontology_from_turtle(document)
        assert "http://example.org/o#Thing" in onto.concepts

    def test_unknown_prefix_rejected(self):
        with pytest.raises(TurtleParseError, match="unknown prefix"):
            ontology_from_turtle(
                "<http://x> a owl:Ontology .\nzz:Thing a owl:Class ."
            )

    def test_empty_document_rejected(self):
        with pytest.raises(TurtleParseError):
            ontology_from_turtle("   \n  ")

    def test_missing_ontology_header_rejected(self):
        with pytest.raises(TurtleParseError, match="owl:Ontology"):
            ontology_from_turtle(
                "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n"
                "@prefix ex: <http://e.org#> .\n"
                "ex:A a owl:Class ."
            )
