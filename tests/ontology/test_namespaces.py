"""Unit tests for namespaces and qualified names."""

from repro.ontology import Namespace, NamespaceRegistry, QName, split_uri


class TestSplitUri:
    def test_hash_separator(self):
        assert split_uri("http://x.org/onto#Student") == ("http://x.org/onto#", "Student")

    def test_slash_separator(self):
        assert split_uri("http://x.org/onto/Student") == ("http://x.org/onto/", "Student")

    def test_hash_preferred_over_slash(self):
        namespace, local = split_uri("http://x.org/a/b#C")
        assert namespace == "http://x.org/a/b#"
        assert local == "C"

    def test_bare_name(self):
        assert split_uri("Student") == ("", "Student")


class TestNamespace:
    def test_getitem_joins(self):
        ns = Namespace("http://x.org/o#")
        assert ns["Student"] == "http://x.org/o#Student"

    def test_term_builds_qname(self):
        ns = Namespace("http://x.org/o#")
        qname = ns.term("Student")
        assert qname.uri == "http://x.org/o#Student"
        assert qname.local_name == "Student"


class TestQName:
    def test_from_uri_roundtrip(self):
        qname = QName.from_uri("http://x.org/o#Student")
        assert qname.namespace == "http://x.org/o#"
        assert str(qname) == "http://x.org/o#Student"


class TestRegistry:
    def test_resolve_curie(self):
        registry = NamespaceRegistry()
        registry.bind("sm", "http://x.org/o#")
        assert registry.resolve("sm:Student") == "http://x.org/o#Student"

    def test_resolve_full_uri_passthrough(self):
        registry = NamespaceRegistry()
        assert registry.resolve("http://y.org/T") == "http://y.org/T"

    def test_resolve_unknown_prefix_passthrough(self):
        registry = NamespaceRegistry()
        assert registry.resolve("zz:Thing") == "zz:Thing"

    def test_compact(self):
        registry = NamespaceRegistry()
        registry.bind("sm", "http://x.org/o#")
        assert registry.compact("http://x.org/o#Student") == "sm:Student"

    def test_compact_unknown_namespace_passthrough(self):
        registry = NamespaceRegistry()
        assert registry.compact("http://y.org/o#T") == "http://y.org/o#T"

    def test_rebind_prefix(self):
        registry = NamespaceRegistry()
        registry.bind("sm", "http://old.org#")
        registry.bind("sm", "http://new.org#")
        assert registry.resolve("sm:X") == "http://new.org#X"
        assert registry.prefix_of("http://old.org#") is None
