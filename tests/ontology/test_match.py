"""Unit tests for the degree-of-match machinery."""

import pytest

from repro.ontology import ConceptMatcher, DegreeOfMatch, Ontology, Reasoner

T = "http://t.org/o#"


@pytest.fixture
def matcher():
    onto = Ontology("http://t.org/o")
    onto.add_concept(T + "Record")
    onto.add_concept(T + "StudentInfo", parents=[T + "Record"])
    onto.add_concept(T + "StudentRecord", parents=[T + "Record"])
    onto.add_equivalence(T + "StudentInfo", T + "StudentRecord")
    onto.add_concept(T + "Transcript", parents=[T + "StudentInfo"])
    onto.add_concept(T + "Identifier")
    onto.add_concept(T + "StudentID", parents=[T + "Identifier"])
    onto.add_concept(T + "Unrelated")
    return ConceptMatcher(Reasoner(onto))


class TestDegrees:
    def test_identical_is_exact(self, matcher):
        match = matcher.match_concepts(T + "Record", T + "Record")
        assert match.degree is DegreeOfMatch.EXACT
        assert match.similarity == 1.0

    def test_equivalent_is_exact(self, matcher):
        match = matcher.match_concepts(T + "StudentInfo", T + "StudentRecord")
        assert match.degree is DegreeOfMatch.EXACT

    def test_advertised_more_specific_is_plugin(self, matcher):
        match = matcher.match_concepts(T + "StudentInfo", T + "Transcript")
        assert match.degree is DegreeOfMatch.PLUGIN

    def test_advertised_more_general_is_subsume(self, matcher):
        match = matcher.match_concepts(T + "Transcript", T + "StudentInfo")
        assert match.degree is DegreeOfMatch.SUBSUME

    def test_unrelated_is_fail(self, matcher):
        match = matcher.match_concepts(T + "StudentID", T + "Unrelated")
        assert match.degree is DegreeOfMatch.FAIL
        assert not match.succeeded

    def test_degree_ordering(self):
        assert DegreeOfMatch.EXACT > DegreeOfMatch.PLUGIN > DegreeOfMatch.SUBSUME > DegreeOfMatch.FAIL


class TestConceptLists:
    def test_one_to_one_assignment(self, matcher):
        matches = matcher.match_concept_lists(
            [T + "StudentID", T + "StudentInfo"],
            [T + "StudentInfo", T + "StudentID"],
        )
        assert all(m.degree is DegreeOfMatch.EXACT for m in matches)

    def test_each_advertised_used_once(self, matcher):
        matches = matcher.match_concept_lists(
            [T + "StudentInfo", T + "StudentInfo"],
            [T + "StudentInfo"],
        )
        degrees = sorted(m.degree for m in matches)
        assert degrees == [DegreeOfMatch.FAIL, DegreeOfMatch.EXACT]

    def test_missing_request_fails(self, matcher):
        matches = matcher.match_concept_lists([T + "StudentID"], [])
        assert matches[0].degree is DegreeOfMatch.FAIL

    def test_prefers_best_degree(self, matcher):
        matches = matcher.match_concept_lists(
            [T + "StudentInfo"],
            [T + "Transcript", T + "StudentRecord"],
        )
        assert matches[0].degree is DegreeOfMatch.EXACT
        assert matches[0].advertised == T + "StudentRecord"


class TestSignature:
    def _signature(self, matcher, adv_in, adv_out, adv_action=None):
        return matcher.match_signature(
            requested_action=adv_action or (T + "Record"),
            requested_inputs=[T + "StudentID"],
            requested_outputs=[T + "StudentInfo"],
            advertised_action=adv_action or (T + "Record"),
            advertised_inputs=adv_in,
            advertised_outputs=adv_out,
        )

    def test_exact_signature(self, matcher):
        signature = self._signature(matcher, [T + "StudentID"], [T + "StudentInfo"])
        assert signature.degree is DegreeOfMatch.EXACT
        assert signature.score == 1.0
        assert signature.succeeded

    def test_weakest_component_bounds_degree(self, matcher):
        signature = self._signature(matcher, [T + "StudentID"], [T + "Transcript"])
        assert signature.degree is DegreeOfMatch.PLUGIN

    def test_failed_output_fails_signature(self, matcher):
        signature = self._signature(matcher, [T + "StudentID"], [T + "Unrelated"])
        assert signature.degree is DegreeOfMatch.FAIL
        assert not signature.succeeded

    def test_input_direction_mirrored(self, matcher):
        """A provider accepting a *more general* input than requested can be
        plugged in: advertised Identifier accepts our StudentID."""
        signature = self._signature(matcher, [T + "Identifier"], [T + "StudentInfo"])
        assert signature.inputs[0].degree is DegreeOfMatch.PLUGIN

    def test_input_too_specific_is_subsume(self, matcher):
        """A provider demanding a more specific input than we supply is risky."""
        signature = matcher.match_signature(
            requested_action=T + "Record",
            requested_inputs=[T + "Identifier"],
            requested_outputs=[T + "StudentInfo"],
            advertised_action=T + "Record",
            advertised_inputs=[T + "StudentID"],
            advertised_outputs=[T + "StudentInfo"],
        )
        assert signature.inputs[0].degree is DegreeOfMatch.SUBSUME
