"""Unit tests for subsumption/equivalence reasoning."""

import pytest

from repro.ontology import Ontology, Reasoner

T = "http://t.org/o#"


@pytest.fixture
def reasoner():
    onto = Ontology("http://t.org/o")
    onto.add_concept(T + "Thing")
    onto.add_concept(T + "Record", parents=[T + "Thing"])
    onto.add_concept(T + "StudentInfo", parents=[T + "Record"])
    onto.add_concept(T + "StudentRecord", parents=[T + "Record"])
    onto.add_equivalence(T + "StudentInfo", T + "StudentRecord")
    onto.add_concept(T + "Transcript", parents=[T + "StudentInfo"])
    onto.add_concept(T + "ContactInfo", parents=[T + "StudentInfo"])
    onto.add_concept(T + "Unrelated")
    return Reasoner(onto)


class TestSubsumption:
    def test_reflexive(self, reasoner):
        assert reasoner.is_subsumed_by(T + "Record", T + "Record")

    def test_direct(self, reasoner):
        assert reasoner.is_subsumed_by(T + "StudentInfo", T + "Record")

    def test_transitive(self, reasoner):
        assert reasoner.is_subsumed_by(T + "Transcript", T + "Thing")

    def test_not_symmetric(self, reasoner):
        assert not reasoner.is_subsumed_by(T + "Record", T + "Transcript")

    def test_unrelated(self, reasoner):
        assert not reasoner.is_subsumed_by(T + "Unrelated", T + "Record")

    def test_through_equivalence(self, reasoner):
        # Transcript ⊑ StudentInfo ≡ StudentRecord, so Transcript ⊑ StudentRecord.
        assert reasoner.is_subsumed_by(T + "Transcript", T + "StudentRecord")

    def test_subsumes_is_inverse(self, reasoner):
        assert reasoner.subsumes(T + "Record", T + "Transcript")

    def test_descendants(self, reasoner):
        descendants = reasoner.descendants(T + "StudentInfo")
        assert T + "Transcript" in descendants
        assert T + "ContactInfo" in descendants
        assert T + "StudentRecord" in descendants  # equivalent
        assert T + "Record" not in descendants

    def test_unknown_concept_has_trivial_ancestors(self, reasoner):
        assert reasoner.ancestors(T + "Ghost") == {T + "Ghost"}


class TestEquivalence:
    def test_reflexive(self, reasoner):
        assert reasoner.equivalent(T + "Record", T + "Record")

    def test_declared(self, reasoner):
        assert reasoner.equivalent(T + "StudentInfo", T + "StudentRecord")
        assert reasoner.equivalent(T + "StudentRecord", T + "StudentInfo")

    def test_unknown_concepts_not_equivalent(self, reasoner):
        assert not reasoner.equivalent(T + "Ghost", T + "Record")

    def test_equivalence_class(self, reasoner):
        cls = reasoner.equivalence_class(T + "StudentInfo")
        assert cls == {T + "StudentInfo", T + "StudentRecord"}

    def test_transitive_equivalence_chain(self):
        onto = Ontology("http://t.org/o")
        for name in ("A", "B", "C"):
            onto.add_concept(T + name)
        onto.add_equivalence(T + "A", T + "B")
        onto.add_equivalence(T + "B", T + "C")
        reasoner = Reasoner(onto)
        assert reasoner.equivalent(T + "A", T + "C")


class TestDepthAndSimilarity:
    def test_root_depth_zero(self, reasoner):
        assert reasoner.depth(T + "Thing") == 0

    def test_depth_counts_longest_chain(self, reasoner):
        assert reasoner.depth(T + "Transcript") == 3

    def test_lca_of_siblings(self, reasoner):
        lcas = reasoner.least_common_ancestors(T + "Transcript", T + "ContactInfo")
        assert T + "StudentInfo" in lcas or T + "StudentRecord" in lcas

    def test_no_common_ancestor(self, reasoner):
        assert reasoner.least_common_ancestors(T + "Unrelated", T + "Ghost") == set()

    def test_similarity_equivalent_is_one(self, reasoner):
        assert reasoner.similarity(T + "StudentInfo", T + "StudentRecord") == 1.0

    def test_similarity_unrelated_is_zero(self, reasoner):
        assert reasoner.similarity(T + "Unrelated", T + "Ghost") == 0.0

    def test_similarity_siblings_between(self, reasoner):
        similarity = reasoner.similarity(T + "Transcript", T + "ContactInfo")
        assert 0.0 < similarity < 1.0

    def test_similarity_parent_child_high(self, reasoner):
        parent_child = reasoner.similarity(T + "StudentInfo", T + "Transcript")
        siblings = reasoner.similarity(T + "Transcript", T + "ContactInfo")
        assert parent_child >= siblings

    def test_invalidate_after_mutation(self, reasoner):
        assert not reasoner.is_subsumed_by(T + "Unrelated", T + "Thing")
        reasoner.ontology.add_subclass(T + "Unrelated", T + "Thing")
        reasoner.invalidate()
        assert reasoner.is_subsumed_by(T + "Unrelated", T + "Thing")
