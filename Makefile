# Developer conveniences for the Whisper reproduction.

.PHONY: install test bench examples figures overload exactly-once check check-self-test shard shard-smoke perf perf-smoke wan wan-smoke saga saga-smoke capacity capacity-smoke all clean

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-verbose:
	pytest benchmarks/ --benchmark-only -s

examples:
	python examples/quickstart.py
	python examples/semantic_discovery.py
	python examples/b2b_supply_chain.py
	python examples/workflow_process.py
	python examples/operations.py
	python examples/multi_region.py

figures:
	python examples/figure4.py

overload:
	python -m repro overload

exactly-once:
	python -m repro campaign --seed 42 --duration 60 --workload enroll --loss 0.01
	python -m repro campaign --seed 42 --duration 60 --workload enroll --loss 0.01 --no-journal

check:
	python -m repro check --seeds 5 --schedules 50

check-self-test:
	python -m repro check --self-test

# Semantic sharding: read-throughput scaling across federated shard
# groups, Figure-4-style message growth, and the shard-group-crash
# rebalance audit (exactly-once must hold across the ring handoff).
shard:
	python -m repro shard

# The CI tier: a short 1-vs-4 sweep plus the rebalance audit, and a
# cross-shard schedule-exploration pass.
shard-smoke:
	python -m repro shard --shards 1,4 --duration 4 --window 5
	python -m repro check --shards 2 --seeds 1 --schedules 5 --timeout 300

# Regenerate the committed simulator throughput record (full + smoke
# tiers, baseline vs current modes; see EXPERIMENTS.md "Perf methodology").
perf:
	python -m repro perf --out BENCH_simnet.json

# The CI tier: quick smoke run, gated against the committed record.
perf-smoke:
	python -m repro perf --smoke --out bench-smoke.json \
		--check BENCH_simnet.json --tolerance 0.25

# Multi-region WAN benchmark: gossip convergence vs the O(log N) bound,
# staleness vs fanout, gossip-vs-flood message economy, nearest-region
# latency, and the single-region Figure-4 byte-identity guard.
# Regenerates the committed BENCH_wan.json record.
wan:
	python -m repro wan --out BENCH_wan.json

# The CI tier: reduced sweeps, same assertions (exit 1 on any failure),
# plus a region-partition schedule-exploration pass.
wan-smoke:
	python -m repro wan --smoke --out bench-wan-smoke.json
	python -m repro check --regions 2 --seeds 1 --schedules 5 --timeout 300

# Saga benchmark: availability, p99, and compensation correctness of the
# loan-solvency pipeline under 1% loss + orchestrator crashes at commit
# boundaries, against the no-compensation baseline (which must strand
# partial effects).  Regenerates the committed BENCH_saga.json record.
saga:
	python -m repro saga --out BENCH_saga.json

# The CI tier: single-seed bench with the full assertion set, a random
# saga schedule-exploration pass, the compensation-off self-test (the
# atomicity audit must catch, shrink, and replay the violation), and the
# dead-letter-queue park + requeue demo.
saga-smoke:
	python -m repro saga --smoke --out bench-saga-smoke.json
	python -m repro check --saga --seeds 1 --schedules 5 --timeout 300
	python -m repro check --saga-self-test --timeout 300 --out saga-self-test-repro.json
	python -m repro dlq --requeue

# Adaptive capacity benchmark: the diurnal trace priced against the
# provision-for-peak baseline (replica-hours, availability parity, p99
# band, cache hit ratio), the breaker trip-and-heal drill, and the
# single-deployment Figure-4 byte-identity guard.  Regenerates the
# committed BENCH_capacity.json record.
capacity:
	python -m repro capacity --out BENCH_capacity.json

# The CI tier: the smoke bench with the full assertion set, a
# scale-op-enabled schedule-exploration pass, and the capacity
# conformance test suites (autoscale properties, breaker transition
# table, result-cache semantics, record gating).
capacity-smoke:
	python -m repro capacity --smoke --out bench-capacity-smoke.json
	python -m repro check --capacity --seeds 1 --schedules 25 --timeout 300
	pytest tests/properties/test_prop_autoscale.py tests/core/test_breaker.py \
		tests/core/test_rescache.py tests/bench/test_capacity.py -q

outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

all: test bench

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
