"""Ablation E — Whisper vs. client-side failover (the prior art of [2, 3]).

The paper differentiates Whisper from earlier Web-service fault-tolerance
work by its *transparency*: clients keep calling one ordinary Web service;
redundancy, election, and re-binding happen behind it.  The classic
alternative replicates plain endpoints and makes every client (stub)
retry across them.

This bench runs both under identical churn and reports availability and
the client-visible configuration burden.  Expected shape: comparable
availability at equal replication (client-side failover even recovers
faster — one per-endpoint timeout vs. detection+election) — the paper's
argument is not raw availability but transparency and scalability, which
the table makes explicit.
"""

from __future__ import annotations

import pytest

from repro.backend import student_database, student_lookup_operational
from repro.bench import format_table
from repro.core import (
    FailoverSoapClient,
    ReplicatedPlainService,
    ScenarioConfig,
    WhisperSystem,
)
from repro.simnet.events import Interrupt
from repro.soap import RequestTimeout, SoapFault

RUN_SECONDS = 120.0
PROBE_PERIOD = 0.4
CALL_TIMEOUT = 2.0
MTBF = 25.0
MTTR = 20.0
REPLICAS = 3
SEEDS = (7, 17, 27)


def _probe_run(system, call_generator_factory):
    """Open-loop probes against an arbitrary call generator factory."""
    results = {"ok": 0, "failed": 0}
    node = system.network.add_host(f"probe-host-{system.env.now}")
    outstanding = {"count": 0}
    drained = {"event": None}

    def one_probe(sequence):
        try:
            yield from call_generator_factory(node, sequence)
        except (SoapFault, RequestTimeout):
            results["failed"] += 1
        except Interrupt:
            return
        else:
            results["ok"] += 1
        finally:
            outstanding["count"] -= 1
            if outstanding["count"] == 0 and drained["event"] is not None:
                if not drained["event"].triggered:
                    drained["event"].succeed()

    def injector():
        clock = 0.0
        sequence = 0
        while clock < RUN_SECONDS:
            outstanding["count"] += 1
            node.spawn(one_probe(sequence))
            sequence += 1
            yield system.env.timeout(PROBE_PERIOD)
            clock += PROBE_PERIOD

    system.env.run(until=node.spawn(injector()))
    while outstanding["count"] > 0:
        drained["event"] = system.env.event()
        system.env.run(until=drained["event"])
    total = results["ok"] + results["failed"]
    return results["ok"] / total if total else 0.0


def measure_whisper(seed: int) -> float:
    system = WhisperSystem(
        ScenarioConfig(
            seed=seed, heartbeat_interval=0.5, miss_threshold=2, replicas=REPLICAS
        )
    )
    service = system.deploy_student_service()
    system.settle(6.0)
    system.failures.churn(
        [peer.node.name for peer in service.group.peers],
        mtbf=MTBF, mttr=MTTR, until=system.env.now + RUN_SECONDS,
    )
    from repro.soap import SoapClient

    clients = {}

    def factory(node, sequence):
        if node.name not in clients:
            clients[node.name] = SoapClient(node, default_timeout=CALL_TIMEOUT)
        return clients[node.name].call(
            service.address, service.path, "StudentInformation",
            {"ID": f"S{sequence % 200 + 1:05d}"}, timeout=CALL_TIMEOUT,
        )

    return _probe_run(system, factory)


def measure_client_side(seed: int) -> float:
    system = WhisperSystem(ScenarioConfig(seed=seed))
    replicated = ReplicatedPlainService(
        system, "StudentManagement",
        [student_lookup_operational(student_database()) for _ in range(REPLICAS)],
    )
    system.settle(2.0)
    system.failures.churn(
        [host.name for host in replicated.hosts()],
        mtbf=MTBF, mttr=MTTR, until=system.env.now + RUN_SECONDS,
    )
    stubs = {}

    def factory(node, sequence):
        if node.name not in stubs:
            stubs[node.name] = FailoverSoapClient(
                node, replicated.endpoints, replicated.path,
                per_endpoint_timeout=CALL_TIMEOUT / REPLICAS,
            )
        return stubs[node.name].call(
            "StudentInformation", {"ID": f"S{sequence % 200 + 1:05d}"},
        )

    return _probe_run(system, factory)


@pytest.mark.paper
def test_whisper_matches_client_side_availability_transparently(benchmark, show):
    def run():
        whisper = sum(measure_whisper(seed) for seed in SEEDS) / len(SEEDS)
        client_side = sum(measure_client_side(seed) for seed in SEEDS) / len(SEEDS)
        return whisper, client_side

    whisper, client_side = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        ["approach", "availability", "client must know"],
        [
            ["whisper (server-side)", whisper, "1 service URL"],
            ["client-side failover [3]", client_side, f"{REPLICAS} replica URLs"],
        ],
        title=(
            f"Ablation E — fault-tolerance approach under churn "
            f"(x{REPLICAS}, MTBF={MTBF:.0f}s)"
        ),
    ))
    # Both approaches mask most churn...
    assert whisper > 0.80
    assert client_side > 0.80
    # ...and land in the same ballpark (client-side failover recovers a bit
    # faster: one short timeout vs. detection + election).
    assert abs(whisper - client_side) < 0.15
