"""Ablation F — maintenance traffic vs. recovery speed (DESIGN.md #4).

Figure 4's linear message growth is mostly *maintenance*: heartbeats,
membership renewals, lease renewals.  That traffic buys failure-detection
speed.  This bench sweeps the heartbeat interval and reports both sides of
the trade in one table: steady-state messages per second per peer, and the
worst-case failover RTT — making the knob's cost/benefit explicit.
"""

from __future__ import annotations

import pytest

from repro.bench import format_sweep, run_sweep
from repro.core import ScenarioConfig, WhisperSystem

REPLICAS = 4
WINDOW = 20.0


def measure(heartbeat_interval: float) -> dict:
    # Steady-state maintenance traffic.
    config = ScenarioConfig(
        seed=19, heartbeat_interval=heartbeat_interval, replicas=REPLICAS
    )
    system = WhisperSystem(config)
    service = system.deploy_student_service()
    system.settle(8.0)
    system.reset_counters()
    system.run_until(system.env.now + WINDOW)
    messages_per_second_per_peer = system.trace.sent_total / WINDOW / REPLICAS

    # Failover RTT under the same setting.
    system2 = WhisperSystem(config)
    # Slow detection settings need a deeper retry budget to ride out the
    # longer failover window.
    service2 = system2.deploy_student_service(config.replace(max_attempts=24))
    system2.settle(8.0)
    node, soap = system2.add_client("tradeoff-client")
    latencies = []

    def loop():
        for index in range(4):
            started = system2.env.now
            yield from soap.call(
                service2.address, service2.path, "StudentInformation",
                {"ID": f"S{index + 1:05d}"}, timeout=120.0,
            )
            latencies.append(system2.env.now - started)
            yield system2.env.timeout(0.5)

    victim = service2.group.coordinator_peer()
    system2.failures.crash_at(system2.env.now + 0.7, victim.node.name)
    system2.env.run(until=node.spawn(loop()))

    return {
        "msg/s/peer": messages_per_second_per_peer,
        "failover rtt (s)": max(latencies),
    }


@pytest.mark.paper
def test_planned_vs_unplanned_failover(benchmark, show):
    """Ablation G — graceful handoff vs. crash failover.

    A coordinator that *announces* its departure (planned maintenance)
    hands off on election timescales; a crashed one costs the full
    detection period first.  The gap is the price of silence — the §1
    'system failure' class in numbers.
    """

    def measure(graceful: bool) -> float:
        system = WhisperSystem(
            ScenarioConfig(seed=29, heartbeat_interval=1.0, replicas=REPLICAS)
        )
        service = system.deploy_student_service()
        system.settle(8.0)
        node, soap = system.add_client("handoff-client")

        def one_call(student):
            yield from soap.call(
                service.address, service.path, "StudentInformation",
                {"ID": student}, timeout=120.0,
            )

        system.env.run(until=node.spawn(one_call("S00001")))
        victim = service.group.coordinator_peer()
        if graceful:
            victim.shutdown()
        else:
            victim.node.crash()
        started = system.env.now
        system.env.run(until=node.spawn(one_call("S00002")))
        return system.env.now - started

    def run():
        return {"graceful (s)": measure(True), "crash (s)": measure(False)}

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.bench import format_table

    show(format_table(
        ["departure", "next-request RTT (s)"],
        [["graceful shutdown", outcome["graceful (s)"]],
         ["crash", outcome["crash (s)"]]],
        title="Ablation G — planned vs. unplanned coordinator departure",
    ))
    assert outcome["graceful (s)"] < 3.0
    assert outcome["crash (s)"] > outcome["graceful (s)"] * 2


@pytest.mark.paper
def test_maintenance_traffic_buys_recovery_speed(benchmark, show):
    sweep = benchmark.pedantic(
        lambda: run_sweep(
            "maintenance trade-off", "heartbeat interval (s)",
            [0.25, 0.5, 1.0, 2.0, 4.0], measure,
        ),
        rounds=1,
        iterations=1,
    )
    show(format_sweep(
        sweep,
        title="Ablation F — maintenance overhead vs. failover speed "
              f"({REPLICAS} b-peers)",
    ))
    traffic = [float(v) for v in sweep.series("msg/s/peer")]
    failover = [float(v) for v in sweep.series("failover rtt (s)")]
    # Faster heartbeats: more traffic...
    assert traffic[0] > traffic[-1] * 1.5
    # ...but much faster recovery.
    assert failover[0] < failover[-1] / 3
    # Both monotone across the sweep (small tolerance for renewals noise).
    assert all(a >= b * 0.85 for a, b in zip(traffic, traffic[1:]))
    assert all(a <= b * 1.15 for a, b in zip(failover, failover[1:]))
