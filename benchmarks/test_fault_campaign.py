"""Fault campaign — availability vs. MTBF under a seeded random schedule.

Where Ablation B fixes the failure rate and sweeps *replication*, this
bench fixes replication (x4) and sweeps the *mean time between failures*:
rarer faults leave more of the timeline outside detection + re-election
windows, so availability climbs monotonically with MTBF.

Every campaign also audits the recovery layer's safety invariants
(strict crash/restart alternation, one coordinator per epoch, no stale
result delivered) — a scheduling or fencing regression fails here even if
the availability numbers still look plausible.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.core import FaultCampaign

MTBFS = (10.0, 25.0, 50.0)
MTTR = 10.0
SEEDS = (7, 11, 42)
DURATION = 90.0


def run_experiment():
    rows = []
    for mtbf in MTBFS:
        availabilities = []
        violations = []
        for seed in SEEDS:
            report = FaultCampaign(
                seed=seed, duration=DURATION, replicas=4, mtbf=mtbf, mttr=MTTR
            ).run()
            availabilities.append(report.availability)
            violations.extend(report.violations)
        rows.append(
            (mtbf, sum(availabilities) / len(availabilities), violations)
        )
    return rows


@pytest.mark.paper
def test_availability_vs_mtbf(benchmark, show):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(format_table(
        ["MTBF (s)", "availability", "violations"],
        [[mtbf, availability, len(violations)]
         for mtbf, availability, violations in rows],
        title=(
            f"Fault campaign — availability vs. MTBF "
            f"(x4 replicas, MTTR={MTTR:.0f}s, {DURATION:.0f}s, "
            f"seeds {SEEDS})"
        ),
    ))
    for mtbf, _availability, violations in rows:
        assert not violations, f"MTBF={mtbf}: {violations}"
    availability = {mtbf: value for mtbf, value, _ in rows}
    # Rarer faults → higher availability, monotone within noise.
    assert availability[50.0] > availability[10.0]
    assert availability[25.0] >= availability[10.0] - 0.02
    assert availability[50.0] >= availability[25.0] - 0.02
    # Even the harshest point keeps the service mostly up; the mildest
    # masks nearly everything.
    assert availability[10.0] > 0.6
    assert availability[50.0] > 0.9
