"""Ablation D — QoS-based peer selection (§2.4).

"Each peer can have different quality aspect and hence selection involves
locating the peer that provides the best quality criteria match."  We give
the proxy a choice between two semantically identical b-peer groups with
very different service characteristics and compare QoS-guided selection
(after a learning phase) against the information-free baseline, plus the
pure-selector comparison on synthetic profiles.
"""

from __future__ import annotations

import pytest

from repro.backend import ServiceImplementation, student_database
from repro.bench import format_table, summarize
from repro.core import ScenarioConfig, WhisperSystem
from repro.qos import QosMetrics, QosSelector, QosWeights, RandomSelector


def _lookup_impl(service_time: float, name: str) -> ServiceImplementation:
    database = student_database()

    def handler(arguments):
        row = database.read("students", arguments["ID"])
        return {
            "studentId": row["student_id"],
            "name": row["name"],
            "degree": row["degree"],
            "email": row["email"],
            "enrolledCourses": row["enrolled_courses"],
            "source": name,
        }

    return ServiceImplementation(
        name=name, handler=handler, backend=database, service_time=service_time
    )


def run_selector_comparison():
    """Synthetic peer population: expected response time under each policy."""
    rng_candidates = {
        f"peer{i}": QosMetrics(
            time=0.002 + 0.004 * (i % 5),
            cost=1.0,
            reliability=0.999 if i % 3 else 0.7,
        )
        for i in range(15)
    }

    def expected_time(metrics: QosMetrics) -> float:
        # A failed attempt costs a timeout + retry at the same peer.
        timeout_penalty = 0.5
        return metrics.time + (1 - metrics.reliability) * timeout_penalty

    qos = QosSelector(QosWeights(time=1, cost=0, reliability=2))
    qos_choice = qos.select(rng_candidates)
    qos_cost = expected_time(rng_candidates[qos_choice])

    import random

    baseline = RandomSelector(random.Random(3))
    baseline_costs = []
    for _ in range(200):
        choice = baseline.select(rng_candidates)
        baseline_costs.append(expected_time(rng_candidates[choice]))
    return {
        "qos_expected_time": qos_cost,
        "random_expected_time": sum(baseline_costs) / len(baseline_costs),
    }


def run_system_level():
    """Two semantically identical groups, one fast and one slow: after the
    proxy's QoS profiles warm up, invocations should favour the fast one."""
    system = WhisperSystem(ScenarioConfig(seed=23))
    fast = system.deploy_service(
        _student_wsdl("StudentManagement"),
        [_lookup_impl(0.001, "fast-cluster") for _ in range(2)],
        group_name="grp-fast",
        web_host="web0",
    )
    # A second group advertising the *same semantics*.
    slow_impls = [_lookup_impl(0.05, "slow-cluster") for _ in range(2)]
    from repro.core.bpeer_group import deploy_bpeer_group

    annotation = fast.sws.annotation("StudentInformation")
    deploy_bpeer_group(
        system.network,
        system.rendezvous,
        group_name="grp-slow",
        annotation=annotation,
        implementations=slow_impls,
        ontology_uri=system.ontology.uri,
    )
    system.settle(8.0)

    node, soap = system.add_client("qos-client")
    sources = []
    latencies = []

    def loop():
        for index in range(30):
            started = system.env.now
            value = yield from soap.call(
                fast.address, fast.path, "StudentInformation",
                {"ID": f"S{index + 1:05d}"}, timeout=30.0,
            )
            sources.append(value["source"])
            latencies.append(system.env.now - started)
            yield system.env.timeout(0.05)

    system.env.run(until=node.spawn(loop()))
    return sources, latencies


def _student_wsdl(name):
    from repro.wsdl import student_management_wsdl

    definitions = student_management_wsdl()
    definitions.name = name
    return definitions


@pytest.mark.paper
def test_qos_selector_beats_random(benchmark, show):
    results = benchmark.pedantic(run_selector_comparison, rounds=1, iterations=1)
    show(format_table(
        ["policy", "expected response time (s)"],
        [
            ["QoS (SAW)", results["qos_expected_time"]],
            ["random", results["random_expected_time"]],
        ],
        title="Ablation D — selection policy on a heterogeneous peer pool",
    ))
    assert results["qos_expected_time"] < results["random_expected_time"] * 0.5


@pytest.mark.paper
def test_proxy_prefers_better_group_end_to_end(benchmark, show):
    sources, latencies = benchmark.pedantic(run_system_level, rounds=1, iterations=1)
    summary = summarize([l * 1000 for l in latencies])
    fast_share = sources.count("fast-cluster") / len(sources)
    show(format_table(
        ["metric", "value"],
        [
            ["requests", len(sources)],
            ["served by fast cluster", fast_share],
            ["p50 latency (ms)", summary.p50],
        ],
        title="Ablation D — end-to-end group choice between equal semantics",
    ))
    # Both groups match semantically; the proxy must consistently use one
    # group (sticky binding) and the steady-state latency reflects it.
    assert len(set(sources)) >= 1
    assert summary.p50 < 120.0
