"""Exactly-once under failover — duplicate rate and journal overhead.

Two claims for the dedup-journal layer, both against the same seeded
fault campaigns the recovery benchmarks use:

* **Safety**: with the journal on, a mutating workload driven through
  churn + partitions + message loss applies every invocation at most
  once; the identical schedule with the journal off double-applies at
  least one retried call — the at-least-once baseline that proves the
  audit has teeth (and that the hazard is real, not hypothetical).
* **Cost**: the journal's message overhead on the paper's Figure-4
  configuration (read-only student lookups, n=8 b-peers) stays within
  15% of the journal-less baseline — result replication is piggybacked
  or gated on mutating operations, so the read-path message budget of
  §5 is preserved.
"""

from __future__ import annotations

import pytest

from repro.bench import ClosedLoopWorkload, format_table
from repro.core import FaultCampaign, ScenarioConfig, WhisperSystem

SEEDS = (7, 11, 42)
DURATION = 60.0
LOSS_RATE = 0.01

FIG4_REPLICAS = 8
MEASUREMENT_WINDOW = 20.0
OVERHEAD_BUDGET = 0.15


def _campaign(seed: int, dedup_journal: bool) -> "FaultCampaign":
    return FaultCampaign(
        seed=seed,
        duration=DURATION,
        replicas=4,
        workload="enroll",
        loss_rate=LOSS_RATE,
        dedup_journal=dedup_journal,
    )


def run_duplicate_rate_experiment():
    rows = []
    for dedup_journal in (True, False):
        for seed in SEEDS:
            report = _campaign(seed, dedup_journal).run()
            rows.append(report)
    return rows


@pytest.mark.paper
def test_exactly_once_vs_at_least_once_duplicates(benchmark, show):
    reports = benchmark.pedantic(
        run_duplicate_rate_experiment, rounds=1, iterations=1
    )
    show(format_table(
        ["seed", "journal", "avail", "effects", "invocations", "dup'd",
         "deduped", "suppressed", "p99 (ms)"],
        [[r.seed, "on" if r.dedup_journal else "off",
          round(r.availability, 4), r.effects_applied, r.distinct_effects,
          len(r.double_applied), r.probes_deduped, r.duplicates_suppressed,
          round(r.probe_p99 * 1000, 1) if r.probe_p99 else None]
         for r in reports],
        title=(
            f"Exactly-once under failover — enroll workload, churn + "
            f"partitions + {LOSS_RATE:.0%} loss, {DURATION:.0f}s, seeds {SEEDS}"
        ),
    ))
    journal_on = [r for r in reports if r.dedup_journal]
    baseline = [r for r in reports if not r.dedup_journal]

    # Safety: the journal keeps every seed free of double-application,
    # and every campaign invariant (fencing, alternation, convergence)
    # still holds with the journal in the loop.
    for report in journal_on:
        assert not report.double_applied, (
            f"seed {report.seed}: {report.double_applied}"
        )
        assert report.ok, f"seed {report.seed}: {report.violations}"
    # The machinery demonstrably engaged: retries were answered from the
    # journal somewhere across the sweep.
    engaged = sum(r.probes_deduped + r.duplicates_suppressed + r.journal_hits
                  for r in journal_on)
    assert engaged >= 1, "no retry ever hit the journal — schedule too tame"

    # Teeth: the identical schedules without the journal double-apply.
    double_applied = sum(len(r.double_applied) for r in baseline)
    assert double_applied >= 1, (
        "at-least-once baseline produced no duplicates — the safety claim "
        "above would be vacuous"
    )
    assert all(r.duplicate_rate == 0.0 for r in journal_on)


def measure_fig4_messages(dedup_journal: bool) -> dict:
    system = WhisperSystem(ScenarioConfig(
        seed=42, replicas=FIG4_REPLICAS, dedup_journal=dedup_journal,
    ))
    service = system.deploy_student_service()
    system.settle(6.0)

    system.reset_counters()
    workload = ClosedLoopWorkload(
        system, service.address, service.path, "StudentInformation",
        clients=2, think_time=0.1, requests_per_client=10,
    )
    result = workload.run()
    assert result.availability == 1.0
    # Same accounting as Figure 4: the client workload plus a fixed
    # steady-state window, every message on the network counted.
    system.run_until(system.env.now + MEASUREMENT_WINDOW)
    return {"messages": system.trace.sent_total}


@pytest.mark.paper
def test_journal_message_overhead_within_budget(benchmark, show):
    counts = benchmark.pedantic(
        lambda: {on: measure_fig4_messages(on)["messages"]
                 for on in (False, True)},
        rounds=1,
        iterations=1,
    )
    overhead = counts[True] / counts[False] - 1.0
    show(format_table(
        ["dedup journal", "messages"],
        [["off", counts[False]], ["on", counts[True]]],
        title=(
            f"Journal message overhead — Figure-4 configuration "
            f"(n={FIG4_REPLICAS} b-peers, read-only lookups, "
            f"{MEASUREMENT_WINDOW:.0f}s window): {overhead:+.2%}"
        ),
    ))
    # Replication is piggybacked on existing report traffic and eagerly
    # broadcast only for *mutating* operations, so the read-only
    # Figure-4 message budget must be essentially untouched.
    assert abs(overhead) <= OVERHEAD_BUDGET, (
        f"journal overhead {overhead:+.2%} exceeds {OVERHEAD_BUDGET:.0%}"
    )
