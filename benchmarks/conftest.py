"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper (see DESIGN.md's
per-experiment index), prints the rows/series, and asserts the paper's
*qualitative shape* — who wins, by roughly what factor, where the knees
are — since absolute numbers depend on the (simulated) testbed.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper: benchmark reproducing a specific paper result"
    )


@pytest.fixture
def show():
    """Print a benchmark artefact under -s, collecting it either way."""
    artefacts = []

    def _show(text: str) -> str:
        artefacts.append(text)
        print("\n" + text)
        return text

    return _show
