"""§5 RTT results, worst case.

"Nevertheless, in the worst case the RTT can take several seconds.  This
low performance is caused by two factors.  On the one hand, in case of
coordinator failure, the time needed to elect a new coordinator is
considerably high.  On the other hand, the time to make a new binding
between the SWS-proxy and the elected b-peer is also high."

We crash the coordinator mid-workload and measure the affected request's
RTT, then sweep the failure-detection period to show exactly how those two
factors (detection+election vs. re-binding) compose into the multi-second
tail.
"""

from __future__ import annotations

import pytest

from repro.bench import format_sweep, format_table, run_sweep
from repro.core import ScenarioConfig, WhisperSystem
from repro.soap import SoapClient


def _run_failover(heartbeat_interval: float, miss_threshold: int = 3, seed: int = 3):
    system = WhisperSystem(
        ScenarioConfig(
            seed=seed,
            heartbeat_interval=heartbeat_interval,
            miss_threshold=miss_threshold,
            replicas=4,
        )
    )
    service = system.deploy_student_service()
    system.settle(8.0)
    node, soap = system.add_client("failover-client")
    latencies = []

    def client_loop():
        for index in range(8):
            started = system.env.now
            yield from soap.call(
                service.address, service.path, "StudentInformation",
                {"ID": f"S{index + 1:05d}"}, timeout=120.0,
            )
            latencies.append(system.env.now - started)
            yield system.env.timeout(0.5)

    # Crash the coordinator shortly after the workload starts.
    victim = service.group.coordinator_peer()
    system.failures.crash_at(system.env.now + 1.2, victim.node.name)
    system.env.run(until=node.spawn(client_loop()))
    return latencies, service.proxy.stats


@pytest.mark.paper
def test_worst_case_rtt_is_seconds(benchmark, show):
    latencies, stats = benchmark.pedantic(
        lambda: _run_failover(heartbeat_interval=1.0), rounds=1, iterations=1
    )
    rows = [[index, latency * 1000] for index, latency in enumerate(latencies)]
    show(format_table(
        ["request", "rtt (ms)"], rows,
        title="§5 worst case — coordinator crashed after request 2",
    ))
    worst = max(latencies)
    common = sorted(latencies)[len(latencies) // 2]
    # The paper's claim: common case sub-10ms-ish, worst case *seconds*.
    assert common < 0.05
    assert 1.0 < worst < 60.0, "failover RTT should be seconds, not ms"
    assert worst / common > 50, "bimodal: failover dwarfs the common case"
    assert stats.rebinds >= 1, "the proxy must have re-bound (§5's 2nd factor)"
    assert stats.failover_durations, "failover must be recorded"


@pytest.mark.paper
def test_failover_rtt_tracks_detection_period(benchmark, show):
    """Ablation (DESIGN.md #4): the dominant term of the worst-case RTT is
    the failure-detection period (interval × misses); halving the heartbeat
    interval roughly halves the failover RTT."""

    def measure(interval: float) -> dict:
        latencies, _stats = _run_failover(heartbeat_interval=interval)
        return {"worst_rtt_s": max(latencies)}

    sweep = benchmark.pedantic(
        lambda: run_sweep(
            "failover vs detection period", "heartbeat interval (s)",
            [0.25, 0.5, 1.0, 2.0], measure,
        ),
        rounds=1,
        iterations=1,
    )
    show(format_sweep(sweep, title="Worst-case RTT vs. failure-detection period"))
    worst = [float(v) for v in sweep.series("worst_rtt_s")]
    # Monotone: slower detection -> slower failover.
    assert all(a <= b * 1.25 for a, b in zip(worst, worst[1:])), worst
    assert worst[-1] > worst[0] * 2, "4x detection period should clearly slow failover"


@pytest.mark.paper
def test_failover_decomposition(benchmark, show):
    """Break the worst-case RTT into the paper's two factors: the time to
    elect a new coordinator vs. the time to re-bind the proxy."""

    def measure() -> dict:
        system = WhisperSystem(
            ScenarioConfig(seed=5, heartbeat_interval=1.0, replicas=4)
        )
        service = system.deploy_student_service()
        system.settle(8.0)
        node, soap = system.add_client("decomp-client")

        def one_call(student):
            yield from soap.call(
                service.address, service.path, "StudentInformation",
                {"ID": student}, timeout=120.0,
            )

        system.env.run(until=node.spawn(one_call("S00001")))  # bind
        crash_at = system.env.now
        victim = service.group.crash_coordinator()
        assert victim is not None

        # Election completion: a new coordinator emerges.
        while service.group.coordinator_peer() is None:
            system.run_until(system.env.now + 0.25)
        elected_at = system.env.now

        started = system.env.now
        system.env.run(until=node.spawn(one_call("S00002")))
        rebound_at = system.env.now
        return {
            "detect+elect (s)": elected_at - crash_at,
            "re-bind+retry (s)": rebound_at - started,
        }

    decomposition = benchmark.pedantic(measure, rounds=1, iterations=1)
    show(format_table(
        ["factor", "seconds"],
        [[k, v] for k, v in decomposition.items()],
        title="§5 worst-case decomposition (election vs re-binding)",
    ))
    assert decomposition["detect+elect (s)"] > 1.0
    assert decomposition["re-bind+retry (s)"] < decomposition["detect+elect (s)"]
