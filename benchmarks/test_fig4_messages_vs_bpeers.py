"""Figure 4 — "Variation of the number of messages exchanged as the
number of B-peers increases".

The paper's headline benchmark: on the 9-machine testbed, adding b-peers
to the configuration "results in a predictable linear increase in the
number of messages exchanged" (§5).  We deploy the student-management
service with 2..16 b-peers, run a fixed client workload plus a fixed
steady-state window, and count every message on the network (heartbeats,
membership renewals, lease renewals, elections, requests).

Reproduced shape: message count grows linearly in the number of b-peers
(least-squares r² ≳ 0.99).
"""

from __future__ import annotations

import pytest

from repro.bench import (
    ClosedLoopWorkload,
    ascii_plot,
    format_sweep,
    linear_fit,
    run_sweep,
)
from repro.core import ScenarioConfig, WhisperSystem

#: The paper's testbed had 9 machines; we sweep past it to show the trend.
BPEER_COUNTS = [2, 4, 6, 8, 10, 12, 16]
MEASUREMENT_WINDOW = 20.0
SEED = 42


def measure_messages(replicas: int) -> dict:
    system = WhisperSystem(ScenarioConfig(seed=SEED, replicas=replicas))
    service = system.deploy_student_service()
    system.settle(6.0)

    workload = ClosedLoopWorkload(
        system, service.address, service.path, "StudentInformation",
        clients=2, think_time=0.1, requests_per_client=10,
    )
    result = workload.run()
    assert result.availability == 1.0

    # Let any startup-election tail quiesce, then count every message for
    # a fixed steady-state window.
    system.run_until(system.env.now + 5.0)
    system.reset_counters()
    system.run_until(system.env.now + MEASUREMENT_WINDOW)
    breakdown = system.trace.category_breakdown()
    return {
        "messages": system.trace.sent_total,
        "heartbeat": breakdown.get("heartbeat", 0),
        "membership": breakdown.get("group-renew", 0)
        + breakdown.get("resolver-query", 0)
        + breakdown.get("resolver-response", 0),
        "lease": breakdown.get("rdv-lease", 0),
    }


@pytest.mark.paper
def test_figure4_messages_grow_linearly(benchmark, show):
    sweep = benchmark.pedantic(
        lambda: run_sweep("Figure 4", "b-peers", BPEER_COUNTS, measure_messages),
        rounds=1,
        iterations=1,
    )
    show(format_sweep(
        sweep,
        title=(
            f"Figure 4 — messages exchanged in a {MEASUREMENT_WINDOW:.0f}s "
            "steady-state window vs. number of b-peers"
        ),
    ))
    xs = [float(n) for n in sweep.parameters()]
    ys = [float(v) for v in sweep.series("messages")]
    show(ascii_plot(xs, ys, x_label="b-peers", y_label="messages"))

    fit = linear_fit(xs, ys)
    show(
        f"linear fit: messages = {fit.slope:.1f} * peers + {fit.intercept:.1f}"
        f"  (r² = {fit.r_squared:.5f})"
    )
    # The paper's claim: good linear horizontal scalability.
    assert fit.r_squared > 0.98, "message growth should be linear in b-peers"
    assert fit.slope > 0, "more b-peers must mean more messages"
    # Monotone non-decreasing series.
    assert all(a <= b for a, b in zip(ys, ys[1:]))
    # No quadratic blow-up: doubling peers should not quadruple messages.
    ratio = ys[-1] / ys[len(ys) // 2]
    peers_ratio = xs[-1] / xs[len(xs) // 2]
    assert ratio < peers_ratio * 1.5


@pytest.mark.paper
def test_figure4_per_category_components_linear(benchmark, show):
    """The linearity decomposes: heartbeats and membership maintenance both
    scale linearly with group size (the mechanism behind Figure 4)."""
    sweep = benchmark.pedantic(
        lambda: run_sweep(
            "Figure 4 components", "b-peers", [2, 6, 10, 16], measure_messages
        ),
        rounds=1,
        iterations=1,
    )
    show(format_sweep(sweep, title="Figure 4 — per-protocol components"))
    xs = [float(n) for n in sweep.parameters()]
    for column in ("heartbeat", "membership"):
        ys = [float(v) for v in sweep.series(column)]
        fit = linear_fit(xs, ys)
        assert fit.r_squared > 0.95, f"{column} traffic should be linear"
        assert fit.slope > 0
