"""Ablation B — availability vs. replication degree (§4.1).

"Redundancy has long been used as a means of increasing the availability
of distributed systems" — this bench quantifies it for Whisper.  Hosts
churn (exponential crash/restart); clients issue a steady stream of
requests; availability = fraction answered successfully.

Baselines:

* 1 Whisper replica — redundancy off, failover impossible;
* the plain Web service of §1 (implementation on the web host, no P2P) —
  what "current Web service specifications" give you.

Shape: availability climbs monotonically with the replica count and beats
both baselines decisively.
"""

from __future__ import annotations

import pytest

from repro.backend import student_database, student_lookup_operational
from repro.bench import format_table
from repro.core import ScenarioConfig, WhisperSystem
from repro.simnet.events import Interrupt
from repro.soap import RequestTimeout, SoapClient, SoapFault

RUN_SECONDS = 180.0
REQUEST_PERIOD = 0.4
MTBF = 25.0
MTTR = 20.0
CALL_TIMEOUT = 2.0


def _steady_client(system, address, path, operation, results):
    """Open-loop probes at a fixed period: availability is sampled in
    *time*, so slow failures cannot mask downtime."""
    node, soap = system.add_client("avail-client", timeout=CALL_TIMEOUT)
    outstanding = {"count": 0}
    drained = {"event": None}

    def one_probe(sequence):
        try:
            yield from soap.call(
                address, path, operation,
                {"ID": f"S{sequence % 200 + 1:05d}"}, timeout=CALL_TIMEOUT,
            )
        except (SoapFault, RequestTimeout):
            results["failed"] += 1
        except Interrupt:
            return
        else:
            results["ok"] += 1
        finally:
            outstanding["count"] -= 1
            if outstanding["count"] == 0 and drained["event"] is not None:
                if not drained["event"].triggered:
                    drained["event"].succeed()

    def injector():
        clock = 0.0
        sequence = 0
        while clock < RUN_SECONDS:
            outstanding["count"] += 1
            node.spawn(one_probe(sequence), name=f"probe-{sequence}")
            sequence += 1
            yield system.env.timeout(REQUEST_PERIOD)
            clock += REQUEST_PERIOD

    system.env.run(until=node.spawn(injector()))
    while outstanding["count"] > 0:
        drained["event"] = system.env.event()
        system.env.run(until=drained["event"])


def measure_whisper(replicas: int, seed: int) -> float:
    system = WhisperSystem(
        ScenarioConfig(
            seed=seed, heartbeat_interval=0.5, miss_threshold=2, replicas=replicas
        )
    )
    service = system.deploy_student_service()
    system.settle(6.0)
    hosts = [peer.node.name for peer in service.group.peers]
    system.failures.churn(
        hosts, mtbf=MTBF, mttr=MTTR, until=system.env.now + RUN_SECONDS
    )
    results = {"ok": 0, "failed": 0}
    _steady_client(
        system, service.address, service.path, "StudentInformation", results
    )
    total = results["ok"] + results["failed"]
    return results["ok"] / total if total else 0.0


def measure_plain(seed: int) -> float:
    """The no-Whisper baseline: one host, no redundancy (§1)."""
    system = WhisperSystem(ScenarioConfig(seed=seed))
    implementation = student_lookup_operational(student_database())
    plain = system.deploy_plain_service("StudentManagement", implementation)
    system.settle(2.0)
    system.failures.churn(
        [plain.node.name], mtbf=MTBF, mttr=MTTR, until=system.env.now + RUN_SECONDS
    )
    results = {"ok": 0, "failed": 0}
    _steady_client(system, plain.address, plain.path, "StudentInformation", results)
    total = results["ok"] + results["failed"]
    return results["ok"] / total if total else 0.0


SEEDS = (101, 202, 303)


def run_experiment():
    rows = []
    plain = sum(measure_plain(seed) for seed in SEEDS) / len(SEEDS)
    rows.append(("plain web service", plain))
    for replicas in (1, 2, 4, 6):
        availability = sum(
            measure_whisper(replicas, seed) for seed in SEEDS
        ) / len(SEEDS)
        rows.append((f"whisper x{replicas}", availability))
    return rows


@pytest.mark.paper
def test_availability_grows_with_replication(benchmark, show):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(format_table(
        ["configuration", "availability"],
        [[name, value] for name, value in rows],
        title=(
            f"Ablation B — availability under churn "
            f"(MTBF={MTBF:.0f}s, MTTR={MTTR:.0f}s, {RUN_SECONDS:.0f}s run)"
        ),
    ))
    availability = dict(rows)
    # Redundancy pays: monotone (within noise) and saturating.
    assert availability["whisper x2"] > availability["whisper x1"]
    assert availability["whisper x4"] >= availability["whisper x2"] - 0.02
    assert availability["whisper x6"] >= availability["whisper x4"] - 0.02
    # Four replicas mask most churn (residual = failover windows).
    assert availability["whisper x4"] > 0.85
    # A single Whisper replica cannot beat physics: comparable to plain.
    assert abs(availability["whisper x1"] - availability["plain web service"]) < 0.25
    # The headline: replication cuts unavailability by well over 2x vs the
    # §1 baseline.
    unavailable_plain = 1.0 - availability["plain web service"]
    unavailable_x4 = 1.0 - availability["whisper x4"]
    assert unavailable_plain > 2.0 * unavailable_x4
    assert availability["whisper x4"] > availability["whisper x1"] + 0.15
