"""§5 narrative — "the proposed solution was able to scale to meet desired
throughput and latency requirements".

Two sweeps:

* offered load swept at fixed replication — throughput follows the offered
  load until saturation while the common-case latency stays bounded;
* b-peers swept at fixed offered load with load-sharing enabled (§4.1:
  redundancy "makes possible to also address scalability requirements
  through load-sharing") — more replicas means more capacity.
"""

from __future__ import annotations

import pytest

from repro.bench import PoissonWorkload, format_sweep, run_sweep, summarize
from repro.core import ScenarioConfig, WhisperSystem

DURATION = 8.0


def _deploy(replicas: int, load_sharing: bool, seed: int = 17) -> tuple:
    system = WhisperSystem(
        ScenarioConfig(seed=seed, load_sharing=load_sharing, replicas=replicas)
    )
    service = system.deploy_student_service()
    system.settle(6.0)
    return system, service


def measure_offered_load(rate: float) -> dict:
    system, service = _deploy(replicas=4, load_sharing=True)
    workload = PoissonWorkload(
        system, service.address, service.path, "StudentInformation",
        rate=rate, duration=DURATION,
    )
    result = workload.run()
    latency = summarize([l * 1000 for l in result.latencies])
    return {
        "completed": result.successes,
        "throughput (req/s)": result.throughput,
        "p50 (ms)": latency.p50,
        "p99 (ms)": latency.p99,
        "availability": result.availability,
    }


def measure_replicas(replicas: int) -> dict:
    system, service = _deploy(replicas=replicas, load_sharing=True)
    workload = PoissonWorkload(
        system, service.address, service.path, "StudentInformation",
        rate=120.0, duration=DURATION,
    )
    result = workload.run()
    latency = summarize([l * 1000 for l in result.latencies])
    executed = [peer.requests_executed for peer in service.group.peers]
    return {
        "throughput (req/s)": result.throughput,
        "p99 (ms)": latency.p99,
        "busiest replica": max(executed),
        "share of busiest": max(executed) / max(1, sum(executed)),
    }


@pytest.mark.paper
def test_throughput_tracks_offered_load(benchmark, show):
    sweep = benchmark.pedantic(
        lambda: run_sweep(
            "throughput vs offered load", "offered (req/s)",
            [25, 50, 100, 200], measure_offered_load,
        ),
        rounds=1,
        iterations=1,
    )
    show(format_sweep(sweep, title="Throughput & latency under offered load"))
    offered = [float(v) for v in sweep.parameters()]
    achieved = [float(v) for v in sweep.series("throughput (req/s)")]
    # Below saturation the system keeps up (within Poisson noise).
    for target, actual in zip(offered, achieved):
        assert actual > target * 0.8, (target, actual)
    # Latency stays bounded at every load point.
    assert all(float(v) < 100.0 for v in sweep.series("p50 (ms)"))
    assert all(float(v) == 1.0 for v in sweep.series("availability"))


@pytest.mark.paper
def test_load_sharing_spreads_work_across_replicas(benchmark, show):
    sweep = benchmark.pedantic(
        lambda: run_sweep(
            "capacity vs replicas", "b-peers", [1, 2, 4, 8], measure_replicas
        ),
        rounds=1,
        iterations=1,
    )
    show(format_sweep(sweep, title="Load sharing across b-peers (§4.1)"))
    shares = [float(v) for v in sweep.series("share of busiest")]
    # With one replica it does everything; with 8 it does ~1/8.
    assert shares[0] == 1.0
    assert shares[-1] < 0.3
    # The busiest replica's absolute load shrinks as replicas grow.
    busiest = [float(v) for v in sweep.series("busiest replica")]
    assert busiest[-1] < busiest[0] * 0.5


@pytest.mark.paper
def test_coordinator_only_vs_load_sharing(benchmark, show):
    """Ablation (DESIGN.md #3): without load sharing the coordinator
    serialises every request; with it, capacity scales."""

    def measure(load_sharing: bool) -> dict:
        system, service = _deploy(replicas=4, load_sharing=load_sharing)
        workload = PoissonWorkload(
            system, service.address, service.path, "StudentInformation",
            rate=250.0, duration=DURATION,
        )
        result = workload.run()
        latency = summarize([l * 1000 for l in result.latencies])
        return {"throughput (req/s)": result.throughput, "p99 (ms)": latency.p99}

    rows = benchmark.pedantic(
        lambda: {mode: measure(mode) for mode in (False, True)},
        rounds=1,
        iterations=1,
    )
    from repro.bench import format_table

    show(format_table(
        ["mode", "throughput (req/s)", "p99 (ms)"],
        [
            ["coordinator-only", rows[False]["throughput (req/s)"], rows[False]["p99 (ms)"]],
            ["load-sharing", rows[True]["throughput (req/s)"], rows[True]["p99 (ms)"]],
        ],
        title="Dispatch policy ablation at 250 req/s offered",
    ))
    # At this load the single coordinator (2ms service time -> 500/s hard
    # cap, but queueing grows) should show clearly worse tail latency.
    assert rows[True]["p99 (ms)"] <= rows[False]["p99 (ms)"]
