"""Ablation C — Bully election cost (§4.2).

B-peers "implement the Bully algorithm to provide a fundamental mechanism
to enable a good fault-tolerance".  The algorithm's cost profile is
classic: O(n²) messages when the *lowest* surviving peer detects the
failure (every peer above it holds its own mini-election), O(n) when the
*highest* survivor initiates.  Election latency is governed by the answer
timeout, not group size.
"""

from __future__ import annotations

import pytest

from repro.bench import format_sweep, linear_fit, run_sweep
from repro.election import BullyElector
from repro.p2p import Peer, PeerGroupId
from repro.simnet import Environment, MessageTrace, Network, RngRegistry

GROUP_ID = PeerGroupId.from_name("bully-bench")


def _build_group(size: int, seed: int = 9):
    env = Environment()
    network = Network(env, trace=MessageTrace(), rng=RngRegistry(seed))
    rendezvous = Peer(network.add_host("rdv"), is_rendezvous=True)
    rendezvous.publish_self(remote=False)
    peers = []
    for index in range(size):
        peer = Peer(network.add_host(f"peer{index}"))
        peer.attach_to(rendezvous)
        peer.publish_self(remote=True)
        peer.groups.join(GROUP_ID, "bully-bench")
        peers.append(peer)
    env.run(until=2.0)
    electors = [BullyElector(peer.groups, GROUP_ID) for peer in peers]
    return env, network, peers, electors


def _election_messages(network) -> int:
    return network.trace.sent_by_category.get("election", 0)


def measure_election(size: int, initiator: str) -> dict:
    env, network, peers, electors = _build_group(size)
    ordered = sorted(range(size), key=lambda i: peers[i].peer_id.uuid_hex)
    index = ordered[0] if initiator == "lowest" else ordered[-1]
    network.trace.reset()
    start = env.now
    electors[index].start_election()
    env.run(until=env.now + 8.0)
    winner = peers[ordered[-1]].peer_id
    assert all(e.coordinator == winner for e in electors), "must converge"
    # Latency: when did the last elector learn the winner?  Approximate via
    # the winner's own completion plus propagation — measured through stats.
    return {
        "messages": _election_messages(network),
        "elections_started": sum(e.stats.elections_started for e in electors),
    }


@pytest.mark.paper
def test_lowest_initiator_message_cost_superlinear(benchmark, show):
    sweep = benchmark.pedantic(
        lambda: run_sweep(
            "bully worst case", "group size", [3, 5, 8, 12, 16],
            lambda n: measure_election(n, "lowest"),
        ),
        rounds=1,
        iterations=1,
    )
    show(format_sweep(sweep, title="Ablation C — Bully cost, lowest-peer initiator"))
    sizes = [float(n) for n in sweep.parameters()]
    messages = [float(v) for v in sweep.series("messages")]
    # Superlinear growth: per-peer message cost increases with size.
    per_peer_small = messages[0] / sizes[0]
    per_peer_large = messages[-1] / sizes[-1]
    assert per_peer_large > per_peer_small * 1.5
    # But bounded by the O(n²) envelope.
    assert messages[-1] < 3 * sizes[-1] ** 2


@pytest.mark.paper
def test_highest_initiator_message_cost_linear(benchmark, show):
    sweep = benchmark.pedantic(
        lambda: run_sweep(
            "bully best case", "group size", [3, 5, 8, 12, 16],
            lambda n: measure_election(n, "highest"),
        ),
        rounds=1,
        iterations=1,
    )
    show(format_sweep(sweep, title="Ablation C — Bully cost, highest-peer initiator"))
    sizes = [float(n) for n in sweep.parameters()]
    messages = [float(v) for v in sweep.series("messages")]
    fit = linear_fit(sizes, messages)
    assert fit.r_squared > 0.95, "best case should be linear (one broadcast)"
    # Exactly n-1 COORDINATOR messages expected.
    for size, count in zip(sizes, messages):
        assert count == size - 1


@pytest.mark.paper
def test_election_latency_dominated_by_timeouts(benchmark, show):
    """Time to elect after the coordinator is *removed* from views scales
    with the answer timeout, not the group size."""

    def measure(size: int) -> dict:
        env, network, peers, electors = _build_group(size)
        ordered = sorted(range(size), key=lambda i: peers[i].peer_id.uuid_hex)
        # Run a first election, then kill the winner.
        electors[ordered[0]].start_election()
        env.run(until=env.now + 8.0)
        victim = peers[ordered[-1]]
        victim.node.crash()
        for index, peer in enumerate(peers):
            if peer is not victim:
                peer.groups.remove_member(GROUP_ID, victim.peer_id)
                if electors[index].coordinator == victim.peer_id:
                    electors[index].coordinator = None
        start = env.now
        electors[ordered[0]].start_election()
        new_winner = peers[ordered[-2]].peer_id
        while any(
            e.coordinator != new_winner
            for i, e in enumerate(electors)
            if peers[i] is not victim
        ):
            env.run(until=env.now + 0.1)
            if env.now - start > 30:
                raise AssertionError("re-election did not converge")
        return {"latency (s)": env.now - start}

    sweep = benchmark.pedantic(
        lambda: run_sweep(
            "re-election latency", "group size", [3, 6, 12], measure
        ),
        rounds=1,
        iterations=1,
    )
    show(format_sweep(sweep, title="Re-election latency vs. group size"))
    latencies = [float(v) for v in sweep.series("latency (s)")]
    # All within the same timeout-bound ballpark regardless of size.
    assert max(latencies) < 4 * min(latencies) + 0.5
    assert max(latencies) < 5.0
