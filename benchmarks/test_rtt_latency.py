"""§5 RTT results, failure-free case.

"RTT is defined as the time interval from the moment at which a request
packet is time-stamped by the monitor to the moment at which a reply
packet is time-stamped.  Our results showed that the average latency is
approximately 0.5 milliseconds."

We reproduce both levels:

* the *packet-level* RTT the paper's monitor measured — one request/reply
  exchange on the simulated 100 Mbit LAN — whose mean should sit near
  0.5 ms;
* the *end-to-end service* RTT (client -> web service -> proxy ->
  coordinator -> back), which stacks several such exchanges and lands in
  the low milliseconds.
"""

from __future__ import annotations

import pytest

from repro.bench import format_phase_breakdown, format_table, summarize
from repro.core import ScenarioConfig, WhisperSystem
from repro.simnet import Environment, Network, RngRegistry

SAMPLES = 400


def measure_packet_rtt() -> list:
    """The paper's monitor: time-stamped request/reply packet pairs."""
    env = Environment()
    network = Network(env, rng=RngRegistry(7))
    server = network.add_host("server")
    client = network.add_host("client")
    server_socket = server.transport.bind(7000)
    client_socket = client.transport.bind(7001)

    def echo():
        while True:
            message = yield server_socket.recv()
            server_socket.send(
                message.src, payload=message.payload, category="echo-reply",
                size_bytes=512, correlation_id=message.correlation_id,
            )

    server.spawn(echo())

    def monitor():
        for sequence in range(SAMPLES):
            network.trace.stamp_request(sequence, env.now)
            client_socket.send(
                ("server", 7000), payload=sequence, category="echo-request",
                size_bytes=512, correlation_id=sequence,
            )
            yield client_socket.recv()
            network.trace.stamp_reply(sequence, env.now)
            yield env.timeout(0.005)

    env.run(until=client.spawn(monitor()))
    return network.trace.rtts()


def measure_service_rtt() -> tuple:
    """Full-stack SOAP invocations against a healthy deployment.

    Returns the end-to-end latencies *and* the observability layer's
    per-phase breakdown, so the report can attribute the latency to
    discover/bind/invoke rather than quoting one opaque number.
    """
    system = WhisperSystem(ScenarioConfig(seed=7, replicas=4))
    service = system.deploy_student_service()
    system.settle(6.0)
    node, soap = system.add_client("rtt-client")
    latencies = []

    def client_loop():
        for index in range(100):
            started = system.env.now
            yield from soap.call(
                service.address, service.path, "StudentInformation",
                {"ID": f"S{(index % 200) + 1:05d}"}, timeout=30.0,
            )
            latencies.append(system.env.now - started)
            yield system.env.timeout(0.01)

    system.env.run(until=node.spawn(client_loop()))
    return latencies, system.obs.phase_summary()


@pytest.mark.paper
def test_packet_rtt_averages_half_a_millisecond(benchmark, show):
    rtts = benchmark.pedantic(measure_packet_rtt, rounds=1, iterations=1)
    summary = summarize([r * 1000 for r in rtts])
    show(format_table(
        ["metric", "ms"],
        [
            ["samples", summary.count],
            ["mean", summary.mean],
            ["p50", summary.p50],
            ["p95", summary.p95],
            ["max", summary.maximum],
        ],
        title="§5 packet-level RTT (paper: average ≈ 0.5 ms)",
    ))
    assert summary.count == SAMPLES
    # The paper reports ~0.5 ms average; accept the right order of magnitude.
    assert 0.2 < summary.mean < 1.0
    assert summary.maximum < 5.0  # failure-free: no multi-second outliers


@pytest.mark.paper
def test_service_rtt_low_milliseconds(benchmark, show):
    latencies, phases = benchmark.pedantic(
        measure_service_rtt, rounds=1, iterations=1
    )
    summary = summarize([l * 1000 for l in latencies])
    show(format_table(
        ["metric", "ms"],
        [
            ["samples", summary.count],
            ["mean", summary.mean],
            ["p50", summary.p50],
            ["p99", summary.p99],
            ["max", summary.maximum],
        ],
        title="End-to-end SOAP invocation latency (failure-free)",
    ))
    show(format_phase_breakdown(
        phases, title="Attribution: which phase the time went to"
    ))
    # Warm steady state: a handful of LAN round trips plus service time.
    assert summary.p50 < 20.0
    assert summary.maximum < 1500.0  # first call may include discovery
    # Failure-free: every request spent time invoking, none recovering,
    # and the execute phase (backend service time) dominates the mean.
    assert phases["invoke"]["count"] == summary.count
    assert phases["recover"]["count"] == 0
    assert phases["execute"]["mean"] < phases["invoke"]["mean"]


@pytest.mark.paper
def test_rtt_distribution_tightness(benchmark, show):
    """Failure-free RTTs are tightly clustered — the paper's multi-second
    'worst case' appears only under coordinator failure (next bench)."""
    rtts = benchmark.pedantic(measure_packet_rtt, rounds=1, iterations=1)
    summary = summarize([r * 1000 for r in rtts])
    assert summary.p99 < summary.p50 * 4
