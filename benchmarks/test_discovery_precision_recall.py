"""Ablation A — semantic vs. syntactic discovery (§3.1, §4.3).

"The use of syntactic information alone originates a high recall and low
precision during the search" (§3.1); "the default discovery supported by
JXTA is inefficient as b-peers retrieved may be inadequate due to low
precision (many b-peers you do not want) and low recall (missed the
b-peers you really need to consider)" (§4.3).

We build an advertisement corpus with known ground truth — relevant groups
(exact and synonym-annotated), homonym traps (same local names, disjoint
semantics), and unrelated services — and measure precision/recall of the
semantic matcher against the syntactic (local-name) baseline.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.core import SemanticGroupMatcher, SyntacticGroupMatcher
from repro.ontology import (
    B2B,
    LEGACY,
    SM,
    ConceptMatcher,
    DegreeOfMatch,
    Reasoner,
    b2b_ontology,
)
from repro.p2p import PeerGroupId, SemanticAdvertisement
from repro.wsdl.annotations import SemanticAnnotation

REQUEST = SemanticAnnotation(
    action=SM["StudentInformation"],
    inputs=(SM["StudentID"],),
    outputs=(SM["StudentInfo"],),
)


def _adv(name, action, inputs, outputs):
    return SemanticAdvertisement(
        group_id=PeerGroupId.from_name(name), name=name,
        action=action, inputs=tuple(inputs), outputs=tuple(outputs),
    )


def build_corpus():
    """(advertisement, is_relevant) pairs with deliberate traps."""
    corpus = [
        # Relevant: exact annotation.
        (_adv("uma-students", SM["StudentInformation"],
              [SM["StudentID"]], [SM["StudentInfo"]]), True),
        # Relevant: synonym concepts (equivalentClass).
        (_adv("registry-students", SM["StudentInformation"],
              [SM["StudentNumber"]], [SM["StudentRecord"]]), True),
        (_adv("archive-students", SM["StudentInformation"],
              [SM["StudentNumber"]], [SM["StudentInfo"]]), True),
        # Homonym traps: same local names, disjoint legacy semantics.
        (_adv("legacy-marketing", LEGACY["StudentInformation"],
              [LEGACY["StudentID"]], [LEGACY["StudentInfo"]]), False),
        (_adv("legacy-brochures", LEGACY["StudentInformation"],
              [LEGACY["StudentID"]], [LEGACY["Brochure"]]), False),
        # Unrelated services.
        (_adv("claims", B2B["ProcessClaim"], [B2B["ClaimID"]],
              [B2B["AssessmentReport"]]), False),
        (_adv("loans", B2B["LoanApproval"], [B2B["LoanID"]],
              [B2B["LoanDecision"]]), False),
        (_adv("patients", B2B["RetrievePatientRecord"], [B2B["PatientID"]],
              [B2B["PatientRecord"]]), False),
        # Related but wrong level: course information, not student info.
        (_adv("courses", SM["CourseInformation"], [SM["CourseCode"]],
              [SM["CourseInfo"]]), False),
    ]
    return corpus


def precision_recall(selected, corpus):
    relevant = {adv.name for adv, is_relevant in corpus if is_relevant}
    selected_names = {match.advertisement.name for match in selected}
    true_positives = len(selected_names & relevant)
    precision = true_positives / len(selected_names) if selected_names else 1.0
    recall = true_positives / len(relevant) if relevant else 1.0
    return precision, recall


def run_comparison():
    corpus = build_corpus()
    advertisements = [adv for adv, _flag in corpus]
    semantic = SemanticGroupMatcher(
        ConceptMatcher(Reasoner(b2b_ontology())), min_degree=DegreeOfMatch.EXACT
    )
    syntactic = SyntacticGroupMatcher()
    results = {}
    for label, matcher in (("semantic", semantic), ("syntactic", syntactic)):
        selected = matcher.find_all(REQUEST, advertisements)
        precision, recall = precision_recall(selected, corpus)
        results[label] = {
            "selected": len(selected),
            "precision": precision,
            "recall": recall,
        }
    return results


@pytest.mark.paper
def test_semantic_discovery_beats_syntactic(benchmark, show):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    show(format_table(
        ["matcher", "selected", "precision", "recall"],
        [
            [label, row["selected"], row["precision"], row["recall"]]
            for label, row in results.items()
        ],
        title="Ablation A — discovery precision/recall (3 relevant of 9)",
    ))
    semantic, syntactic = results["semantic"], results["syntactic"]
    # Semantic discovery is both sound and complete on this corpus.
    assert semantic["precision"] == 1.0
    assert semantic["recall"] == 1.0
    # The baseline shows the paper's pathology: homonyms admitted
    # (precision < 1) and synonyms missed (recall < 1).
    assert syntactic["precision"] < 1.0
    assert syntactic["recall"] < 1.0


@pytest.mark.paper
def test_subsumption_widens_recall_at_plugin_level(benchmark, show):
    """PLUGIN-level matching additionally finds *more specific* providers
    (e.g. a transcript-retrieval group can serve a student-info request)."""

    def measure():
        corpus = build_corpus()
        specialist = _adv(
            "transcripts", SM["StudentTranscriptRetrieval"],
            [SM["StudentID"]], [SM["StudentTranscript"]],
        )
        advertisements = [adv for adv, _flag in corpus] + [specialist]
        matcher_factory = lambda degree: SemanticGroupMatcher(
            ConceptMatcher(Reasoner(b2b_ontology())), min_degree=degree
        )
        exact = matcher_factory(DegreeOfMatch.EXACT).find_all(REQUEST, advertisements)
        plugin = matcher_factory(DegreeOfMatch.PLUGIN).find_all(REQUEST, advertisements)
        return {m.advertisement.name for m in exact}, {
            m.advertisement.name for m in plugin
        }

    exact_names, plugin_names = benchmark.pedantic(measure, rounds=1, iterations=1)
    show(format_table(
        ["level", "groups found"],
        [["EXACT", len(exact_names)], ["PLUGIN", len(plugin_names)]],
        title="Degree-of-match level vs. recall",
    ))
    assert exact_names < plugin_names
    assert "transcripts" in plugin_names - exact_names
    # The homonym traps stay excluded even at PLUGIN level.
    assert "legacy-marketing" not in plugin_names
