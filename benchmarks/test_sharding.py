"""Semantic sharding — read scaling, message growth, rebalance safety.

Three claims for the federated shard-group layer (see EXPERIMENTS.md):

* **Scaling**: at a fixed per-group replication factor, 4 shard groups
  sustain at least 2.5x the aggregate read throughput of 1 on the same
  offered load — one group saturates its knee and sheds, the federation
  absorbs the load the ring spreads across it.
* **Message growth**: each shard group brings its own replicas and
  maintenance traffic (heartbeats, renewals, SRDI leases), so the
  steady-state message count grows with the shard count — the same
  predictable growth Figure 4 shows per b-peer, now per shard group.
* **Rebalance safety**: crashing one whole shard group mid-workload
  remaps only its ring segment, the workload keeps making progress via
  ring-successor handoff, and no enrollment is ever double-applied
  (sticky at-most-once pinning keeps per-group dedup journals sufficient).
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.bench.sharding import run_rebalance, run_shard_sweep

SHARD_COUNTS = (1, 2, 4)
REPLICAS_PER_SHARD = 2
RATE_MULTIPLE = 3.0
DURATION = 6.0
MESSAGE_WINDOW = 10.0
SPEEDUP_FLOOR = 2.5


@pytest.mark.paper
def test_shard_scaling_and_message_growth(benchmark, show):
    points = benchmark.pedantic(
        lambda: run_shard_sweep(
            shard_counts=SHARD_COUNTS,
            replicas=REPLICAS_PER_SHARD,
            rate_multiple=RATE_MULTIPLE,
            duration=DURATION,
            message_window=MESSAGE_WINDOW,
        ),
        rounds=1,
        iterations=1,
    )
    show(format_table(
        ["shards", "offered/s", "requests", "ok", "shed",
         "tput", "p50 ms", "p99 ms", "msgs"],
        [p.row() for p in points],
        title=(
            f"Shard scaling — {REPLICAS_PER_SHARD} replicas/shard, offered "
            f"{RATE_MULTIPLE:.1f}x one shard's knee, {DURATION:.0f}s Poisson"
        ),
    ))
    by_shards = {p.shards: p for p in points}
    one, four = by_shards[1], by_shards[4]

    # Scaling: the federation absorbs what a single group must shed.
    speedup = four.throughput / one.throughput
    assert speedup >= SPEEDUP_FLOOR, (
        f"4-shard speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor "
        f"({one.throughput:.1f} -> {four.throughput:.1f} req/s)"
    )
    assert one.shed > 0, "single group never saturated — rate too low"
    assert four.shed == 0, "4 shards should have headroom at this rate"
    # The ring actually spread the keyspace: every group served work.
    assert all(count > 0 for count in four.per_group_executed.values()), (
        four.per_group_executed
    )
    assert four.shard_routed > 0

    # Figure-4-style growth: more shard groups, more maintenance traffic,
    # monotonically and roughly in proportion to the peer count.
    messages = [by_shards[n].steady_messages for n in SHARD_COUNTS]
    assert messages[0] < messages[1] < messages[2], messages
    growth = messages[2] / messages[0]
    assert 2.0 <= growth <= 8.0, (
        f"4-shard steady-state message growth {growth:.2f}x outside the "
        f"predictable band (counts: {messages})"
    )


@pytest.mark.paper
def test_rebalance_keeps_exactly_once_across_shard_group_loss(benchmark, show):
    report = benchmark.pedantic(run_rebalance, rounds=1, iterations=1)
    show(format_table(
        ["metric", "value"],
        report.rows(),
        title="Rebalance — whole shard group crashed mid-enrollment",
    ))
    # Only the victim's ring segment remaps (virtual nodes keep the
    # segments balanced, so the fraction sits near 1/shards).
    assert 0.10 < report.remapped_fraction < 0.45, report.remapped_fraction
    # The handoff preserved exactly-once: zero double-applied effects
    # across every shard group's backend ledgers.
    assert report.exactly_once, report.double_applied
    assert report.distinct_effects == report.succeeded
    # And the workload kept making progress through the crash.
    assert report.succeeded >= report.enrollments * 0.8, (
        f"only {report.succeeded}/{report.enrollments} enrollments survived"
    )
