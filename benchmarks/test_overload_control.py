"""Overload control at and past the knee (tentpole acceptance numbers).

A heterogeneous 4-replica deployment (2 fast at 10ms, 2 slow at 40ms,
aggregate knee 250 req/s) is driven by an open-loop Poisson workload:

* at 2x the knee, an **unbounded** deployment queues without limit and
  its p99 explodes, while a **bounded** one sheds the excess with
  ``Server.Busy`` + retry-after and keeps accepted work fast and
  near-perfectly available;
* below the knee, **least-outstanding** dispatch routes around the slow
  replicas that blind round-robin keeps feeding.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, run_overload_point
from repro.core import ScenarioConfig

BASE = ScenarioConfig(
    seed=42,
    replicas=4,
    request_timeout=2.0,
    max_attempts=6,
    deadline_budget=2.0,
)
OVERLOAD_RATE = 500.0  # 2x the 250 req/s aggregate knee
HEADROOM_RATE = 150.0  # comfortably below the knee

COLUMNS = [
    "offered (req/s)", "x knee", "requests", "ok", "shed", "shed rate",
    "accepted avail", "tput (req/s)", "p50 (ms)", "p99 (ms)",
]


@pytest.mark.paper
def test_bounded_queue_tames_tail_latency_past_knee(benchmark, show):
    """At 2x capacity: shed-and-hint beats queue-forever on p99, and the
    work a bounded deployment accepts is still served reliably."""

    def measure():
        unbounded = run_overload_point(
            OVERLOAD_RATE, duration=5.0, config=BASE.replace(dispatch="round-robin")
        )
        bounded = run_overload_point(
            OVERLOAD_RATE,
            duration=5.0,
            config=BASE.replace(dispatch="least-outstanding", queue_bound=8),
        )
        return unbounded, bounded

    unbounded, bounded = benchmark.pedantic(measure, rounds=1, iterations=1)
    show(format_table(
        ["variant"] + COLUMNS,
        [
            ["unbounded rr"] + unbounded.row(),
            ["bounded lo"] + bounded.row(),
        ],
        title=f"Saturation at {OVERLOAD_RATE:.0f} req/s (knee {bounded.capacity:.0f})",
    ))
    # Admission control keeps the tail of accepted work bounded.
    assert bounded.latency.p99 < unbounded.latency.p99, (
        bounded.latency.p99, unbounded.latency.p99,
    )
    # Overload is actually shed, not silently absorbed...
    assert bounded.shed_rate > 0.0
    assert bounded.coordinator_sheds > 0
    # ...while admitted requests still almost always succeed.
    assert bounded.accepted_availability >= 0.99
    # Shed clients saw the retry-after hint and some rode it to success.
    assert bounded.retry_after_honored > 0


@pytest.mark.paper
def test_least_outstanding_beats_round_robin_on_heterogeneous_backends(
    benchmark, show
):
    """Below the knee, blind rotation queues behind the 40ms replicas;
    the load ledger steers work to whoever is actually free."""

    def measure():
        config = BASE.replace(queue_bound=8)
        rr = run_overload_point(
            HEADROOM_RATE, duration=8.0, config=config.replace(dispatch="round-robin")
        )
        lo = run_overload_point(
            HEADROOM_RATE,
            duration=8.0,
            config=config.replace(dispatch="least-outstanding"),
        )
        return rr, lo

    rr, lo = benchmark.pedantic(measure, rounds=1, iterations=1)
    show(format_table(
        ["policy"] + COLUMNS,
        [["round-robin"] + rr.row(), ["least-outstanding"] + lo.row()],
        title=f"Dispatch policy at {HEADROOM_RATE:.0f} req/s (knee {lo.capacity:.0f})",
    ))
    assert lo.throughput >= rr.throughput, (lo.throughput, rr.throughput)
    assert lo.latency.p99 <= rr.latency.p99, (lo.latency.p99, rr.latency.p99)
